"""Federation through the foreign-database gateway storage method.

The paper: a relation storage method "might support access to a foreign
database by simulating relation accesses via (remote) accesses to
relations in the foreign database".  A warehouse database owns the
inventory; a storefront database mounts it through the ``foreign``
storage method, joins it against local tables, guards it with local
constraints, and rolls remote changes back saga-style when the local
transaction aborts.

Run:  python examples/federation.py
"""

from repro import CheckViolation, Database


def main() -> None:
    # The remote DBMS: a fully independent database instance.
    warehouse = Database()
    inventory = warehouse.create_table("inventory", [
        ("sku", "INT"), ("product", "STRING"), ("qty", "INT")])
    inventory.insert_many([
        (100, "widget", 25), (200, "gadget", 0), (300, "sprocket", 7)])

    # The local storefront mounts the remote relation as a gateway.
    store = Database()
    store.create_table("inventory_gw", [
        ("sku", "INT"), ("product", "STRING"), ("qty", "INT")],
        storage_method="foreign",
        attributes={"database": warehouse, "relation": "inventory",
                    "latency": 2.0})
    orders = store.create_table("orders", [("id", "INT"), ("sku", "INT"),
                                           ("n", "INT")])
    orders.insert_many([(1, 100, 3), (2, 300, 1)])

    # Filters ship to the remote side; messages are counted.
    before = store.services.stats.get("foreign.messages")
    in_stock = store.table("inventory_gw").rows(where="qty > 0")
    print("in stock:", in_stock)
    print("messages for the filtered scan:",
          store.services.stats.get("foreign.messages") - before)

    # Local/remote join through the ordinary query layer.
    rows = store.execute(
        "SELECT o.id, g.product, g.qty FROM orders o "
        "JOIN inventory_gw g ON o.sku = g.sku")
    print("orders joined with remote inventory:", rows)

    # A *local* attachment guards the *remote* relation uniformly.
    store.add_check("qty_non_negative", "inventory_gw", "qty >= 0")
    try:
        store.table("inventory_gw").insert((400, "bad", -5))
    except CheckViolation as veto:
        print("local constraint vetoed remote insert:", veto)
    print("remote rows:", inventory.count())

    # Saga-style undo: a local abort compensates remote effects.
    store.begin()
    store.table("inventory_gw").insert((500, "doodad", 9))
    print("remote count inside local txn:", inventory.count())
    store.rollback()
    print("remote count after local abort:", inventory.count())


if __name__ == "__main__":
    main()
