"""Referential integrity, cascades, triggers, and deferred constraints.

A customers / orders / line-items schema exercising the paper's
attachment machinery end to end:

* referential integrity with cascade delete across two levels (the
  paper's worked example of cascaded modifications);
* a trigger that maintains an audit relation inside the same operation;
* a deferred trigger modelling an action *outside* the database (an
  email outbox that must not fire for aborted transactions);
* a deferred check constraint repaired before commit.

Run:  python examples/orders_referential.py
"""

from repro import Database, ReferentialViolation


def main() -> None:
    db = Database(buffer_capacity=1024)

    customers = db.create_table("customers", [("id", "INT"),
                                              ("name", "STRING")])
    orders = db.create_table("orders", [("id", "INT"), ("customer", "INT"),
                                        ("total", "FLOAT")])
    items = db.create_table("items", [("id", "INT"), ("order_id", "INT"),
                                      ("amount", "FLOAT")])
    audit = db.create_table("audit", [("what", "STRING")])

    db.create_index("customers_id", "customers", ["id"], unique=True)
    db.create_index("orders_id", "orders", ["id"], unique=True)

    db.create_attachment("orders", "referential", "orders_fk",
                         {"parent": "customers", "columns": ["customer"],
                          "parent_columns": ["id"], "on_delete": "cascade"})
    db.create_attachment("items", "referential", "items_fk",
                         {"parent": "orders", "columns": ["order_id"],
                          "parent_columns": ["id"], "on_delete": "cascade"})

    # Immediate trigger: an in-database action riding the same operation.
    db.create_attachment(
        "orders", "trigger", "orders_audit",
        {"on": ["insert", "delete"],
         "routine": lambda e: e.database.table("audit").insert(
             (f"{e.operation} order",))})

    # Deferred trigger: an action outside the database, at commit only.
    outbox = []
    db.create_attachment(
        "orders", "trigger", "orders_email",
        {"on": ["insert"], "timing": "deferred",
         "routine": lambda e: outbox.append(f"order {e.new[0]} confirmed")})

    customers.insert_many([(1, "ada"), (2, "grace")])
    orders.insert_many([(10, 1, 99.0), (11, 1, 25.0), (12, 2, 7.0)])
    items.insert_many([(100, 10, 50.0), (101, 10, 49.0), (102, 11, 25.0)])
    print("emails sent after autocommits:", outbox)

    # Orphaned order: the child-side check vetoes.
    try:
        orders.insert((13, 99, 1.0))
    except ReferentialViolation as veto:
        print("vetoed:", veto)

    # Cascade: deleting ada removes her orders AND their items.
    ada_key = customers.scan(where="id = 1")[0][0]
    customers.delete(ada_key)
    print("orders after cascade:", orders.rows())
    print("items after cascade:", items.rows())
    print("audit trail:", [r[0] for r in audit.rows()])

    # A deferred trigger never fires for an aborted transaction.
    db.begin()
    orders.insert((20, 2, 5.0))
    db.rollback()
    print("emails after aborted order (unchanged):", outbox)

    # Deferred check: transiently inconsistent, repaired before commit.
    db.create_attachment("orders", "check", "total_positive",
                         {"predicate": "total >= 0", "deferred": True})
    db.begin()
    key = orders.insert((21, 2, -1.0))   # placeholder total
    orders.update(key, {"total": 12.0})  # repaired
    db.commit()
    print("orders at the end:", orders.rows())


if __name__ == "__main__":
    main()
