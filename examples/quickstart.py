"""Quickstart: the extensible DBMS in five minutes.

Builds the paper's Figure 1 configuration — an EMPLOYEE relation on the
heap storage method with B-tree index and intra-record consistency
constraint attachments — then exercises queries, transactions, vetoes,
and crash recovery.

Run:  python examples/quickstart.py
"""

from repro import AccessPath, CheckViolation, Database


def main() -> None:
    db = Database()

    # -- DDL with extension-specific attribute lists ------------------------
    employee = db.create_table("employee", [
        ("id", "INT", False),       # (name, type, nullable)
        ("name", "STRING"),
        ("dept", "STRING"),
        ("salary", "FLOAT"),
    ])
    db.create_index("emp_id", "employee", ["id"], unique=True)
    db.add_check("salary_positive", "employee", "salary >= 0")

    descriptor = db.catalog.handle("employee").descriptor
    print("relation descriptor:", descriptor)

    # -- modifications flow through storage method + attachments -------------
    employee.insert((1, "alice", "eng", 120000.0))
    employee.insert((2, "bob", "sales", 80000.0))
    employee.insert((3, "carol", "eng", 95000.0))

    try:
        employee.insert((4, "eve", "eng", -5.0))
    except CheckViolation as veto:
        print("vetoed:", veto)

    # -- mini-SQL with cost-based access selection and bound plans -----------
    print(db.execute("SELECT name, salary FROM employee "
                     "WHERE dept = 'eng' ORDER BY salary DESC"))
    print("plan:", db.explain("SELECT * FROM employee WHERE id = 2"))
    print(db.execute("SELECT dept, COUNT(*), MAX(salary) FROM employee "
                     "GROUP BY dept"))

    # -- direct access-path use ("access path zero" is the storage method) ---
    btree = db.registry.attachment_type_by_name("btree_index")
    record_keys = employee.fetch((1,),
                                 access_path=AccessPath(btree.type_id,
                                                        "emp_id"))
    print("record keys from the index:", record_keys)
    print("record via storage method:", employee.fetch(record_keys[0]))

    # -- transactions, savepoints, partial rollback --------------------------
    db.begin()
    employee.insert((10, "temp1", "ops", 1.0))
    db.savepoint("before_second")
    employee.insert((11, "temp2", "ops", 1.0))
    db.rollback_to("before_second")     # log-driven partial rollback
    db.commit()
    print("ids after partial rollback:",
          sorted(r[0] for r in employee.rows()))

    # -- crash and restart recovery -----------------------------------------
    db.begin()
    employee.insert((99, "loser", "ops", 1.0))
    summary = db.restart()              # buffer pool + unflushed log lost
    print("restart recovery:", summary)
    print("ids after restart:", sorted(r[0] for r in employee.rows()))


if __name__ == "__main__":
    main()
