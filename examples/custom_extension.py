"""Authoring a new data management extension "at the factory".

The whole point of the paper: adding a storage method or attachment means
implementing the generic operations and registering them — no changes to
the dispatch layer, query planner, transaction manager, or DDL.

This example adds, from outside the library:

* ``append_log`` — a storage method for append-only event logs (inserts
  and reads only; updates and deletes are rejected), with ordinal record
  keys and undo support so it composes with transactions;
* ``row_counter`` — a tiny attachment type that keeps a live tally and
  vetoes inserts beyond a configured capacity.

Run:  python examples/custom_extension.py
"""

from repro import Database, StorageMethod, AttachmentType, VetoError
from repro.errors import ReadOnlyError, StorageError
from repro.services.locks import LockMode
from repro.services.recovery import ResourceHandler
from repro.services.scans import AFTER, BEFORE, ON, Scan, ScanPosition


# ---------------------------------------------------------------------------
# A new storage method
# ---------------------------------------------------------------------------

class _AppendLogHandler(ResourceHandler):
    def undo(self, services, payload, clr_lsn):
        descriptor = services.database.catalog.entry_by_id(
            payload["relation_id"]).handle.descriptor.storage_descriptor
        if descriptor["events"] and len(descriptor["events"]) - 1 \
                == payload["ordinal"]:
            descriptor["events"].pop()

    def redo(self, services, lsn, payload):
        """Events live in memory here; a restart empties the log."""


class _AppendLogScan(Scan):
    def __init__(self, ctx, handle, events, fields, predicate):
        super().__init__(ctx.txn_id)
        self.events = events
        self.fields = fields
        self.predicate = predicate
        self.state = BEFORE
        self.position = None

    def next(self):
        self._check_open()
        index = 0 if self.position is None else self.position + 1
        while index < len(self.events):
            record = self.events[index]
            self.position = index
            self.state = ON
            if self.predicate is None or self.predicate.matches(record):
                if self.fields is None:
                    return index, record
                return index, tuple(record[i] for i in self.fields)
            index += 1
        self.state = AFTER
        return None

    def save_position(self):
        return ScanPosition(self.state, self.position)

    def restore_position(self, saved):
        self.state = saved.state
        self.position = saved.item


class AppendLogStorage(StorageMethod):
    """Append-only event storage; record keys are event ordinals."""

    name = "append_log"
    recoverable = False
    updatable = True      # inserts allowed; update/delete rejected below
    ordered_by_key = True

    def create_instance(self, ctx, relation_id, schema, attributes):
        return {"relation_id": relation_id, "events": []}

    def destroy_instance(self, ctx, descriptor):
        descriptor["events"].clear()

    def reset_instance(self, descriptor):
        descriptor["events"].clear()

    def recovery_handler(self):
        return _AppendLogHandler()

    def insert(self, ctx, handle, record):
        descriptor = handle.descriptor.storage_descriptor
        ordinal = len(descriptor["events"])
        ctx.lock_record(handle.relation_id, ordinal, LockMode.X)
        descriptor["events"].append(record)
        ctx.log(self.resource, {"op": "append", "ordinal": ordinal,
                                "relation_id": descriptor["relation_id"]})
        return ordinal

    def update(self, ctx, handle, key, old_record, new_record):
        raise ReadOnlyError("append_log events are immutable")

    def delete(self, ctx, handle, key, old_record):
        raise ReadOnlyError("append_log events cannot be deleted")

    def fetch(self, ctx, handle, key, fields=None, predicate=None):
        events = handle.descriptor.storage_descriptor["events"]
        if not isinstance(key, int) or not 0 <= key < len(events):
            return None
        record = events[key]
        if predicate is not None and not predicate.matches(record):
            return None
        if fields is None:
            return record
        return tuple(record[i] for i in fields)

    def open_scan(self, ctx, handle, fields=None, predicate=None):
        events = handle.descriptor.storage_descriptor["events"]
        scan = _AppendLogScan(ctx, handle, events, fields, predicate)
        ctx.services.scans.register(scan)
        return scan

    def record_count(self, ctx, handle):
        return len(handle.descriptor.storage_descriptor["events"])


# ---------------------------------------------------------------------------
# A new attachment type
# ---------------------------------------------------------------------------

class RowCounterAttachment(AttachmentType):
    """Keeps a live row tally; vetoes inserts beyond a capacity."""

    name = "row_counter"
    is_access_path = False

    def validate_attributes(self, schema, attributes):
        capacity = dict(attributes).get("capacity")
        if not isinstance(capacity, int) or capacity < 1:
            raise StorageError("row_counter needs an integer 'capacity'")
        return {"capacity": capacity}

    def create_instance(self, ctx, handle, instance_name, attributes):
        method = ctx.database.registry.storage_method(
            handle.descriptor.storage_method_id)
        return {"name": instance_name, "capacity": attributes["capacity"],
                "rows": method.record_count(ctx, handle)}

    def destroy_instance(self, ctx, handle, instance_name, instance):
        pass

    def on_insert(self, ctx, handle, field, key, new_record):
        for instance in field["instances"].values():
            if instance["rows"] + 1 > instance["capacity"]:
                raise VetoError(instance["name"],
                                f"capacity {instance['capacity']} reached")
            instance["rows"] += 1

    def on_delete(self, ctx, handle, field, key, old_record):
        for instance in field["instances"].values():
            instance["rows"] -= 1


def main() -> None:
    db = Database()
    # "Made at the factory": register with the extension vectors.
    db.registry.register_storage_method(AppendLogStorage(),
                                        db.services.recovery)
    db.registry.register_attachment_type(RowCounterAttachment())

    events = db.create_table("events", [("kind", "STRING"),
                                        ("detail", "STRING")],
                             storage_method="append_log")
    db.create_attachment("events", "row_counter", "events_cap",
                         {"capacity": 4})

    for i in range(4):
        events.insert(("click", f"event {i}"))
    try:
        events.insert(("click", "one too many"))
    except VetoError as veto:
        print("vetoed:", veto)

    # The new storage method is a full citizen of the query layer.
    print(db.execute("SELECT detail FROM events WHERE kind = 'click' "
                     "ORDER BY detail DESC LIMIT 2"))
    print("count:", db.execute("SELECT COUNT(*) FROM events"))

    # ... and of transactions (the undo handler composes with rollback).
    db.begin()
    db.table("events")  # still 4 rows; abort leaves the counter honest
    db.rollback()
    print("rows tracked:", events.count())


if __name__ == "__main__":
    main()
