"""Spatial workload: the paper's R-tree motivation.

"Spatial database applications can make use of an R-tree access path
[GUTTMAN 84] to efficiently compute certain spatial predicates."

A land-parcel catalog is stored on the heap; an R-tree attachment indexes
the parcel bounding boxes.  The planner recognises the ENCLOSED_BY /
ENCLOSES / OVERLAPS predicates and routes window queries through the
R-tree, fetching only qualifying records.

Run:  python examples/spatial_catalog.py
"""

from repro import Box, Database
from repro.workloads import rectangle_records


def main() -> None:
    db = Database(buffer_capacity=1024)
    parcels = db.create_table("parcels", [("id", "INT"), ("region", "BOX")])
    parcels.insert_many(rectangle_records(2000, seed=42, world=1000.0))
    db.create_attachment("parcels", "rtree", "parcel_rtree",
                         {"column": "region", "max_entries": 16})

    window = "box(250, 250, 300, 300)"

    plan = db.explain(
        f"SELECT id FROM parcels WHERE region ENCLOSED_BY {window}")
    print("chosen access path:", plan["access"]["route"])

    stats = db.services.stats
    before = stats.get("heap.fetches")
    inside = db.execute(
        f"SELECT id FROM parcels WHERE region ENCLOSED_BY {window}")
    print(f"parcels inside the window: {len(inside)} "
          f"(heap records fetched: {stats.get('heap.fetches') - before} "
          f"of {parcels.count()})")

    # The ENCLOSES direction: which parcels cover a survey point?
    point = "box(500, 500, 500.1, 500.1)"
    covering = db.execute(
        f"SELECT id FROM parcels WHERE region ENCLOSES {point}")
    print("parcels covering the survey point:", [r[0] for r in covering])

    # Spatial predicates compose with ordinary ones in the same evaluator.
    mixed = db.execute(
        f"SELECT id FROM parcels WHERE region OVERLAPS {window} "
        f"AND id < 500")
    print("overlapping with id < 500:", len(mixed))

    # Maintenance is a side effect of relation modification.
    key = parcels.insert((9999, Box(260, 260, 261, 261)))
    inside_after = db.execute(
        f"SELECT id FROM parcels WHERE region ENCLOSED_BY {window}")
    assert len(inside_after) == len(inside) + 1
    parcels.delete(key)
    print("index maintained through insert/delete: ok")


if __name__ == "__main__":
    main()
