"""Optical-disk database publishing.

The paper motivates "special facilities to support (read-only) optical
disk database publishing applications".  A bibliography is mastered onto
the read-only storage method (write-once, no logging), indexed after the
fact, queried, and shown to survive a crash for free.  A temporary
memory relation serves as the writable scratch space alongside it — two
storage methods living in one integrated database.

Run:  python examples/publishing.py
"""

from repro import Database
from repro.errors import ReadOnlyError


def main() -> None:
    db = Database(buffer_capacity=1024)

    # Master the publication (write-once bulk load, pages forced to disk).
    db.create_table("papers", [("id", "INT"), ("title", "STRING"),
                               ("year", "INT")],
                    storage_method="readonly")
    catalog_entries = [
        (1, "A Relational Model of Data for Large Shared Data Banks", 1970),
        (2, "The Design and Implementation of INGRES", 1976),
        (3, "System R: Relational Approach to Database Management", 1976),
        (4, "R-Trees: A Dynamic Index Structure for Spatial Searching",
         1984),
        (5, "The Design of POSTGRES", 1986),
        (6, "A Data Management Extension Architecture", 1987),
    ] + [(i, f"Technical Report {i}", 1980 + i % 8) for i in range(7, 500)]
    handle = db.catalog.handle("papers")
    method = db.registry.storage_method(handle.descriptor.storage_method_id)
    with db.autocommit() as ctx:
        count = method.publish(ctx, handle, catalog_entries)
    print(f"published {count} records "
          f"({db.services.disk.allocated_pages} platter pages)")

    # The platter is immutable.
    try:
        db.table("papers").insert((999, "Errata", 1999))
    except ReadOnlyError as error:
        print("rejected:", error)

    # Access paths attach to published relations like any other.
    db.create_index("papers_year", "papers", ["year"])
    print("1987 papers:",
          db.execute("SELECT title FROM papers WHERE year = 1987"))

    # A writable scratch relation (temporary memory storage) next to it.
    notes = db.create_table("reading_notes", [("paper_id", "INT"),
                                              ("note", "STRING")],
                            storage_method="memory")
    notes.insert((6, "the paper this library reproduces"))
    rows = db.execute(
        "SELECT p.title, n.note FROM papers p JOIN reading_notes n "
        "ON p.id = n.paper_id")
    print("annotated:", rows)

    # Crash: the publication needs no recovery; the scratch space is gone.
    db.restart()
    print("after restart — papers:",
          db.execute("SELECT COUNT(*) FROM papers")[0][0],
          "| notes:", notes.count())


if __name__ == "__main__":
    main()
