"""Relation storage method extensions.

Each module implements one alternative relation storage method behind the
generic :class:`~repro.core.storage_method.StorageMethod` abstraction.
:func:`builtin_storage_methods` returns the set linked into every database
"at the factory"; the temporary (memory) method is registered first so it
receives the paper's internal identifier 1.
"""

from __future__ import annotations

from .heap import HeapStorageMethod
from .memory import MemoryStorageMethod

__all__ = ["builtin_storage_methods", "HeapStorageMethod",
           "MemoryStorageMethod"]


def builtin_storage_methods():
    """Fresh instances of the built-in storage methods, in id order.

    Ordering is part of the architecture's contract: the temporary storage
    method gets identifier 1 (the paper's example), the default recoverable
    heap gets 2, and further methods follow.
    """
    from .btree_file import BTreeFileStorageMethod
    from .foreign import ForeignStorageMethod
    from .readonly import ReadOnlyStorageMethod
    from .sharded import ShardedStorageMethod
    return [
        MemoryStorageMethod(),      # id 1 — temporary relations
        HeapStorageMethod(),        # id 2 — recoverable heap (default)
        BTreeFileStorageMethod(),   # id 3 — records in the leaves of a B-tree
        ReadOnlyStorageMethod(),    # id 4 — optical-disk publishing
        ForeignStorageMethod(),     # id 5 — foreign-database gateway
        ShardedStorageMethod(),     # id 6 — hash/range partitioning over N DBs
    ]
