"""Foreign-database gateway storage method.

The paper: "Another relation storage method might support access to a
foreign database by simulating relation accesses via (remote) accesses to
relations in the foreign database."

The "remote" side is another in-process :class:`Database` instance (the
closest laptop-scale equivalent of a remote DBMS; see DESIGN.md) reached
through an explicit message layer that counts round trips and charges a
configurable latency cost, so the cost model sees the remoteness even
though the bytes never leave the process.

Remote effects of a local transaction are made undoable saga-style: each
local modification logs a compensation record, and the undo handler issues
the inverse remote operation.  Redo after a local crash is a no-op — the
remote database is its own durability domain.

Transient failures (:class:`~repro.errors.GatewayError` — the analogue of
a lost message or a remote hiccup) are retried with bounded deterministic
backoff, each retry charging escalating latency units.  When a call
exhausts its retries repeatedly, a circuit breaker trips: further calls
fail fast (no message is even attempted) until a cooldown of calls has
elapsed, after which one half-open probe either closes the breaker or
re-opens it.  While the breaker is open, *reads degrade* — scans return no
rows, fetches return None, the planner sees a zero-cost empty relation —
and *writes fail closed* with a GatewayError, because silently dropping a
modification would diverge the two databases.

DDL attributes: ``database`` (the remote Database object), ``relation``
(remote relation name), ``latency`` (I/O-page-equivalents charged per
message, default 2.0), ``retries`` (transient retry budget, default 3),
``breaker_threshold`` (consecutive exhausted calls that trip the breaker,
default 3), ``breaker_cooldown`` (calls failed fast before the half-open
probe, default 8).
"""

from __future__ import annotations

from typing import Optional, Sequence

from ..core.context import ExecutionContext
from ..core.storage_method import RelationHandle, StorageMethod
from ..errors import ForeignError, GatewayError, ScanError, StorageError
from ..query.cost import AccessCost, DEFAULT_SELECTIVITY
from ..services.predicate import Predicate
from ..services.recovery import ResourceHandler
from ..services.remote import RemoteTransport
from ..services.scans import AFTER, BEFORE, ON, Scan, ScanPosition

__all__ = ["ForeignStorageMethod", "ForeignScan", "TRANSPORT"]

#: The gateway's transport discipline (retry/backoff/breaker) lives in the
#: shared :class:`RemoteTransport` service; this instance pins the foreign
#: method's historical fault-point and counter names.
TRANSPORT = RemoteTransport(fault_points=("foreign.remote_call",),
                            message_counter="foreign.messages",
                            latency_counter="foreign.latency_units",
                            counter_prefix="gateway")


def _gateway_for(services, payload: dict):
    database = getattr(services, "database", None)
    if database is None:
        raise StorageError("recovery handler needs services.database wired")
    entry = database.catalog.entry_by_id(payload["relation_id"])
    return entry.handle.descriptor.storage_descriptor


def _remote_call(ctx_or_services, descriptor: dict, stats) -> None:
    """Account one message round trip to the foreign database."""
    TRANSPORT.remote_call(ctx_or_services, descriptor, stats)


def _breaker(descriptor: dict) -> dict:
    """The per-gateway circuit-breaker state (lives in the storage
    descriptor, so each foreign relation has its own breaker)."""
    return TRANSPORT.breaker(descriptor)


def gateway_available(descriptor: dict) -> bool:
    """False while the breaker is open (reads degrade, writes fail fast)."""
    return TRANSPORT.available(descriptor)


def _gateway(descriptor: dict, stats, action):
    """Run one remote interaction behind retry + circuit breaker (see
    :meth:`RemoteTransport.call`)."""
    return TRANSPORT.call(descriptor, stats, action)


class _ForeignHandler(ResourceHandler):
    """Saga-style undo: issue the inverse operation against the remote."""

    def undo(self, services, payload: dict, clr_lsn: int) -> None:
        descriptor = _gateway_for(services, payload)
        remote = descriptor["database"]
        table = remote.table(descriptor["relation"])
        op = payload["op"]

        def compensate():
            _remote_call(services, descriptor, services.stats)
            if op == "insert":
                table.delete(payload["remote_key"])
            elif op == "delete":
                table.insert(payload["old"])
            elif op == "update":
                schema = table.schema
                changes = {schema.fields[i].name: value
                           for i, value in enumerate(payload["old"])}
                table.update(payload["remote_key"], changes)
            elif op == "insert_multi":
                for remote_key in payload["remote_keys"]:
                    table.delete(remote_key)
            elif op == "delete_multi":
                table.insert_many([tuple(old) for old in payload["olds"]])
            else:
                raise ForeignError(f"foreign gateway cannot undo op {op!r}")

        _gateway(descriptor, services.stats, compensate)

    def redo(self, services, lsn: int, payload: dict) -> None:
        """The remote database is its own durability domain; no redo."""


class ForeignScan(Scan):
    """A local scan wrapper around a remote key-sequential access.

    Results are shipped in one batch per open (a block-fetch protocol);
    the position is the index into the shipped batch.
    """

    def __init__(self, ctx: ExecutionContext, handle: RelationHandle,
                 batch, fields: Optional[Sequence[int]]):
        super().__init__(ctx.txn_id)
        self.ctx = ctx
        self.handle = handle
        self.batch = batch
        self.fields = tuple(fields) if fields is not None else None
        self.state = BEFORE
        self.position: Optional[int] = None

    def next(self):
        self._check_open()
        index = 0 if self.position is None else self.position + 1
        if index >= len(self.batch):
            self.state = AFTER
            return None
        self.position = index
        self.state = ON
        key, record = self.batch[index]
        self.ctx.stats.bump("foreign.tuples_scanned")
        if self.fields is None:
            return key, record
        return key, tuple(record[i] for i in self.fields)

    def next_batch(self, n: int) -> list:
        """Slice the shipped batch — the block-fetch already paid the
        message cost, so batching here is pure local bookkeeping."""
        self._check_open()
        if n < 1:
            raise ScanError(f"next_batch needs a positive count, got {n}")
        index = 0 if self.position is None else self.position + 1
        chunk = self.batch[index:index + n]
        if not chunk:
            self.state = AFTER
            return []
        self.position = index + len(chunk) - 1
        self.state = ON
        self.ctx.stats.bump("foreign.tuples_scanned", len(chunk))
        if self.fields is None:
            return list(chunk)
        return [(key, tuple(record[i] for i in self.fields))
                for key, record in chunk]

    def save_position(self) -> ScanPosition:
        return ScanPosition(self.state, self.position)

    def restore_position(self, saved: ScanPosition) -> None:
        self.state = saved.state
        self.position = saved.item


class ForeignStorageMethod(StorageMethod):
    """Relation operations translated into remote accesses."""

    name = "foreign"
    recoverable = True   # undoable via compensation; durable remotely
    updatable = True
    ordered_by_key = False

    # -- DDL -------------------------------------------------------------------
    def validate_attributes(self, schema, attributes):
        attributes = dict(attributes)
        remote_db = attributes.pop("database", None)
        remote_relation = attributes.pop("relation", None)
        latency = attributes.pop("latency", 2.0)
        retries = attributes.pop("retries", 3)
        threshold = attributes.pop("breaker_threshold", 3)
        cooldown = attributes.pop("breaker_cooldown", 8)
        deadline = attributes.pop("deadline", None)
        if attributes:
            raise StorageError(
                f"foreign storage: unknown attributes {sorted(attributes)}")
        if remote_db is None or remote_relation is None:
            raise StorageError(
                "foreign storage requires 'database' and 'relation' "
                "attributes")
        if not isinstance(latency, (int, float)) or latency < 0:
            raise StorageError(
                f"foreign storage: latency must be non-negative, got "
                f"{latency!r}")
        for name, value in (("retries", retries),
                            ("breaker_threshold", threshold),
                            ("breaker_cooldown", cooldown)):
            if not isinstance(value, int) or value < 0:
                raise StorageError(
                    f"foreign storage: {name} must be a non-negative "
                    f"integer, got {value!r}")
        if deadline is not None and (
                not isinstance(deadline, (int, float)) or deadline <= 0):
            raise StorageError(
                f"foreign storage: deadline must be a positive number, got "
                f"{deadline!r}")
        remote_schema = remote_db.catalog.handle(remote_relation).schema
        if tuple(f.type_code for f in remote_schema.fields) != \
                tuple(f.type_code for f in schema.fields):
            raise StorageError(
                "foreign storage: local and remote schemas must have "
                "matching field types")
        return {"database": remote_db, "relation": remote_relation,
                "latency": float(latency), "retries": retries,
                "breaker_threshold": threshold, "breaker_cooldown": cooldown,
                "deadline": deadline}

    def create_instance(self, ctx, relation_id, schema, attributes) -> dict:
        descriptor = {"relation_id": relation_id,
                      "database": attributes["database"],
                      "relation": attributes["relation"],
                      "latency": attributes["latency"],
                      "retries": attributes["retries"],
                      "breaker_threshold": attributes["breaker_threshold"],
                      "breaker_cooldown": attributes["breaker_cooldown"]}
        if attributes.get("deadline") is not None:
            descriptor["deadline"] = float(attributes["deadline"])
        return descriptor

    def destroy_instance(self, ctx, descriptor) -> None:
        """Dropping the gateway never touches the foreign relation."""

    def recovery_handler(self) -> ResourceHandler:
        return _ForeignHandler()

    # -- modification ---------------------------------------------------------------
    def insert(self, ctx, handle, record):
        descriptor = handle.descriptor.storage_descriptor
        remote = descriptor["database"].table(descriptor["relation"])

        def send():
            _remote_call(ctx, descriptor, ctx.stats)
            return remote.insert(record)

        remote_key = _gateway(descriptor, ctx.stats, send)
        ctx.log(self.resource, {"op": "insert", "remote_key": remote_key,
                                "relation_id": descriptor["relation_id"]})
        ctx.stats.bump("foreign.inserts")
        return remote_key

    def update(self, ctx, handle, key, old_record, new_record):
        descriptor = handle.descriptor.storage_descriptor
        remote = descriptor["database"].table(descriptor["relation"])
        schema = handle.schema
        changes = {schema.fields[i].name: value
                   for i, value in enumerate(new_record)}

        def send():
            _remote_call(ctx, descriptor, ctx.stats)
            return remote.update(key, changes)

        new_key = _gateway(descriptor, ctx.stats, send)
        ctx.log(self.resource, {"op": "update", "remote_key": new_key,
                                "old": old_record,
                                "relation_id": descriptor["relation_id"]})
        ctx.stats.bump("foreign.updates")
        return new_key

    def delete(self, ctx, handle, key, old_record) -> None:
        descriptor = handle.descriptor.storage_descriptor
        remote = descriptor["database"].table(descriptor["relation"])

        def send():
            _remote_call(ctx, descriptor, ctx.stats)
            remote.delete(key)

        _gateway(descriptor, ctx.stats, send)
        ctx.log(self.resource, {"op": "delete", "old": old_record,
                                "relation_id": descriptor["relation_id"]})
        ctx.stats.bump("foreign.deletes")

    # -- set-at-a-time modification -------------------------------------------------
    def insert_batch(self, ctx, handle, records):
        """Ship the whole set in one message (a block-insert protocol) and
        log one compensation record for the group."""
        descriptor = handle.descriptor.storage_descriptor
        remote = descriptor["database"].table(descriptor["relation"])

        def send():
            _remote_call(ctx, descriptor, ctx.stats)
            return remote.insert_many(records)

        remote_keys = _gateway(descriptor, ctx.stats, send)
        ctx.log(self.resource, {"op": "insert_multi",
                                "remote_keys": list(remote_keys),
                                "relation_id": descriptor["relation_id"]})
        ctx.stats.bump("foreign.inserts", len(remote_keys))
        return list(remote_keys)

    def delete_batch(self, ctx, handle, items) -> None:
        descriptor = handle.descriptor.storage_descriptor
        remote = descriptor["database"].table(descriptor["relation"])

        def send():
            _remote_call(ctx, descriptor, ctx.stats)
            for key, __ in items:
                remote.delete(key)

        _gateway(descriptor, ctx.stats, send)
        ctx.log(self.resource, {"op": "delete_multi",
                                "olds": [old for __, old in items],
                                "relation_id": descriptor["relation_id"]})
        ctx.stats.bump("foreign.deletes", len(items))

    # -- access -------------------------------------------------------------------------
    def fetch(self, ctx, handle, key, fields=None, predicate=None):
        descriptor = handle.descriptor.storage_descriptor
        remote = descriptor["database"].table(descriptor["relation"])

        def send():
            _remote_call(ctx, descriptor, ctx.stats)
            return remote.fetch(key)

        try:
            record = _gateway(descriptor, ctx.stats, send)
        except GatewayError:
            ctx.stats.bump("gateway.degraded_fetches")
            return None
        if record is None:
            return None
        ctx.stats.bump("foreign.fetches")
        if predicate is not None and not predicate.matches(record):
            return None
        if fields is None:
            return record
        return tuple(record[i] for i in fields)

    def fetch_many(self, ctx, handle, keys, fields=None, predicate=None):
        """Ship the whole key set in one message (a block-fetch protocol)
        instead of one round trip per key."""
        descriptor = handle.descriptor.storage_descriptor
        remote = descriptor["database"].table(descriptor["relation"])

        def send():
            _remote_call(ctx, descriptor, ctx.stats)
            return [(key, remote.fetch(key)) for key in keys]

        try:
            fetched = _gateway(descriptor, ctx.stats, send)
        except GatewayError:
            ctx.stats.bump("gateway.degraded_fetches")
            return []
        pairs = []
        for key, record in fetched:
            if record is None:
                continue
            if predicate is not None and not predicate.matches(record):
                continue
            if fields is None:
                pairs.append((key, record))
            else:
                pairs.append((key, tuple(record[i] for i in fields)))
        ctx.stats.bump("foreign.fetches", len(pairs))
        return pairs

    def open_scan(self, ctx, handle, fields=None, predicate=None) -> Scan:
        descriptor = handle.descriptor.storage_descriptor
        remote = descriptor["database"].table(descriptor["relation"])
        # Ship the filter to the remote side (predicate pushdown across the
        # gateway), then block-fetch the result in one message.
        remote_predicate = None
        if predicate is not None:
            remote_schema = remote.schema
            remote_predicate = Predicate(predicate.expr, remote_schema,
                                         predicate.params)

        def send():
            _remote_call(ctx, descriptor, ctx.stats)
            return remote.scan(where=remote_predicate)

        try:
            batch = _gateway(descriptor, ctx.stats, send)
        except GatewayError:
            # Degraded read: the relation is unavailable, the query sees
            # an empty result instead of crashing.
            ctx.stats.bump("gateway.degraded_scans")
            batch = []
        scan = ForeignScan(ctx, handle, batch, fields)
        ctx.services.scans.register(scan)
        return scan

    # -- query pushdown -------------------------------------------------------------------
    def fragment_worthwhile(self, ctx, handle, plan, fragment) -> bool:
        """Gate pushdown on expected wire savings (aggregates, top-k, or
        a narrowing projection); results are bit-identical either way."""
        from ..access.statistics import statistics_for
        from ..query import fragments
        descriptor = handle.descriptor.storage_descriptor
        if not gateway_available(descriptor):
            # Breaker open: the pull-up path's degraded empty scan is
            # the established contract; don't race the probe.
            ctx.stats.bump("foreign.pushdown.gated_off")
            return False
        expected = getattr(plan.access.cost, "expected_tuples", 0.0) or 0.0
        distinct = None
        if fragment.kind == "group":
            table_stats = statistics_for(ctx, handle)
            if table_stats is not None:
                distinct = table_stats.distinct(plan.group_index)
        wire, pull = fragments.pushdown_estimate(fragment, 1, expected,
                                                 distinct)
        if wire < pull or fragments.projection_narrows(
                fragment, len(handle.schema.fields)):
            return True
        ctx.stats.bump("foreign.pushdown.gated_off")
        return False

    def run_fragment(self, ctx, handle, fragment, params):
        """Run the *whole* query remotely in one gateway message.

        With a single remote there is nothing to merge: the remote
        database executes the original query shape (storage route
        pinned, so row order — and with it tie order and 'first'
        semantics — matches what the pull-up scan would have shipped)
        and only the final rows cross the wire.  Any gateway failure
        falls back to the pull-up path, whose degraded-read semantics
        stay authoritative.
        """
        from ..query import fragments
        descriptor = handle.descriptor.storage_descriptor
        remote = descriptor["database"]

        def send():
            _remote_call(ctx, descriptor, ctx.stats)
            with remote.autocommit() as remote_ctx:
                return fragments.run_fragment_on(
                    remote, remote_ctx, descriptor["relation"], fragment,
                    params, final=True)

        try:
            rows = _gateway(descriptor, ctx.stats, send)
        except GatewayError as exc:
            ctx.stats.bump("foreign.pushdown.fallbacks")
            raise fragments.FragmentFallback(str(exc)) from exc
        ctx.stats.bump_many({"foreign.pushdown.queries": 1,
                             "foreign.fragment.rows": len(rows)})
        return rows

    # -- planning ---------------------------------------------------------------------------
    def record_count(self, ctx, handle) -> int:
        descriptor = handle.descriptor.storage_descriptor
        if not gateway_available(descriptor):
            # Unavailable relation: the planner sees it as empty.
            return 0
        return descriptor["database"].table(descriptor["relation"]).count()

    def page_count(self, ctx, handle) -> int:
        # Remote pages are invisible; cost comes from message latency.
        return 0

    def estimate_cost(self, ctx, handle, eligible) -> AccessCost:
        descriptor = handle.descriptor.storage_descriptor
        tuples = max(1, self.record_count(ctx, handle))
        selectivity = 1.0
        for pred in eligible:
            if pred.is_simple:
                selectivity *= DEFAULT_SELECTIVITY.get(pred.op, 0.5)
            else:
                selectivity *= 0.5
        expected = max(1.0, tuples * selectivity)
        # One message per scan plus shipping cost proportional to result.
        latency = descriptor.get("latency", 2.0)
        return AccessCost(io_pages=latency + expected / 50.0,
                          cpu_tuples=tuples,
                          expected_tuples=expected,
                          relevant=tuple(eligible), route=("remote_scan",))
