"""Temporary main-memory storage method.

The paper assigns "a storage method for implementing temporary relations
... the internal identifier 1", and separately motivates "main memory data
storage methods for selected high traffic relations".  This method plays
both roles:

* records live in a Python dict keyed by a surrogate integer record key —
  the storage method controls key definition and interpretation;
* modifications are *undoable* (they write logical undo records to the
  common log so vetoed operations and transaction aborts coordinate
  correctly with attachments), but **nothing survives a restart**: the redo
  handler is a no-op and :meth:`reset_instance` empties the relation, which
  is the temporary-relation contract.

DDL attributes: ``initial_capacity`` (int, advisory, validated only).
"""

from __future__ import annotations

import bisect
from typing import Dict, Optional, Sequence, Tuple

from ..core.context import ExecutionContext
from ..core.storage_method import RelationHandle, StorageMethod
from ..errors import RecordNotFoundError, ScanError, StorageError
from ..services.locks import LockMode
from ..services.predicate import Predicate
from ..services.recovery import ResourceHandler
from ..services.scans import AFTER, BEFORE, ON, Scan, ScanPosition

__all__ = ["MemoryStorageMethod", "MemoryScan"]


class MemoryScan(Scan):
    """Key-sequential scan over a memory relation, in record-key order.

    Record keys are monotonically assigned integers, so key order is
    insertion order.  The scan snapshots the key sequence at open time and
    tracks a *position* (the last key returned); deleting the record at the
    position leaves the scan "just after the deleted item" because the next
    call skips keys that no longer exist.
    """

    def __init__(self, ctx: ExecutionContext, handle: RelationHandle,
                 rows: Dict[int, Tuple],
                 fields: Optional[Sequence[int]],
                 predicate: Optional[Predicate]):
        super().__init__(ctx.txn_id)
        self.ctx = ctx
        self.handle = handle
        self.rows = rows
        self.fields = tuple(fields) if fields is not None else None
        self.predicate = predicate
        self.state = BEFORE
        self.position: Optional[int] = None  # last key returned
        self._keys = sorted(rows)

    def next(self):
        self._check_open()
        floor = self.position if self.position is not None else -1
        index = bisect.bisect_right(self._keys, floor)
        while index < len(self._keys):
            key = self._keys[index]
            index += 1
            record = self.rows.get(key)
            if record is None:
                continue  # deleted after the scan opened
            self.position = key
            self.state = ON
            self.ctx.stats.bump("memory.tuples_scanned")
            if self.predicate is not None and not self.predicate.matches(record):
                continue
            self.ctx.lock_record(self.handle.relation_id, key, LockMode.S)
            if self.fields is None:
                return key, record
            return key, tuple(record[i] for i in self.fields)
        self.state = AFTER
        return None

    def next_batch(self, n: int) -> list:
        """Slice the snapshotted key sequence: one bisect for the whole
        batch instead of one per record."""
        self._check_open()
        if n < 1:
            raise ScanError(f"next_batch needs a positive count, got {n}")
        floor = self.position if self.position is not None else -1
        index = bisect.bisect_right(self._keys, floor)
        batch: list = []
        stats = self.ctx.stats
        keys = self._keys
        rows = self.rows
        while index < len(keys) and len(batch) < n:
            # Gather a window of live rows, then filter the window in one
            # pass — column-at-a-time when the predicate compiles.
            chunk_keys: list = []
            chunk_records: list = []
            while index < len(keys) and len(chunk_records) < n:
                key = keys[index]
                index += 1
                record = rows.get(key)
                if record is None:
                    continue  # deleted after the scan opened
                chunk_keys.append(key)
                chunk_records.append(record)
            if not chunk_records:
                break
            self.state = ON
            if self.predicate is None:
                selected = range(len(chunk_records))
            else:
                selected = self.predicate.match_indexes(chunk_records, stats)
            room = n - len(batch)
            for i in selected[:room] if len(selected) > room else selected:
                key = chunk_keys[i]
                self.ctx.lock_record(self.handle.relation_id, key,
                                     LockMode.S)
                if self.fields is None:
                    batch.append((key, chunk_records[i]))
                else:
                    record = chunk_records[i]
                    batch.append((key, tuple(record[f]
                                             for f in self.fields)))
            if len(selected) >= room and selected:
                # Batch filled mid-window: stop at the last consumed key;
                # rows past it are re-examined (and only then counted) by
                # the next call, keeping totals identical to the old
                # row-at-a-time loop.
                last = selected[room - 1] if len(selected) > room \
                    else selected[-1]
                self.position = chunk_keys[last]
                stats.bump("memory.tuples_scanned", last + 1)
                break
            self.position = chunk_keys[-1]
            stats.bump("memory.tuples_scanned", len(chunk_records))
        if not batch:
            self.state = AFTER
        return batch

    def save_position(self) -> ScanPosition:
        return ScanPosition(self.state, self.position)

    def restore_position(self, saved: ScanPosition) -> None:
        self.state = saved.state
        self.position = saved.item


class _MemoryHandler(ResourceHandler):
    """Undo-only recovery: temporary relations do not survive restart."""

    def locked_records(self, payload: dict):
        op = payload.get("op")
        relation_id = payload["relation_id"]
        if op in ("insert", "update", "delete"):
            return [(relation_id, payload["key"])]
        if op in ("insert_multi", "delete_multi"):
            return [(relation_id, key) for key in payload["keys"]]
        return ()

    def undo(self, services, payload: dict, clr_lsn: int) -> None:
        descriptor = _descriptor_for(services, payload)
        if descriptor is None:
            return  # the relation was dropped; nothing left to undo
        rows = descriptor["rows"]
        op = payload["op"]
        if op == "insert":
            rows.pop(payload["key"], None)
        elif op == "delete":
            rows[payload["key"]] = tuple(payload["old"])
        elif op == "update":
            rows[payload["key"]] = tuple(payload["old"])
        elif op == "insert_multi":
            for key in payload["keys"]:
                rows.pop(key, None)
        elif op == "delete_multi":
            for key, old in zip(payload["keys"], payload["olds"]):
                rows[key] = tuple(old)
        else:
            raise StorageError(f"memory storage cannot undo op {op!r}")

    def redo(self, services, lsn: int, payload: dict) -> None:
        """No redo: the temporary relation's contents are volatile."""


def _descriptor_for(services, payload: dict):
    """Storage descriptor, or None when the relation has been dropped."""
    database = getattr(services, "database", None)
    if database is None:
        raise StorageError("recovery handler needs services.database wired")
    from ..errors import UnknownObjectError
    try:
        entry = database.catalog.entry_by_id(payload["relation_id"])
    except UnknownObjectError:
        return None
    return entry.handle.descriptor.storage_descriptor


class MemoryStorageMethod(StorageMethod):
    """Dict-backed temporary relations (paper's storage method 1)."""

    name = "memory"
    recoverable = False   # does not survive restart
    updatable = True
    ordered_by_key = False

    # -- DDL -------------------------------------------------------------------
    def validate_attributes(self, schema, attributes):
        attributes = dict(attributes)
        capacity = attributes.pop("initial_capacity", 0)
        if attributes:
            raise StorageError(
                f"memory storage: unknown attributes {sorted(attributes)}")
        if not isinstance(capacity, int) or capacity < 0:
            raise StorageError(
                f"memory storage: initial_capacity must be a non-negative "
                f"int, got {capacity!r}")
        return {"initial_capacity": capacity}

    def create_instance(self, ctx, relation_id, schema, attributes) -> dict:
        return {"relation_id": relation_id, "rows": {}, "next_key": 1,
                "attributes": dict(attributes)}

    def destroy_instance(self, ctx, descriptor) -> None:
        descriptor["rows"].clear()

    def reset_instance(self, descriptor: dict) -> None:
        """Called at restart: temporary contents vanish."""
        descriptor["rows"].clear()
        descriptor["next_key"] = 1

    def recovery_handler(self) -> ResourceHandler:
        return _MemoryHandler()

    # -- modification ---------------------------------------------------------------
    def insert(self, ctx, handle, record):
        descriptor = handle.descriptor.storage_descriptor
        key = descriptor["next_key"]
        descriptor["next_key"] = key + 1
        ctx.lock_record(handle.relation_id, key, LockMode.X)
        descriptor["rows"][key] = record
        ctx.log(self.resource, {"op": "insert", "key": key,
                                "relation_id": descriptor["relation_id"]})
        ctx.stats.bump("memory.inserts")
        return key

    def update(self, ctx, handle, key, old_record, new_record):
        descriptor = handle.descriptor.storage_descriptor
        self._require(descriptor, key)
        ctx.lock_record(handle.relation_id, key, LockMode.X)
        descriptor["rows"][key] = new_record
        ctx.log(self.resource, {"op": "update", "key": key,
                                "old": old_record,
                                "relation_id": descriptor["relation_id"]})
        ctx.stats.bump("memory.updates")
        return key

    def delete(self, ctx, handle, key, old_record) -> None:
        descriptor = handle.descriptor.storage_descriptor
        self._require(descriptor, key)
        ctx.lock_record(handle.relation_id, key, LockMode.X)
        del descriptor["rows"][key]
        ctx.log(self.resource, {"op": "delete", "key": key,
                                "old": old_record,
                                "relation_id": descriptor["relation_id"]})
        ctx.stats.bump("memory.deletes")

    # -- set-at-a-time modification -------------------------------------------------
    def insert_batch(self, ctx, handle, records):
        """Assign all surrogate keys and write one grouped log record."""
        descriptor = handle.descriptor.storage_descriptor
        keys = []
        for record in records:
            key = descriptor["next_key"]
            descriptor["next_key"] = key + 1
            ctx.lock_record(handle.relation_id, key, LockMode.X)
            descriptor["rows"][key] = record
            keys.append(key)
        ctx.log(self.resource, {"op": "insert_multi", "keys": keys,
                                "relation_id": descriptor["relation_id"]})
        ctx.stats.bump("memory.inserts", len(keys))
        return keys

    def delete_batch(self, ctx, handle, items) -> None:
        descriptor = handle.descriptor.storage_descriptor
        keys, olds = [], []
        for key, old in items:
            self._require(descriptor, key)
            ctx.lock_record(handle.relation_id, key, LockMode.X)
            del descriptor["rows"][key]
            keys.append(key)
            olds.append(old)
        ctx.log(self.resource, {"op": "delete_multi", "keys": keys,
                                "olds": olds,
                                "relation_id": descriptor["relation_id"]})
        ctx.stats.bump("memory.deletes", len(keys))

    # -- access -------------------------------------------------------------------------
    def fetch(self, ctx, handle, key, fields=None, predicate=None):
        descriptor = handle.descriptor.storage_descriptor
        record = descriptor["rows"].get(key)
        if record is None:
            return None
        ctx.lock_record(handle.relation_id, key, LockMode.S)
        ctx.stats.bump("memory.fetches")
        if predicate is not None and not predicate.matches(record):
            return None
        if fields is None:
            return record
        return tuple(record[i] for i in fields)

    def fetch_many(self, ctx, handle, keys, fields=None, predicate=None):
        """Direct dict lookups for the whole key set; one stats bump."""
        rows = handle.descriptor.storage_descriptor["rows"]
        pairs = []
        for key in keys:
            record = rows.get(key)
            if record is None:
                continue
            ctx.lock_record(handle.relation_id, key, LockMode.S)
            if predicate is not None and not predicate.matches(record):
                continue
            if fields is None:
                pairs.append((key, record))
            else:
                pairs.append((key, tuple(record[i] for i in fields)))
        ctx.stats.bump("memory.fetches", len(pairs))
        return pairs

    def open_scan(self, ctx, handle, fields=None, predicate=None) -> Scan:
        descriptor = handle.descriptor.storage_descriptor
        scan = MemoryScan(ctx, handle, descriptor["rows"], fields, predicate)
        ctx.services.scans.register(scan)
        return scan

    # -- planning ---------------------------------------------------------------------------
    def record_count(self, ctx, handle) -> int:
        return len(handle.descriptor.storage_descriptor["rows"])

    def page_count(self, ctx, handle) -> int:
        return 0  # main memory: no page I/O

    def _require(self, descriptor, key) -> None:
        if key not in descriptor["rows"]:
            raise RecordNotFoundError(
                f"memory relation {descriptor['relation_id']} has no record "
                f"{key!r}")
