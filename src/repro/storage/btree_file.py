"""B-tree-organised relation storage.

The paper's second storage-method example: "the records of the relation
... may be stored in the leaves of a B-tree index".  Record keys here are
"composed from some subset of the fields of the records" — the DDL
attribute list names the key columns, and the storage method enforces that
key values are non-null and unique (the key must identify the record).

Implementation: record bytes live in slotted pages exactly like the heap;
the B-tree ordering layer is an ordered directory (key tuple → page, slot)
kept in the storage descriptor, which resides in non-volatile catalog
storage (see DESIGN.md).  This preserves every architecturally relevant
behaviour — field-composed keys, key-ordered key-sequential access,
cheap direct-by-key access, key changes on update — while reusing the
heap's page-level crash recovery: page operations are logged and
LSN-stamped, and the directory is maintained by the undo path (it survives
crashes with the catalog, so redo leaves it alone).

DDL attributes: ``key`` (list of column names, required), ``fill_hint``.
"""

from __future__ import annotations

import bisect
from typing import List, Optional, Sequence, Tuple

from ..core.context import ExecutionContext
from ..core.records import decode_record, encode_record
from ..core.storage_method import RelationHandle, StorageMethod
from ..errors import (PageError, RecordNotFoundError, ScanError,
                      StorageError, UniqueViolation)
from ..query.cost import AccessCost, DEFAULT_SELECTIVITY
from ..services.locks import LockMode
from ..services.predicate import Predicate
from ..services.recovery import ResourceHandler
from ..services.scans import AFTER, BEFORE, ON, Scan, ScanPosition
from .heap import _ensure_formatted

__all__ = ["BTreeFileStorageMethod", "BTreeFileScan"]

PAGE_TYPE_BTREE_LEAF = 2


def _descriptor_for(services, payload: dict):
    """Storage descriptor, or None when the relation has been dropped."""
    database = getattr(services, "database", None)
    if database is None:
        raise StorageError("recovery handler needs services.database wired")
    from ..errors import UnknownObjectError
    try:
        entry = database.catalog.entry_by_id(payload["relation_id"])
    except UnknownObjectError:
        return None
    return entry.handle.descriptor.storage_descriptor


def _dir_insert(directory: List[list], key: tuple, page: int, slot: int) -> None:
    index = bisect.bisect_left(directory, [list(key)])
    directory.insert(index, [list(key), page, slot])


def _dir_find(directory: List[list], key: tuple) -> Optional[int]:
    index = bisect.bisect_left(directory, [list(key)])
    if index < len(directory) and tuple(directory[index][0]) == tuple(key):
        return index
    return None


def _dir_remove(directory: List[list], key: tuple) -> Tuple[int, int]:
    index = _dir_find(directory, key)
    if index is None:
        raise RecordNotFoundError(f"no directory entry for key {key!r}")
    __, page, slot = directory.pop(index)
    return page, slot


class _BTreeFileHandler(ResourceHandler):
    """Undo/redo: pages are LSN-guarded; the directory is undo-only
    (it lives in non-volatile catalog storage and survives the crash)."""

    def locked_records(self, payload: dict):
        op = payload.get("op")
        relation_id = payload["relation_id"]
        if op in ("insert", "update", "delete"):
            return [(relation_id, tuple(payload["key"]))]
        if op in ("insert_multi", "delete_multi"):
            return [(relation_id, tuple(key)) for key in payload["keys"]]
        return ()  # new_page: physical allocation, no record lock

    def undo(self, services, payload: dict, clr_lsn: int) -> None:
        descriptor = _descriptor_for(services, payload)
        if descriptor is None:
            return  # the relation was dropped; nothing left to undo
        op = payload["op"]
        if op == "new_page":
            page_id = payload["page"]
            if page_id in descriptor["pages"]:
                descriptor["pages"].remove(page_id)
                services.buffer.free_page(page_id)
            return
        buffer = services.buffer
        page = buffer.fetch(payload["page"])
        try:
            if op == "insert":
                page.delete(payload["slot"])
                _dir_remove(descriptor["directory"], tuple(payload["key"]))
                descriptor["ntuples"] -= 1
            elif op == "delete":
                page.insert(payload["old_raw"], slot=payload["slot"])
                _dir_insert(descriptor["directory"], tuple(payload["key"]),
                            payload["page"], payload["slot"])
                descriptor["ntuples"] += 1
            elif op == "update":
                page.update(payload["slot"], payload["old_raw"])
            elif op == "insert_multi":
                for slot, key in zip(payload["slots"], payload["keys"]):
                    page.delete(slot)
                    _dir_remove(descriptor["directory"], tuple(key))
                descriptor["ntuples"] -= len(payload["slots"])
            elif op == "delete_multi":
                for slot, raw, key in zip(payload["slots"],
                                          payload["old_raws"],
                                          payload["keys"]):
                    page.insert(raw, slot=slot)
                    _dir_insert(descriptor["directory"], tuple(key),
                                payload["page"], slot)
                descriptor["ntuples"] += len(payload["slots"])
            else:
                raise StorageError(f"btree_file cannot undo op {op!r}")
            page.page_lsn = clr_lsn
        finally:
            buffer.unpin(payload["page"], dirty=True)

    def redo(self, services, lsn: int, payload: dict) -> None:
        op = payload["op"]
        descriptor = _descriptor_for(services, payload)
        if descriptor is None:
            return  # the relation was dropped; its pages are gone
        if op == "new_page":
            if payload.get("compensates") is not None:
                return
            page_id = payload["page"]
            if page_id in descriptor["pages"] and services.disk.exists(page_id):
                page = services.buffer.fetch(page_id)
                try:
                    _ensure_formatted(page)
                finally:
                    services.buffer.unpin(page_id, dirty=True)
            return
        if not services.disk.exists(payload["page"]):
            return
        buffer = services.buffer
        page = buffer.fetch(payload["page"])
        dirty = False
        try:
            _ensure_formatted(page)
            if page.page_lsn >= lsn:
                # Already on the device at or past this record.
                services.stats.bump("recovery.redo.skipped_page_lsn",
                                    len(payload.get("slots", ())) or 1)
                return
            if payload.get("compensates") is not None:
                if op == "insert":
                    page.delete(payload["slot"])
                elif op == "delete":
                    page.insert(payload["old_raw"], slot=payload["slot"])
                elif op == "update":
                    page.update(payload["slot"], payload["old_raw"])
                elif op == "insert_multi":
                    for slot in payload["slots"]:
                        page.delete(slot)
                elif op == "delete_multi":
                    for slot, raw in zip(payload["slots"],
                                         payload["old_raws"]):
                        page.insert(raw, slot=slot)
            elif op == "insert":
                page.insert(payload["new_raw"], slot=payload["slot"])
            elif op == "delete":
                page.delete(payload["slot"])
            elif op == "update":
                page.update(payload["slot"], payload["new_raw"])
            elif op == "insert_multi":
                for slot, raw in zip(payload["slots"], payload["new_raws"]):
                    page.insert(raw, slot=slot)
            elif op == "delete_multi":
                for slot in payload["slots"]:
                    page.delete(slot)
            else:
                raise StorageError(f"btree_file cannot redo op {op!r}")
            page.page_lsn = lsn
            dirty = True
            # A multi record redoes one logical operation per slot.
            services.stats.bump("recovery.redo.applied",
                                len(payload.get("slots", ())) or 1)
        finally:
            buffer.unpin(payload["page"], dirty=dirty)


class BTreeFileScan(Scan):
    """Key-sequential access in key order.

    The position is the last key returned; a deletion at the position
    leaves the scan just after it, because the next call advances to the
    smallest stored key strictly greater than the position.
    """

    def __init__(self, ctx: ExecutionContext, handle: RelationHandle,
                 fields: Optional[Sequence[int]],
                 predicate: Optional[Predicate],
                 low: Optional[tuple] = None, high: Optional[tuple] = None):
        super().__init__(ctx.txn_id)
        self.ctx = ctx
        self.handle = handle
        self.fields = tuple(fields) if fields is not None else None
        self.predicate = predicate
        self.low = low
        self.high = high
        self.state = BEFORE
        self.position: Optional[tuple] = None  # last key returned

    def next(self):
        self._check_open()
        descriptor = self.handle.descriptor.storage_descriptor
        directory = descriptor["directory"]
        if self.position is None:
            index = 0 if self.low is None else bisect.bisect_left(
                directory, [list(self.low)])
        else:
            index = bisect.bisect_right(directory, [list(self.position),
                                                    float("inf"), 0])
        buffer = self.ctx.buffer
        while index < len(directory):
            key_list, page_id, slot = directory[index]
            key = tuple(key_list)
            if self.high is not None and key > self.high:
                break
            index += 1
            self.position = key
            self.state = ON
            self.ctx.stats.bump("btree_file.tuples_scanned")
            page = buffer.fetch(page_id)
            try:
                record = decode_record(self.handle.schema, page.read(slot))
                if self.predicate is not None \
                        and not self.predicate.matches(record):
                    continue
                self.ctx.lock_record(self.handle.relation_id, key, LockMode.S)
                if self.fields is None:
                    return key, record
                return key, tuple(record[i] for i in self.fields)
            finally:
                buffer.unpin(page_id)
        self.state = AFTER
        return None

    def next_batch(self, n: int) -> list:
        """Extract up to ``n`` records in key order, pinning each leaf page
        once for its whole run of consecutive directory entries (bulk
        loads fill pages in key order, so runs are long)."""
        self._check_open()
        if n < 1:
            raise ScanError(f"next_batch needs a positive count, got {n}")
        descriptor = self.handle.descriptor.storage_descriptor
        directory = descriptor["directory"]
        if self.position is None:
            index = 0 if self.low is None else bisect.bisect_left(
                directory, [list(self.low)])
        else:
            index = bisect.bisect_right(directory, [list(self.position),
                                                    float("inf"), 0])
        buffer = self.ctx.buffer
        stats = self.ctx.stats
        schema = self.handle.schema
        batch: list = []
        past_high = False
        while index < len(directory) and len(batch) < n and not past_high:
            run_page = directory[index][1]
            # Gather the run of consecutive entries on this leaf (bounded
            # by the high key), decode it under one pin, then filter the
            # whole run at once — column-at-a-time when the predicate
            # compiles to a kernel.
            run: list = []  # (key, slot) in key order
            run_end = index
            while run_end < len(directory):
                key_list, page_id, slot = directory[run_end]
                if page_id != run_page:
                    break
                key = tuple(key_list)
                if self.high is not None and key > self.high:
                    past_high = True
                    break
                run.append((key, slot))
                run_end += 1
            if not run:
                break  # the very next key is already past the high bound
            page = buffer.fetch(run_page)
            try:
                records = [decode_record(schema, page.read(slot))
                           for _, slot in run]
            finally:
                buffer.unpin(run_page)
            self.state = ON
            if self.predicate is None:
                selected = range(len(records))
            else:
                selected = self.predicate.match_indexes(records, stats)
            room = n - len(batch)
            for i in selected[:room] if len(selected) > room else selected:
                key = run[i][0]
                self.ctx.lock_record(self.handle.relation_id, key,
                                     LockMode.S)
                if self.fields is None:
                    batch.append((key, records[i]))
                else:
                    record = records[i]
                    batch.append((key, tuple(record[f]
                                             for f in self.fields)))
            if len(selected) >= room and selected:
                # Batch filled mid-run: stop at the last consumed key so
                # the entries past it are re-examined (and only then
                # counted) by the next call — same totals as the old
                # entry-at-a-time loop, which never looked past the cut.
                last = selected[room - 1] if len(selected) > room \
                    else selected[-1]
                self.position = run[last][0]
                stats.bump_many({"btree_file.tuples_scanned": last + 1})
                break
            self.position = run[-1][0]
            stats.bump_many({"btree_file.tuples_scanned": len(run)})
            index = run_end
        if not batch:
            self.state = AFTER
        return batch

    def save_position(self) -> ScanPosition:
        return ScanPosition(self.state, self.position)

    def restore_position(self, saved: ScanPosition) -> None:
        self.state = saved.state
        self.position = saved.item


class BTreeFileStorageMethod(StorageMethod):
    """Records stored in the leaves of a B-tree, keyed by chosen fields."""

    name = "btree_file"
    recoverable = True
    updatable = True
    ordered_by_key = True

    # -- DDL -------------------------------------------------------------------
    def validate_attributes(self, schema, attributes):
        attributes = dict(attributes)
        key_columns = attributes.pop("key", None)
        fill = attributes.pop("fill_hint", 1.0)
        if attributes:
            raise StorageError(
                f"btree_file storage: unknown attributes {sorted(attributes)}")
        if not key_columns:
            raise StorageError(
                "btree_file storage requires a 'key' attribute listing the "
                "key columns")
        for column in key_columns:
            if not schema.orderable(column):
                raise StorageError(
                    f"btree_file key column {column!r} has unorderable type "
                    f"{schema.field(column).type_code}")
        return {"key": list(key_columns), "fill_hint": float(fill)}

    def create_instance(self, ctx, relation_id, schema, attributes) -> dict:
        key_fields = list(schema.indexes_of(attributes["key"]))
        return {"relation_id": relation_id, "pages": [], "ntuples": 0,
                "key_fields": key_fields, "directory": [],
                "attributes": dict(attributes)}

    def destroy_instance(self, ctx, descriptor) -> None:
        for page_id in descriptor["pages"]:
            ctx.buffer.free_page(page_id)
        descriptor["pages"] = []
        descriptor["directory"] = []
        descriptor["ntuples"] = 0

    def recovery_handler(self) -> ResourceHandler:
        return _BTreeFileHandler()

    def key_fields(self, handle) -> Tuple[int, ...]:
        return tuple(handle.descriptor.storage_descriptor["key_fields"])

    def key_of(self, handle, record: Tuple) -> tuple:
        key = tuple(record[i]
                    for i in handle.descriptor.storage_descriptor["key_fields"])
        if any(v is None for v in key):
            raise StorageError(
                f"btree_file key fields must be non-null, got {key!r}")
        return key

    # -- modification ---------------------------------------------------------------
    def insert(self, ctx, handle, record):
        descriptor = handle.descriptor.storage_descriptor
        key = self.key_of(handle, record)
        if _dir_find(descriptor["directory"], key) is not None:
            raise UniqueViolation(
                self.name, f"duplicate storage key {key!r} in relation "
                           f"{handle.name!r}")
        ctx.lock_record(handle.relation_id, key, LockMode.X)
        raw = encode_record(handle.schema, record)
        page_id, page = self._page_with_room(ctx, descriptor, len(raw))
        try:
            slot = page.insert(raw)
            log = ctx.log(self.resource, {
                "op": "insert", "relation_id": descriptor["relation_id"],
                "page": page_id, "slot": slot, "new_raw": raw,
                "key": list(key)})
            page.page_lsn = log.lsn
        finally:
            ctx.buffer.unpin(page_id, dirty=True)
        _dir_insert(descriptor["directory"], key, page_id, slot)
        descriptor["ntuples"] += 1
        ctx.stats.bump("btree_file.inserts")
        return key

    def update(self, ctx, handle, key, old_record, new_record):
        new_key = self.key_of(handle, new_record)
        if tuple(new_key) != tuple(key):
            # Key fields changed: the record moves within the key space.
            self.delete(ctx, handle, key, old_record)
            return self.insert(ctx, handle, new_record)
        descriptor = handle.descriptor.storage_descriptor
        index = _dir_find(descriptor["directory"], tuple(key))
        if index is None:
            raise RecordNotFoundError(
                f"relation {handle.name!r} has no record with key {key!r}")
        __, page_id, slot = descriptor["directory"][index]
        ctx.lock_record(handle.relation_id, tuple(key), LockMode.X)
        new_raw = encode_record(handle.schema, new_record)
        page = ctx.buffer.fetch(page_id)
        try:
            old_raw = page.update(slot, new_raw)
        except PageError:
            ctx.buffer.unpin(page_id)
            self.delete(ctx, handle, key, old_record)
            return self.insert(ctx, handle, new_record)
        try:
            log = ctx.log(self.resource, {
                "op": "update", "relation_id": descriptor["relation_id"],
                "page": page_id, "slot": slot,
                "old_raw": old_raw, "new_raw": new_raw, "key": list(key)})
            page.page_lsn = log.lsn
            ctx.stats.bump("btree_file.updates")
            return tuple(key)
        finally:
            ctx.buffer.unpin(page_id, dirty=True)

    def delete(self, ctx, handle, key, old_record) -> None:
        descriptor = handle.descriptor.storage_descriptor
        ctx.lock_record(handle.relation_id, tuple(key), LockMode.X)
        page_id, slot = _dir_remove(descriptor["directory"], tuple(key))
        page = ctx.buffer.fetch(page_id)
        try:
            old_raw = page.delete(slot)
            log = ctx.log(self.resource, {
                "op": "delete", "relation_id": descriptor["relation_id"],
                "page": page_id, "slot": slot, "old_raw": old_raw,
                "key": list(key)})
            page.page_lsn = log.lsn
        finally:
            ctx.buffer.unpin(page_id, dirty=True)
        descriptor["ntuples"] -= 1
        ctx.stats.bump("btree_file.deletes")

    # -- set-at-a-time modification -------------------------------------------------
    def insert_batch(self, ctx, handle, records):
        """Sort the set by storage key, check uniqueness (against the
        directory *and* within the batch) up front, then fill pages with
        one log record per page."""
        descriptor = handle.descriptor.storage_descriptor
        entries = sorted(((self.key_of(handle, record), record)
                          for record in records), key=lambda e: e[0])
        seen = set()
        for key, __ in entries:
            if key in seen or _dir_find(descriptor["directory"], key) \
                    is not None:
                raise UniqueViolation(
                    self.name, f"duplicate storage key {key!r} in relation "
                               f"{handle.name!r}")
            seen.add(key)
            ctx.lock_record(handle.relation_id, key, LockMode.X)
        keys_by_record = {id(record): key for key, record in entries}
        i = 0
        while i < len(entries):
            key, record = entries[i]
            raw = encode_record(handle.schema, record)
            page_id, page = self._page_with_room(ctx, descriptor, len(raw))
            slots, raws, keys = [], [], []
            try:
                while i < len(entries):
                    key, record = entries[i]
                    raw = encode_record(handle.schema, record)
                    if slots and not page.fits(len(raw)):
                        break
                    slot = page.insert(raw)
                    slots.append(slot)
                    raws.append(raw)
                    keys.append(list(key))
                    _dir_insert(descriptor["directory"], key, page_id, slot)
                    i += 1
                log = ctx.log(self.resource, {
                    "op": "insert_multi",
                    "relation_id": descriptor["relation_id"],
                    "page": page_id, "slots": slots, "new_raws": raws,
                    "keys": keys})
                page.page_lsn = log.lsn
                descriptor["ntuples"] += len(slots)
            finally:
                ctx.buffer.unpin(page_id, dirty=True)
        ctx.stats.bump("btree_file.inserts", len(records))
        return [keys_by_record[id(record)] for record in records]

    def delete_batch(self, ctx, handle, items) -> None:
        """Remove directory entries first, then group victims by page for
        one pin and one log record per page."""
        descriptor = handle.descriptor.storage_descriptor
        by_page = {}
        for key, __ in items:
            key = tuple(key)
            ctx.lock_record(handle.relation_id, key, LockMode.X)
            page_id, slot = _dir_remove(descriptor["directory"], key)
            by_page.setdefault(page_id, []).append((slot, key))
        for page_id, victims in by_page.items():
            page = ctx.buffer.fetch(page_id)
            try:
                slots = [slot for slot, __ in victims]
                old_raws = [page.delete(slot) for slot in slots]
                log = ctx.log(self.resource, {
                    "op": "delete_multi",
                    "relation_id": descriptor["relation_id"],
                    "page": page_id, "slots": slots, "old_raws": old_raws,
                    "keys": [list(key) for __, key in victims]})
                page.page_lsn = log.lsn
            finally:
                ctx.buffer.unpin(page_id, dirty=True)
        descriptor["ntuples"] -= len(items)
        ctx.stats.bump("btree_file.deletes", len(items))

    # -- access -------------------------------------------------------------------------
    def fetch(self, ctx, handle, key, fields=None, predicate=None):
        descriptor = handle.descriptor.storage_descriptor
        index = _dir_find(descriptor["directory"], tuple(key))
        if index is None:
            return None
        __, page_id, slot = descriptor["directory"][index]
        ctx.lock_record(handle.relation_id, tuple(key), LockMode.S)
        page = ctx.buffer.fetch(page_id)
        try:
            record = decode_record(handle.schema, page.read(slot))
        finally:
            ctx.buffer.unpin(page_id)
        ctx.stats.bump("btree_file.fetches")
        if predicate is not None and not predicate.matches(record):
            return None
        if fields is None:
            return record
        return tuple(record[i] for i in fields)

    def fetch_many(self, ctx, handle, keys, fields=None, predicate=None):
        """Resolve all keys through the directory first, then pin each
        leaf page once for all its requested records."""
        descriptor = handle.descriptor.storage_descriptor
        directory = descriptor["directory"]
        by_page = {}
        for key in keys:
            key = tuple(key)
            index = _dir_find(directory, key)
            if index is None:
                continue
            __, page_id, slot = directory[index]
            by_page.setdefault(page_id, []).append((key, slot))
        found = {}
        for page_id, entries in by_page.items():
            page = ctx.buffer.fetch(page_id)
            try:
                for key, slot in entries:
                    ctx.lock_record(handle.relation_id, key, LockMode.S)
                    record = decode_record(handle.schema, page.read(slot))
                    if predicate is not None and not predicate.matches(record):
                        continue
                    if fields is None:
                        found[key] = record
                    else:
                        found[key] = tuple(record[i] for i in fields)
            finally:
                ctx.buffer.unpin(page_id)
        ctx.stats.bump("btree_file.fetches", len(found))
        return [(key, found[tuple(key)]) for key in keys
                if tuple(key) in found]

    def open_scan(self, ctx, handle, fields=None, predicate=None,
                  low: Optional[tuple] = None,
                  high: Optional[tuple] = None) -> Scan:
        scan = BTreeFileScan(ctx, handle, fields, predicate, low, high)
        ctx.services.scans.register(scan)
        return scan

    # -- planning ---------------------------------------------------------------------------
    def record_count(self, ctx, handle) -> int:
        return handle.descriptor.storage_descriptor["ntuples"]

    def page_count(self, ctx, handle) -> int:
        return len(handle.descriptor.storage_descriptor["pages"])

    def estimate_cost(self, ctx, handle, eligible) -> AccessCost:
        """Reports a low cost when predicates constrain the leading key
        field (records are clustered in key order)."""
        base = super().estimate_cost(ctx, handle, eligible)
        key_fields = self.key_fields(handle)
        if not key_fields:
            return base
        leading = key_fields[0]
        constrained = [p for p in eligible
                       if p.is_simple and p.field_index == leading
                       and p.op in ("=", "<", "<=", ">", ">=")]
        if not constrained:
            return base
        tuples = max(1, self.record_count(ctx, handle))
        pages = max(1, self.page_count(ctx, handle))
        selectivity = 1.0
        for pred in constrained:
            selectivity *= DEFAULT_SELECTIVITY.get(pred.op, 0.5)
        expected = max(1.0, tuples * selectivity)
        touched_pages = max(1.0, pages * expected / tuples)
        return AccessCost(io_pages=touched_pages, cpu_tuples=expected,
                          expected_tuples=expected,
                          relevant=tuple(eligible),
                          ordered_by=tuple(key_fields),
                          route=("keyed_scan",))

    # -- internals -----------------------------------------------------------------------------
    def _page_with_room(self, ctx, descriptor: dict, length: int):
        pages = descriptor["pages"]
        if pages:
            page_id = pages[-1]
            page = ctx.buffer.fetch(page_id)
            if page.fits(length):
                return page_id, page
            ctx.buffer.unpin(page_id)
        page = ctx.buffer.new_page(PAGE_TYPE_BTREE_LEAF)
        pages.append(page.page_id)
        log = ctx.log(self.resource, {
            "op": "new_page", "relation_id": descriptor["relation_id"],
            "page": page.page_id})
        page.page_lsn = log.lsn
        ctx.stats.bump("btree_file.page_allocations")
        return page.page_id, page
