"""Recoverable heap storage method.

The paper's canonical example: "the records of the relation may be stored
sequentially in a disk file" (Figure 1's EMPLOYEE relation uses the heap
storage method).  Records live in slotted pages; the record key is the
record's address, a ``(page_id, slot)`` pair — "record keys may be record
addresses".

Recovery: every modification writes a logical log record carrying the page,
slot, and record images needed to undo and redo it.  Pages are stamped with
the log record's LSN; the redo handler skips pages whose ``page_lsn`` is
already at or past the record's LSN, making restart redo idempotent.  The
page list lives in the storage descriptor (non-volatile catalog storage,
see DESIGN.md), so structural recovery reduces to re-formatting pages that
never reached the device.

DDL attributes: ``fill_hint`` (float in (0, 1], advisory page fill target).
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from ..core.context import ExecutionContext
from ..core.records import decode_record, encode_record
from ..core.storage_method import RelationHandle, StorageMethod
from ..errors import PageError, RecordNotFoundError, ScanError, StorageError
from ..services.locks import LockMode
from ..services.pages import HEADER_SIZE, PageView
from ..services.predicate import Predicate
from ..services.recovery import ResourceHandler
from ..services.scans import AFTER, BEFORE, ON, Scan, ScanPosition

__all__ = ["HeapStorageMethod", "HeapScan", "PAGE_TYPE_HEAP"]

PAGE_TYPE_HEAP = 1


def _descriptor_for(services, payload: dict):
    """The relation's storage descriptor, or None when the relation no
    longer exists (its operations are replayed after a committed DROP —
    the pages are gone with it, so the op is skipped)."""
    database = getattr(services, "database", None)
    if database is None:
        raise StorageError("recovery handler needs services.database wired")
    from ..errors import UnknownObjectError
    try:
        entry = database.catalog.entry_by_id(payload["relation_id"])
    except UnknownObjectError:
        return None
    return entry.handle.descriptor.storage_descriptor


def _ensure_formatted(page: PageView) -> None:
    """Format a page that never reached the device before the crash."""
    if page.free_offset < HEADER_SIZE:
        PageView.format(page.page_id, page.data, PAGE_TYPE_HEAP)


class _HeapHandler(ResourceHandler):
    """Page-stamped undo/redo for heap operations."""

    def locked_records(self, payload: dict):
        op = payload.get("op")
        relation_id = payload["relation_id"]
        if op in ("insert", "update", "delete"):
            return [(relation_id, (payload["page"], payload["slot"]))]
        if op in ("insert_multi", "delete_multi"):
            return [(relation_id, (payload["page"], slot))
                    for slot in payload["slots"]]
        return ()  # new_page: physical allocation, no record lock

    def undo(self, services, payload: dict, clr_lsn: int) -> None:
        op = payload["op"]
        descriptor = _descriptor_for(services, payload)
        if descriptor is None:
            return  # the relation was dropped; nothing left to undo
        if op == "new_page":
            page_id = payload["page"]
            if page_id in descriptor["pages"]:
                descriptor["pages"].remove(page_id)
                services.buffer.free_page(page_id)
            return
        buffer = services.buffer
        page = buffer.fetch(payload["page"])
        try:
            if op == "insert":
                page.delete(payload["slot"])
                descriptor["ntuples"] -= 1
            elif op == "delete":
                page.insert(payload["old_raw"], slot=payload["slot"])
                descriptor["ntuples"] += 1
            elif op == "update":
                page.update(payload["slot"], payload["old_raw"])
            elif op == "insert_multi":
                for slot in payload["slots"]:
                    page.delete(slot)
                descriptor["ntuples"] -= len(payload["slots"])
            elif op == "delete_multi":
                for slot, raw in zip(payload["slots"], payload["old_raws"]):
                    page.insert(raw, slot=slot)
                descriptor["ntuples"] += len(payload["slots"])
            else:
                raise StorageError(f"heap cannot undo op {op!r}")
            page.page_lsn = clr_lsn
        finally:
            buffer.unpin(payload["page"], dirty=True)

    def redo(self, services, lsn: int, payload: dict) -> None:
        op = payload["op"]
        descriptor = _descriptor_for(services, payload)
        if descriptor is None:
            return  # the relation was dropped; its pages are gone
        # Undo of new_page during rollback is compensated by a CLR whose
        # redo must also be the page removal; both directions are handled
        # by replaying against the (non-volatile) descriptor page list.
        if op == "new_page":
            if payload.get("compensates") is not None:
                return  # CLR for new_page: removal already reflected
            page_id = payload["page"]
            if page_id in descriptor["pages"] and services.disk.exists(page_id):
                page = services.buffer.fetch(page_id)
                try:
                    # The allocation record is the incarnation boundary: a
                    # page image stamped before it belongs to a prior tenant
                    # of this (reused) page id — or was zero-filled by the
                    # torn-page sweep — and must be wiped before this
                    # incarnation's updates replay onto it.
                    if page.page_lsn < lsn:
                        PageView.format(page.page_id, page.data,
                                        PAGE_TYPE_HEAP)
                        page.page_lsn = lsn
                finally:
                    services.buffer.unpin(page_id, dirty=True)
            return
        if not services.disk.exists(payload["page"]):
            return  # page was freed by a later (replayed) compensation
        buffer = services.buffer
        page = buffer.fetch(payload["page"])
        dirty = False
        try:
            _ensure_formatted(page)
            if page.page_lsn >= lsn:
                # Already applied before the crash: the page reached the
                # device at or past this record.  Count the skip so
                # restart work stays observable.
                services.stats.bump("recovery.redo.skipped_page_lsn",
                                    len(payload.get("slots", ())) or 1)
                return
            try:
                if payload.get("compensates") is not None:
                    self._redo_compensation(page, payload)
                elif op == "insert":
                    page.insert(payload["new_raw"], slot=payload["slot"])
                elif op == "delete":
                    page.delete(payload["slot"])
                elif op == "update":
                    page.update(payload["slot"], payload["new_raw"])
                elif op == "insert_multi":
                    for slot, raw in zip(payload["slots"],
                                         payload["new_raws"]):
                        page.insert(raw, slot=slot)
                elif op == "delete_multi":
                    for slot in payload["slots"]:
                        page.delete(slot)
                else:
                    raise StorageError(f"heap cannot redo op {op!r}")
            except PageError:
                # The record targets a prior incarnation of a reused page
                # id whose image was repaired (zero-filled) at restart, so
                # its slots no longer exist.  The incarnation's later
                # new_page redo wipes any partial replay; skipping here is
                # safe because the final image never includes this tenant.
                services.stats.bump("recovery.redo.stale_incarnation")
                return
            page.page_lsn = lsn
            dirty = True
            # A multi record redoes one logical operation per slot.
            services.stats.bump("recovery.redo.applied",
                                len(payload.get("slots", ())) or 1)
        finally:
            buffer.unpin(payload["page"], dirty=dirty)

    @staticmethod
    def _redo_compensation(page: PageView, payload: dict) -> None:
        """A CLR's redo applies the *inverse* of the compensated operation."""
        op = payload["op"]
        if op == "insert":
            page.delete(payload["slot"])
        elif op == "delete":
            page.insert(payload["old_raw"], slot=payload["slot"])
        elif op == "update":
            page.update(payload["slot"], payload["old_raw"])
        elif op == "insert_multi":
            for slot in payload["slots"]:
                page.delete(slot)
        elif op == "delete_multi":
            for slot, raw in zip(payload["slots"], payload["old_raws"]):
                page.insert(raw, slot=slot)


class HeapScan(Scan):
    """Key-sequential scan in physical (page list, slot) order.

    The position is the (page index, slot) last returned; records deleted
    at the position are skipped on the next call, leaving the scan "just
    after the deleted item".
    """

    def __init__(self, ctx: ExecutionContext, handle: RelationHandle,
                 fields: Optional[Sequence[int]],
                 predicate: Optional[Predicate]):
        super().__init__(ctx.txn_id)
        self.ctx = ctx
        self.handle = handle
        self.fields = tuple(fields) if fields is not None else None
        self.predicate = predicate
        self.state = BEFORE
        self.position: Optional[Tuple[int, int]] = None  # (page index, slot)

    def next(self):
        self._check_open()
        descriptor = self.handle.descriptor.storage_descriptor
        pages: List[int] = descriptor["pages"]
        page_index, slot = (0, -1) if self.position is None else self.position
        buffer = self.ctx.buffer
        while page_index < len(pages):
            page_id = pages[page_index]
            page = buffer.fetch(page_id)
            try:
                for next_slot in range(slot + 1, page.slot_count):
                    if not page.slot_in_use(next_slot):
                        continue
                    self.position = (page_index, next_slot)
                    self.state = ON
                    self.ctx.stats.bump("heap.tuples_scanned")
                    raw = page.read(next_slot)
                    record = decode_record(self.handle.schema, raw)
                    # Filter while the record is still in the buffer pool.
                    if self.predicate is not None \
                            and not self.predicate.matches(record):
                        continue
                    key = (page_id, next_slot)
                    self.ctx.lock_record(self.handle.relation_id, key,
                                         LockMode.S)
                    if self.fields is None:
                        return key, record
                    return key, tuple(record[i] for i in self.fields)
            finally:
                buffer.unpin(page_id)
            page_index += 1
            slot = -1
            self.position = (page_index, -1)
        self.state = AFTER
        return None

    #: Pages prefetched ahead of the one being extracted during a batch.
    _PREFETCH_PAGES = 4

    def next_batch(self, n: int) -> list:
        """Extract up to ``n`` qualifying records page-at-a-time: each page
        is pinned once for all its records, and the pages about to be
        crossed are pre-installed in the buffer pool."""
        self._check_open()
        if n < 1:
            raise ScanError(f"next_batch needs a positive count, got {n}")
        descriptor = self.handle.descriptor.storage_descriptor
        pages: List[int] = descriptor["pages"]
        page_index, slot = (0, -1) if self.position is None else self.position
        buffer = self.ctx.buffer
        stats = self.ctx.stats
        schema = self.handle.schema
        batch: list = []
        while page_index < len(pages) and len(batch) < n:
            page_id = pages[page_index]
            page = buffer.fetch(page_id)
            try:
                # Decode every remaining in-use slot under a single pin;
                # the predicate then runs once over the whole page,
                # column-at-a-time when it compiles to a kernel.
                slots = [s for s in range(slot + 1, page.slot_count)
                         if page.slot_in_use(s)]
                records = [decode_record(schema, page.read(s)) for s in slots]
            finally:
                buffer.unpin(page_id)
            if records:
                self.state = ON
            if self.predicate is None:
                selected = range(len(records))
            else:
                selected = self.predicate.match_indexes(records, stats)
            room = n - len(batch)
            for i in selected[:room] if len(selected) > room else selected:
                key = (page_id, slots[i])
                self.ctx.lock_record(self.handle.relation_id, key,
                                     LockMode.S)
                if self.fields is None:
                    batch.append((key, records[i]))
                else:
                    record = records[i]
                    batch.append((key, tuple(record[f]
                                             for f in self.fields)))
            if len(selected) >= room and selected:
                # The batch filled on this page: stop at the last consumed
                # slot.  Tuples past it are only accounted for when the
                # next call re-examines them (same totals as the old
                # slot-at-a-time loop, which never looked past the cut).
                last = selected[room - 1] if len(selected) > room \
                    else selected[-1]
                self.position = (page_index, slots[last])
                stats.bump_many({"heap.tuples_scanned": last + 1})
                break
            if records:
                stats.bump_many({"heap.tuples_scanned": len(records)})
            page_index += 1
            slot = -1
            self.position = (page_index, -1)
            if len(batch) < n and page_index < len(pages):
                # The batch crosses into the next page: read ahead of it.
                buffer.prefetch(pages[page_index:
                                      page_index + self._PREFETCH_PAGES])
        if not batch:
            self.state = AFTER
        return batch

    def save_position(self) -> ScanPosition:
        return ScanPosition(self.state, self.position)

    def restore_position(self, saved: ScanPosition) -> None:
        self.state = saved.state
        self.position = saved.item


class HeapStorageMethod(StorageMethod):
    """Slotted-page heap with address record keys."""

    name = "heap"
    recoverable = True
    updatable = True
    ordered_by_key = False

    # -- DDL -------------------------------------------------------------------
    def validate_attributes(self, schema, attributes):
        attributes = dict(attributes)
        fill = attributes.pop("fill_hint", 1.0)
        if attributes:
            raise StorageError(
                f"heap storage: unknown attributes {sorted(attributes)}")
        if not isinstance(fill, (int, float)) or not 0 < fill <= 1:
            raise StorageError(
                f"heap storage: fill_hint must be in (0, 1], got {fill!r}")
        return {"fill_hint": float(fill)}

    def create_instance(self, ctx, relation_id, schema, attributes) -> dict:
        return {"relation_id": relation_id, "pages": [], "ntuples": 0,
                "attributes": dict(attributes)}

    def destroy_instance(self, ctx, descriptor) -> None:
        for page_id in descriptor["pages"]:
            ctx.buffer.free_page(page_id)
        descriptor["pages"] = []
        descriptor["ntuples"] = 0

    def recovery_handler(self) -> ResourceHandler:
        return _HeapHandler()

    # -- modification ---------------------------------------------------------------
    def insert(self, ctx, handle, record):
        descriptor = handle.descriptor.storage_descriptor
        raw = encode_record(handle.schema, record)
        page_id, page = self._page_with_room(ctx, descriptor, len(raw))
        try:
            slot = page.insert(raw)
            key = (page_id, slot)
            ctx.lock_record(handle.relation_id, key, LockMode.X)
            try:
                log = ctx.log(self.resource, {
                    "op": "insert", "relation_id": descriptor["relation_id"],
                    "page": page_id, "slot": slot, "new_raw": raw})
            except BaseException:
                # WAL protocol: a page modification without a log record
                # must not survive — rollback can only undo logged work.
                page.delete(slot)
                raise
            page.page_lsn = log.lsn
            descriptor["ntuples"] += 1
            ctx.stats.bump("heap.inserts")
            return key
        finally:
            ctx.buffer.unpin(page_id, dirty=True)

    def update(self, ctx, handle, key, old_record, new_record):
        descriptor = handle.descriptor.storage_descriptor
        page_id, slot = key
        ctx.lock_record(handle.relation_id, key, LockMode.X)
        new_raw = encode_record(handle.schema, new_record)
        page = ctx.buffer.fetch(page_id)
        try:
            old_raw = page.update(slot, new_raw)
        except PageError:
            # Grown record that no longer fits: delete + reinsert, which
            # moves the record and changes its address key.
            ctx.buffer.unpin(page_id)
            self.delete(ctx, handle, key, old_record)
            new_key = self.insert(ctx, handle, new_record)
            ctx.stats.bump("heap.relocating_updates")
            return new_key
        try:
            try:
                log = ctx.log(self.resource, {
                    "op": "update", "relation_id": descriptor["relation_id"],
                    "page": page_id, "slot": slot,
                    "old_raw": old_raw, "new_raw": new_raw})
            except BaseException:
                page.update(slot, old_raw)  # unlogged change must not stay
                raise
            page.page_lsn = log.lsn
            ctx.stats.bump("heap.updates")
            return key
        finally:
            ctx.buffer.unpin(page_id, dirty=True)

    def delete(self, ctx, handle, key, old_record) -> None:
        descriptor = handle.descriptor.storage_descriptor
        page_id, slot = key
        ctx.lock_record(handle.relation_id, key, LockMode.X)
        page = ctx.buffer.fetch(page_id)
        try:
            old_raw = page.delete(slot)
            try:
                log = ctx.log(self.resource, {
                    "op": "delete", "relation_id": descriptor["relation_id"],
                    "page": page_id, "slot": slot, "old_raw": old_raw})
            except BaseException:
                page.insert(old_raw, slot=slot)  # unlogged: put it back
                raise
            page.page_lsn = log.lsn
            descriptor["ntuples"] -= 1
            ctx.stats.bump("heap.deletes")
        finally:
            ctx.buffer.unpin(page_id, dirty=True)

    # -- set-at-a-time modification -------------------------------------------------
    def insert_batch(self, ctx, handle, records):
        """Fill each page before unpinning it: one pin, one log record, and
        one LSN stamp per *page* instead of per record."""
        descriptor = handle.descriptor.storage_descriptor
        raws = [encode_record(handle.schema, record) for record in records]
        fill_hint = descriptor.get("attributes", {}).get("fill_hint", 1.0)
        page_size = ctx.buffer.device.page_size
        keys = []
        i = 0
        while i < len(raws):
            page_id, page = self._page_with_room(ctx, descriptor, len(raws[i]))
            slots, page_raws = [], []
            try:
                while i < len(raws):
                    raw = raws[i]
                    if page_raws:
                        used = 1.0 - (page.free_space() - len(raw)) / page_size
                        if not page.fits(len(raw)) or used > fill_hint:
                            break
                    slot = page.insert(raw)
                    ctx.lock_record(handle.relation_id, (page_id, slot),
                                    LockMode.X)
                    keys.append((page_id, slot))
                    slots.append(slot)
                    page_raws.append(raw)
                    i += 1
                try:
                    log = ctx.log(self.resource, {
                        "op": "insert_multi",
                        "relation_id": descriptor["relation_id"],
                        "page": page_id, "slots": slots,
                        "new_raws": page_raws})
                except BaseException:
                    for slot in slots:  # unlogged changes must not stay
                        page.delete(slot)
                    del keys[len(keys) - len(slots):]
                    raise
                page.page_lsn = log.lsn
                descriptor["ntuples"] += len(slots)
            finally:
                ctx.buffer.unpin(page_id, dirty=True)
        ctx.stats.bump("heap.inserts", len(records))
        return keys

    #: Upper bound on pages held pinned while a delete group is logged as
    #: one LSN range (well under the default buffer capacity of 256).
    _DELETE_GROUP_PAGES = 64

    def delete_batch(self, ctx, handle, items) -> None:
        """Group victims by page: one pin per page, and one log-record
        group (a single contiguous LSN range) per run of pages."""
        descriptor = handle.descriptor.storage_descriptor
        by_page = {}
        for key, __ in items:
            page_id, slot = key
            ctx.lock_record(handle.relation_id, key, LockMode.X)
            by_page.setdefault(page_id, []).append(slot)
        groups = list(by_page.items())
        for start in range(0, len(groups), self._DELETE_GROUP_PAGES):
            chunk = groups[start:start + self._DELETE_GROUP_PAGES]
            pinned, payloads = [], []
            try:
                for page_id, slots in chunk:
                    page = ctx.buffer.fetch(page_id)
                    pinned.append((page_id, page))
                    old_raws = [page.delete(slot) for slot in slots]
                    payloads.append({
                        "op": "delete_multi",
                        "relation_id": descriptor["relation_id"],
                        "page": page_id, "slots": slots,
                        "old_raws": old_raws})
                    descriptor["ntuples"] -= len(slots)
                try:
                    logs = ctx.log_batch(self.resource, payloads)
                except BaseException:
                    # Unlogged deletions must not stay: restore every
                    # record of the chunk before the error escapes.
                    for (__, page), payload in zip(pinned, payloads):
                        for slot, raw in zip(payload["slots"],
                                             payload["old_raws"]):
                            page.insert(raw, slot=slot)
                        descriptor["ntuples"] += len(payload["slots"])
                    raise
                for (page_id, page), log in zip(pinned, logs):
                    page.page_lsn = log.lsn
            finally:
                for page_id, __ in pinned:
                    ctx.buffer.unpin(page_id, dirty=True)
        ctx.stats.bump("heap.deletes", len(items))

    # -- access -------------------------------------------------------------------------
    def fetch(self, ctx, handle, key, fields=None, predicate=None):
        try:
            page_id, slot = key
        except (TypeError, ValueError):
            raise RecordNotFoundError(f"bad heap record key {key!r}") from None
        descriptor = handle.descriptor.storage_descriptor
        if page_id not in descriptor["pages"]:
            return None
        ctx.lock_record(handle.relation_id, key, LockMode.S)
        page = ctx.buffer.fetch(page_id)
        try:
            if slot >= page.slot_count or not page.slot_in_use(slot):
                return None
            record = decode_record(handle.schema, page.read(slot))
            ctx.stats.bump("heap.fetches")
            if predicate is not None and not predicate.matches(record):
                return None
            if fields is None:
                return record
            return tuple(record[i] for i in fields)
        finally:
            ctx.buffer.unpin(page_id)

    def fetch_many(self, ctx, handle, keys, fields=None, predicate=None):
        """Direct fetch of many record addresses with one pin per page."""
        descriptor = handle.descriptor.storage_descriptor
        page_set = set(descriptor["pages"])
        by_page = {}
        for key in keys:
            try:
                page_id, slot = key
            except (TypeError, ValueError):
                raise RecordNotFoundError(
                    f"bad heap record key {key!r}") from None
            if page_id in page_set:
                by_page.setdefault(page_id, []).append((page_id, slot))
        found = {}
        for page_id, page_keys in by_page.items():
            page = ctx.buffer.fetch(page_id)
            try:
                for key in page_keys:
                    slot = key[1]
                    if slot >= page.slot_count or not page.slot_in_use(slot):
                        continue
                    ctx.lock_record(handle.relation_id, key, LockMode.S)
                    record = decode_record(handle.schema, page.read(slot))
                    if predicate is not None and not predicate.matches(record):
                        continue
                    if fields is None:
                        found[key] = record
                    else:
                        found[key] = tuple(record[i] for i in fields)
            finally:
                ctx.buffer.unpin(page_id)
        ctx.stats.bump("heap.fetches", len(found))
        return [(key, found[key]) for key in keys if key in found]

    def open_scan(self, ctx, handle, fields=None, predicate=None) -> Scan:
        scan = HeapScan(ctx, handle, fields, predicate)
        ctx.services.scans.register(scan)
        return scan

    # -- planning ---------------------------------------------------------------------------
    def record_count(self, ctx, handle) -> int:
        return handle.descriptor.storage_descriptor["ntuples"]

    def page_count(self, ctx, handle) -> int:
        return len(handle.descriptor.storage_descriptor["pages"])

    # -- internals -----------------------------------------------------------------------------
    def _page_with_room(self, ctx, descriptor: dict, length: int):
        """Pin a page with room for ``length`` bytes (last page or a new one).

        The ``fill_hint`` attribute reserves free space on each page for
        in-place record growth: a page is treated as full once its used
        fraction would exceed the hint.
        """
        pages = descriptor["pages"]
        fill_hint = descriptor.get("attributes", {}).get("fill_hint", 1.0)
        page_size = ctx.buffer.device.page_size
        if pages:
            page_id = pages[-1]
            page = ctx.buffer.fetch(page_id)
            used_after = 1.0 - (page.free_space() - length) / page_size
            if page.fits(length) and used_after <= fill_hint:
                return page_id, page
            ctx.buffer.unpin(page_id)
        page = ctx.buffer.new_page(PAGE_TYPE_HEAP)
        try:
            log = ctx.log(self.resource, {
                "op": "new_page", "relation_id": descriptor["relation_id"],
                "page": page.page_id})
        except BaseException:
            # The allocation was never logged: without this the pin (and
            # an unrecorded page) would leak past the operation rollback.
            ctx.buffer.unpin(page.page_id, dirty=True)
            ctx.buffer.free_page(page.page_id)
            raise
        pages.append(page.page_id)
        page.page_lsn = log.lsn
        ctx.stats.bump("heap.page_allocations")
        return page.page_id, page
