"""Horizontally sharded storage method: one relation over N databases.

The paper's extension architecture lets a storage method translate relation
accesses into accesses against *other* databases (the foreign gateway is
the one-remote case).  This method generalises that to N remotes: records
are partitioned by a key field across N child :class:`Database` instances,
each reached through its own :class:`~repro.services.remote.RemoteTransport`
channel (per-shard retry budget, latency charge, and circuit breaker).

Partitioning is ``hash`` (:func:`~repro.core.hashing.shard_of` over the key
value — stable across restarts and processes) or ``range`` (``bounds`` give
the N-1 split points; shard *i* covers ``[bounds[i-1], bounds[i])``).

Set-at-a-time operations fan out **one message per touched shard**, not one
per record: a batch of B records over N shards costs about ``ceil(B/N)``
rows per message on each channel, which is where the near-linear scaling
measured by benchmark E21 comes from.  Scans block-fetch every available
shard and either concatenate or — when the children report a key ordering
(``AccessCost.ordered_by``) — lazily k-way merge the per-shard streams
into one globally key-ordered stream (batch-pulled; ``sharded.merge
.batches`` counts the pulls).

Eligible single-table queries go further: the executor compiles the plan
into a **shard-local fragment** (filters, projections, partial aggregates
— see :mod:`~repro.query.fragments`) that :meth:`ShardedStorageMethod
.run_fragment` dispatches to every shard **concurrently** through the
scatter-gather pool, one remote call per shard, merging the partial
results at the coordinator.  Statistics-fed gating (per-shard KMV
sketches unioned across shards when ``child_statistics`` is set) decides
pushdown vs. pull-up per query; any fragment failure falls back to the
pull-up path (``sharded.pushdown.fallbacks``) so answers are never
partial unless ``degraded_reads`` says so.

Cross-shard atomicity is presumed-abort two-phase commit built on the
explicit participant API of :class:`~repro.services.transactions
.TransactionManager` and driven by :class:`~repro.services.transactions
.TwoPhaseCoordinator`:

* The first write by a local transaction logs an ``enlist`` record naming
  the global transaction id, so the coordinator durably knows a distributed
  transaction existed before any child can promise anything.
* At ``BEFORE_PREPARE`` the method runs phase 1 (force the local log, then
  ``prepare`` every written child — each a remote call that can fail) and
  logs the commit *decision* as an ordinary update record whose durability
  rides the coordinator's COMMIT force.
* At ``AT_COMMIT`` it delivers the decision; a dead channel leaves that
  child prepared and **in doubt**, to be resolved by
  :meth:`~repro.core.database.Database.resolve_indoubt` re-reading the
  stable decision (the :meth:`resolve_decision` hook below).
* Undoing the enlist/decision records — abort or coordinator restart — is
  the presumed-abort path: every child transaction still found under the
  global id is rolled back.  During a *partial* rollback of a live local
  transaction the records are compensated but the children stay: the
  mirrored savepoint rollback has already reversed their work.

Savepoints mirror into the children (set and rollback, never release —
matching the local protocol where release keeps the log records), so a
statement-level rollback of a fan-out write is exact on every shard.

Unprepared child transactions left behind by a local abort are rolled back
directly at ``AT_END`` — connection-drop semantics: a remote DBMS aborts a
lost client's unprepared work itself, so no message is charged.  Prepared
children, by contrast, are only ever settled by a delivered decision or by
presumed abort.

DDL attributes: ``shards`` (create that many fresh child databases) or
``databases`` (bring your own), ``key`` (partition field, default the first
field), ``partition`` ("hash" default, or "range" with ``bounds``),
``child_storage`` (storage method for the child relations, default
"heap"), ``child_statistics`` (give every child its own statistics
attachment, feeding pushdown gating), and the per-channel transport
knobs ``latency`` (default 0.5 —
shards are near peers, cheaper than a wide-area gateway), ``retries``,
``breaker_threshold``, ``breaker_cooldown``, ``deadline`` (per-call retry
budget in latency units).

Replication (see :mod:`~repro.services.replication`): ``replicas`` gives
every shard that many WAL-shipped standby databases; ``replication``
picks the durability mode (``async``/``semi-sync``/``quorum``);
``heartbeat_every`` probes shard health every that many operations.  With
standbys, reads route around a dead primary to the most-caught-up standby
(counted per shard under ``shard.<i>.stale_reads``, with the staleness
bound in the read report), and under quorum mode a primary declared down
is replaced by automatic promotion — fenced by an epoch so its late
writes are rejected.  Every degraded-capable read leaves a structured
report on ``ctx.read_report`` (and :attr:`ShardedScan.report`):
``{"complete", "skipped_shards", "stale_shards", "max_lag_lsn"}``.
"""

from __future__ import annotations

import heapq
from bisect import bisect_right
from time import perf_counter
from typing import Dict, Optional, Sequence

from ..core.context import ExecutionContext
from ..core.hashing import shard_of
from ..core.storage_method import RelationHandle, StorageMethod
from ..errors import FencingError, GatewayError, ScanError, StorageError
from ..query.cost import AccessCost, DEFAULT_SELECTIVITY
from ..services import events as ev
from ..services.predicate import Predicate
from ..services.recovery import ResourceHandler
from ..services.remote import RemoteTransport
from ..services.replication import DOWN, MODES, ReplicationService
from ..services.scans import AFTER, BEFORE, ON, Scan, ScanPosition
from ..services.scatter import StatsBuffer, shared_pool
from ..services.stats import NamespacedStats
from ..services.transactions import TwoPhaseCoordinator, TxnState

__all__ = ["ShardedStorageMethod", "ShardedScan"]


#: Distinguishes "shard unreached" from a legitimate None/empty result.
_UNREACHED = object()


def _fresh_report() -> dict:
    """The structured outcome of one degraded-capable read."""
    return {"complete": True, "skipped_shards": [], "stale_shards": [],
            "max_lag_lsn": 0}


def _mirror_name(name) -> str:
    """Savepoints mirror into child transactions under a distinct prefix:
    coordinator and child transaction ids come from unrelated sequences, so
    a verbatim mirror could collide with the child's own operation
    savepoints (``__op_<txn>.<seq>``)."""
    return f"__peer_{name}"


def _descriptor_for(services, payload: dict) -> dict:
    database = getattr(services, "database", None)
    if database is None:
        raise StorageError("recovery handler needs services.database wired")
    entry = database.catalog.entry_by_id(payload["relation_id"])
    return entry.handle.descriptor.storage_descriptor


class _ShardParticipant:
    """One child database enlisted in a local transaction.

    Implements the duck-typed participant protocol of
    :class:`TwoPhaseCoordinator` (``wrote``/``prepare``/``commit_decided``/
    ``abort``); every protocol message crosses the shard's transport, so
    votes and decisions are subject to the same faults, retries and breaker
    as data traffic.
    """

    __slots__ = ("index", "database", "txn", "channel", "transport", "stats",
                 "services", "wrote", "repl", "epoch")

    def __init__(self, index, database, txn, channel, transport, stats,
                 services, repl=None):
        self.index = index
        self.database = database
        self.txn = txn
        self.channel = channel
        self.transport = transport
        self.stats = stats
        self.services = services  # the *coordinator's* (owns the channel)
        self.wrote = False
        self.repl = repl
        # The fencing token: bound at creation.  A promotion bumps the
        # shard epoch, after which every send by this participant is
        # rejected — the deposed primary's late writes can never land.
        self.epoch = 0 if repl is None else repl.epoch(index)

    @property
    def manager(self):
        return self.database.services.transactions

    def context(self) -> ExecutionContext:
        return ExecutionContext(self.txn, self.database.services,
                                self.database)

    def call(self, action):
        """One remote interaction: fault point, message charge, retry,
        breaker — then the action against the child database.

        Faults fire on the coordinator's injector: the channel (and what
        can go wrong on it) belongs to the coordinator's side of the world,
        not to the child it fails to reach.

        With replication, every send checks the fencing token first, and
        the outcome feeds the shard health state machine; a shard declared
        down escalates to promotion when the durability mode permits it.
        """
        if self.repl is not None and self.repl.epoch(self.index) != self.epoch:
            self.services.stats.bump("repl.fenced")
            raise FencingError(
                f"shard {self.index}: participant bound to deposed epoch "
                f"{self.epoch} (current epoch "
                f"{self.repl.epoch(self.index)})")

        def send():
            self.transport.remote_call(self.services, self.channel,
                                       self.stats)
            return action()
        try:
            result = self.transport.call(self.channel, self.stats, send)
        except FencingError:
            raise
        except GatewayError:
            if self.repl is not None:
                self.repl.report_failure(self.index)
                if self.repl.health(self.index) == DOWN:
                    # This transaction is already lost on this shard, but
                    # promotion lets the *next* one bind a live primary.
                    self.repl.maybe_promote(self.index)
            raise
        if self.repl is not None:
            self.repl.report_success(self.index)
        return result

    # -- 2PC participant protocol ------------------------------------------------
    def prepare(self, gtid: str) -> None:
        self.call(lambda: self.manager.prepare(self.txn, gtid))
        if self.repl is not None:
            # The child's log is forced through its PREPARE record; ship
            # it and gate the vote on the mode's standby acks.  Raising
            # here withholds the vote — the global transaction aborts, so
            # no write is ever acknowledged beyond its replication level.
            self.repl.on_prepared(self.index,
                                  self.database.services.wal.flushed_lsn)

    def commit_decided(self) -> None:
        if self.txn.settled:
            return
        self.call(lambda: self.manager.commit_decided(self.txn))
        if self.repl is not None:
            self.repl.on_decided(self.index)

    def abort_decided(self) -> None:
        if self.txn.settled:
            return
        self.call(lambda: self.manager.abort_decided(self.txn))
        if self.repl is not None:
            self.repl.on_decided(self.index)

    def abort(self) -> None:
        """Roll the child back — through the channel when it has voted.

        An unprepared child is rolled back directly (connection-drop
        semantics: the remote side aborts a lost client's active work
        itself), so cleanup of never-prepared children cannot fail on a
        dead channel.  A prepared child made a durable promise, so its
        abort is a real decision message that can be lost.
        """
        if self.txn.settled:
            return
        if self.txn.state is TxnState.PREPARED:
            self.abort_decided()
        else:
            self.manager.abort(self.txn)


class _Enlistment:
    """Per (local transaction, sharded relation) distributed-txn state."""

    __slots__ = ("gtid", "relation_id", "participants", "logged", "hooked",
                 "prepared")

    def __init__(self, gtid: str, relation_id: int):
        self.gtid = gtid
        self.relation_id = relation_id
        self.participants: Dict[int, _ShardParticipant] = {}
        self.logged = False    # the enlist record is live (not compensated)
        self.hooked = False    # commit hooks registered
        self.prepared: list = []


class _ShardedHandler(ResourceHandler):
    """Presumed abort for the ``enlist``/``decision`` records."""

    def __init__(self, method: "ShardedStorageMethod"):
        self.method = method

    def undo(self, services, payload: dict, clr_lsn: int) -> None:
        txn = services.transactions.get(payload["txn_id"])
        if not getattr(services, "in_restart", False) and txn is not None:
            # A live rollback — partial (savepoint) or a full abort.  The
            # mirrored savepoint rollback and the AT_END cleanup own the
            # children here; compensating the record only means the next
            # write must re-log it to keep the durable pointer.
            ent = self.method._runtime.get(
                payload["txn_id"], {}).get(payload["relation_id"])
            if ent is not None and ent.gtid == payload["gtid"]:
                ent.logged = False
            return
        # Full abort or coordinator restart: presume abort on every child
        # still holding the global transaction.  Delivery is direct — this
        # *is* the resolution channel, charging faults here could wedge
        # restart itself.
        descriptor = _descriptor_for(services, payload)
        gtid = payload["gtid"]
        for index in payload.get("shards", ()):
            child = descriptor["databases"][index]
            manager = child.services.transactions
            child_txn = manager.find_gtid(gtid)
            if child_txn is None or child_txn.settled:
                # A heuristic abort that matches the presumed-abort outcome
                # is no mismatch; retire the marker.
                manager.heuristic_aborts.pop(gtid, None)
                continue
            if child_txn.state is TxnState.PREPARED:
                manager.abort_decided(child_txn)
            else:
                manager.abort(child_txn)
            services.stats.bump("sharded.presumed_aborts")
        self.method._runtime.get(payload["txn_id"], {}).pop(
            payload["relation_id"], None)

    def redo(self, services, lsn: int, payload: dict) -> None:
        """Children are their own durability domains; nothing to redo."""


class _ListSource:
    """Already-flat shard streams (the unordered concatenation case)."""

    __slots__ = ("rows",)

    def __init__(self, rows: list):
        self.rows = rows

    def read(self, start: int, n: int) -> list:
        return self.rows[start:start + n]


class _MergeSource:
    """Lazy k-way merge of key-ordered per-shard streams.

    The merged stream is never materialized: each ``read`` pulls at most
    the requested batch off a k-entry heap, so the merge's working set
    is bounded by the batch size instead of the relation.  Heap entries
    break key ties by shard index, reproducing :func:`heapq.merge`'s
    stable stream order exactly.  A backward position restore (partial
    rollback) replays the — deterministic — merge from the start rather
    than keeping consumed rows around.
    """

    __slots__ = ("streams", "stats", "heap", "produced")

    def __init__(self, streams: list, stats):
        self.streams = streams
        self.stats = stats
        self._reset()

    def _reset(self) -> None:
        self.produced = 0
        heap = [(rows[0][0][1], index, 0)
                for index, rows in enumerate(self.streams) if rows]
        heapq.heapify(heap)
        self.heap = heap

    def _advance(self):
        __, index, position = heapq.heappop(self.heap)
        pair = self.streams[index][position]
        position += 1
        if position < len(self.streams[index]):
            heapq.heappush(
                self.heap,
                (self.streams[index][position][0][1], index, position))
        self.produced += 1
        return pair

    def read(self, start: int, n: int) -> list:
        if start < self.produced:
            self._reset()
        while self.produced < start and self.heap:
            self._advance()
        out = []
        while len(out) < n and self.heap:
            out.append(self._advance())
        if out:
            self.stats.bump("sharded.merge.batches")
        return out


class ShardedScan(Scan):
    """A local scan over the block-fetched shard streams.

    Every available shard ships its (filtered) rows in one message at
    open; the scan then pulls from a *source* — a flat concatenation,
    or a lazy k-way merge when the children report a key ordering.  The
    position is an index into the logical merged stream, so save/restore
    under partial rollback stays trivial (the merge source replays
    deterministically on a backward seek).

    :attr:`report` is the structured read outcome: ``complete`` (no shard
    was skipped), ``skipped_shards`` (unreachable, contributed nothing),
    ``stale_shards`` (served by a standby), and ``max_lag_lsn`` (worst
    staleness bound among the stale shards, in log records).
    """

    def __init__(self, ctx: ExecutionContext, handle: RelationHandle,
                 source, fields: Optional[Sequence[int]],
                 report: Optional[dict] = None):
        super().__init__(ctx.txn_id)
        self.ctx = ctx
        self.handle = handle
        if isinstance(source, list):
            source = _ListSource(source)
        self.source = source
        self.fields = tuple(fields) if fields is not None else None
        self.state = BEFORE
        self.position: Optional[int] = None
        self.report = report if report is not None else _fresh_report()

    def _project(self, pair):
        key, record = pair
        if self.fields is None:
            return key, record
        return key, tuple(record[i] for i in self.fields)

    def next(self):
        self._check_open()
        index = 0 if self.position is None else self.position + 1
        chunk = self.source.read(index, 1)
        if not chunk:
            self.state = AFTER
            return None
        self.position = index
        self.state = ON
        self.ctx.stats.bump("sharded.tuples_returned")
        return self._project(chunk[0])

    def next_batch(self, n: int) -> list:
        self._check_open()
        if n < 1:
            raise ScanError(f"next_batch needs a positive count, got {n}")
        index = 0 if self.position is None else self.position + 1
        chunk = self.source.read(index, n)
        if not chunk:
            self.state = AFTER
            return []
        self.position = index + len(chunk) - 1
        self.state = ON
        self.ctx.stats.bump("sharded.tuples_returned", len(chunk))
        return [self._project(pair) for pair in chunk]

    def save_position(self) -> ScanPosition:
        return ScanPosition(self.state, self.position)

    def restore_position(self, saved: ScanPosition) -> None:
        self.state = saved.state
        self.position = saved.item


class ShardedStorageMethod(StorageMethod):
    """Relation operations fanned out over N child databases."""

    name = "sharded"
    recoverable = True   # enlist/decision records drive presumed abort
    updatable = True
    ordered_by_key = False

    def __init__(self):
        # local txn id -> relation id -> _Enlistment
        self._runtime: Dict[int, Dict[int, _Enlistment]] = {}
        self._transports: Dict[int, RemoteTransport] = {}
        self._wired: list = []

    # -- DDL -------------------------------------------------------------------
    def validate_attributes(self, schema, attributes):
        attributes = dict(attributes)
        databases = attributes.pop("databases", None)
        shards = attributes.pop("shards", None)
        key = attributes.pop("key", schema.fields[0].name)
        partition = attributes.pop("partition", "hash")
        bounds = attributes.pop("bounds", None)
        child_storage = attributes.pop("child_storage", "heap")
        child_attributes = attributes.pop("child_attributes", None)
        child_statistics = attributes.pop("child_statistics", False)
        degraded_reads = attributes.pop("degraded_reads", False)
        latency = attributes.pop("latency", 0.5)
        retries = attributes.pop("retries", 3)
        threshold = attributes.pop("breaker_threshold", 3)
        cooldown = attributes.pop("breaker_cooldown", 8)
        deadline = attributes.pop("deadline", None)
        replicas = attributes.pop("replicas", 0)
        replication = attributes.pop("replication", "async")
        heartbeat_every = attributes.pop("heartbeat_every", 0)
        if attributes:
            raise StorageError(
                f"sharded storage: unknown attributes {sorted(attributes)}")
        if databases is not None:
            databases = list(databases)
            if not databases:
                raise StorageError("sharded storage: 'databases' is empty")
            if shards is not None and shards != len(databases):
                raise StorageError(
                    f"sharded storage: shards={shards} does not match the "
                    f"{len(databases)} databases given")
            shards = len(databases)
        else:
            if not isinstance(shards, int) or shards < 1:
                raise StorageError(
                    "sharded storage requires 'shards' (a positive int) or "
                    "'databases' (a list of Database instances)")
        key_index = None
        for i, field in enumerate(schema.fields):
            if field.name == key:
                key_index = i
                break
        if key_index is None:
            raise StorageError(
                f"sharded storage: partition key {key!r} is not a field of "
                f"the schema")
        if partition not in ("hash", "range"):
            raise StorageError(
                f"sharded storage: partition must be 'hash' or 'range', "
                f"got {partition!r}")
        if partition == "range":
            if bounds is None or len(bounds) != shards - 1:
                raise StorageError(
                    f"sharded storage: range partitioning over {shards} "
                    f"shards needs exactly {shards - 1} bounds")
            bounds = list(bounds)
            if bounds != sorted(bounds):
                raise StorageError(
                    "sharded storage: bounds must be sorted ascending")
        elif bounds is not None:
            raise StorageError(
                "sharded storage: 'bounds' only applies to range "
                "partitioning")
        if not isinstance(latency, (int, float)) or latency < 0:
            raise StorageError(
                f"sharded storage: latency must be non-negative, got "
                f"{latency!r}")
        for name, value in (("retries", retries),
                            ("breaker_threshold", threshold),
                            ("breaker_cooldown", cooldown)):
            if not isinstance(value, int) or value < 0:
                raise StorageError(
                    f"sharded storage: {name} must be a non-negative "
                    f"integer, got {value!r}")
        if child_attributes is not None and not isinstance(child_attributes,
                                                           dict):
            raise StorageError(
                "sharded storage: child_attributes must be a dict")
        if not isinstance(degraded_reads, bool):
            raise StorageError(
                f"sharded storage: degraded_reads must be a bool, got "
                f"{degraded_reads!r}")
        if not isinstance(child_statistics, bool):
            raise StorageError(
                f"sharded storage: child_statistics must be a bool, got "
                f"{child_statistics!r}")
        if deadline is not None and (not isinstance(deadline, (int, float))
                                     or deadline <= 0):
            raise StorageError(
                f"sharded storage: deadline must be a positive number, "
                f"got {deadline!r}")
        for name, value in (("replicas", replicas),
                            ("heartbeat_every", heartbeat_every)):
            if not isinstance(value, int) or value < 0:
                raise StorageError(
                    f"sharded storage: {name} must be a non-negative "
                    f"integer, got {value!r}")
        if replication not in MODES:
            raise StorageError(
                f"sharded storage: replication must be one of {MODES}, "
                f"got {replication!r}")
        if replicas:
            # Physical log shipping demands the parity invariant: standby
            # children must be byte-for-byte rebuildable by replaying the
            # primary child's log, so the primaries must be databases this
            # method created itself, running the one storage method whose
            # recovery handler the standby applier understands.
            if databases is not None:
                raise StorageError(
                    "sharded storage: replicas requires method-created "
                    "children ('shards'), not caller-supplied 'databases'")
            if child_storage != "heap":
                raise StorageError(
                    f"sharded storage: replicas requires child_storage="
                    f"'heap', got {child_storage!r}")
            if child_statistics:
                # Standby children are rebuilt by replaying the primary
                # child's physical log, which cannot reconstruct an
                # attachment created outside that log — the parity
                # invariant would silently break.
                raise StorageError(
                    "sharded storage: child_statistics cannot be combined "
                    "with replicas")
        return {"databases": databases, "shards": shards,
                "key": key, "key_index": key_index,
                "partition": partition, "bounds": bounds,
                "child_storage": child_storage,
                "child_attributes": child_attributes,
                "child_statistics": child_statistics,
                "degraded_reads": degraded_reads,
                "latency": float(latency),
                "retries": retries, "breaker_threshold": threshold,
                "breaker_cooldown": cooldown,
                "deadline": None if deadline is None else float(deadline),
                "replicas": replicas, "replication": replication,
                "heartbeat_every": heartbeat_every}

    def create_instance(self, ctx, relation_id, schema, attributes) -> dict:
        databases = attributes["databases"]
        if databases is None:
            from ..core.database import Database
            databases = [Database() for _ in range(attributes["shards"])]
        relation = f"__shard_{relation_id}"
        for child in databases:
            if not child.catalog.exists(relation):
                child.create_table(
                    relation, schema,
                    storage_method=attributes["child_storage"],
                    attributes=attributes["child_attributes"])
            if attributes["child_statistics"]:
                # Per-shard statistics: each child maintains its own row
                # count, min/max and KMV distinct sketch; the coordinator
                # unions the sketches to gate query pushdown.
                handle = child.catalog.handle(relation)
                attachment = child.registry.attachment_type_by_name(
                    "statistics")
                field = handle.descriptor.attachment_field(
                    attachment.type_id)
                if field is None or not field["instances"]:
                    child.create_attachment(relation, "statistics",
                                            f"__stats_{relation}")
        channels = []
        for i in range(attributes["shards"]):
            channel = {"relation": f"shard[{i}]",
                       "latency": attributes["latency"],
                       "retries": attributes["retries"],
                       "breaker_threshold": attributes["breaker_threshold"],
                       "breaker_cooldown": attributes["breaker_cooldown"],
                       # The endpoint fault point names the *instance*
                       # behind the channel: arming it kills this primary
                       # while its promoted successor stays reachable.
                       "fault_point": f"shard.{i}.primary"}
            if attributes["deadline"] is not None:
                channel["deadline"] = attributes["deadline"]
            channels.append(channel)
        descriptor = {"relation_id": relation_id, "relation": relation,
                      "databases": databases, "channels": channels,
                      "shards": attributes["shards"],
                      "key_index": attributes["key_index"],
                      "partition": attributes["partition"],
                      "bounds": attributes["bounds"],
                      "degraded_reads": attributes["degraded_reads"],
                      "latency": attributes["latency"],
                      "replicas": attributes["replicas"],
                      "replication_mode": attributes["replication"],
                      "replication": None}
        if attributes["replicas"]:
            descriptor["replication"] = ReplicationService(
                descriptor, ctx.services,
                mode=attributes["replication"],
                replicas=attributes["replicas"],
                schema=schema,
                child_storage=attributes["child_storage"],
                child_attributes=attributes["child_attributes"],
                heartbeat_every=attributes["heartbeat_every"])
        return descriptor

    def destroy_instance(self, ctx, descriptor) -> None:
        """Dropping the sharded relation never destroys the children."""

    def recovery_handler(self) -> ResourceHandler:
        return _ShardedHandler(self)

    # -- routing / enlistment ---------------------------------------------------
    @staticmethod
    def _descriptor(handle: RelationHandle) -> dict:
        return handle.descriptor.storage_descriptor

    def _route(self, descriptor: dict, value) -> int:
        if descriptor["partition"] == "hash":
            return shard_of(value, descriptor["shards"])
        return bisect_right(descriptor["bounds"], value)

    def _transport(self, index: int) -> RemoteTransport:
        transport = self._transports.get(index)
        if transport is None:
            transport = RemoteTransport(
                fault_points=("shard.remote_call",
                              f"shard.{index}.remote_call"),
                message_counter="remote.messages",
                latency_counter="remote.latency_units",
                counter_prefix="remote.gateway")
            self._transports[index] = transport
        return transport

    def _wire_events(self, ctx: ExecutionContext) -> None:
        events = ctx.services.events
        if any(wired is events for wired in self._wired):
            return
        # Keep the service itself, not id(): holding the reference pins the
        # object so a recycled address can never masquerade as "already wired".
        self._wired.append(events)
        services = ctx.services
        events.subscribe(ev.SAVEPOINT_SET, self._on_savepoint_set)
        events.subscribe(ev.SAVEPOINT_ROLLBACK, self._on_savepoint_rollback)
        events.subscribe(
            ev.AT_END,
            lambda txn_id, info: self._on_txn_end(services, txn_id, info))

    def _enlist(self, ctx: ExecutionContext,
                handle: RelationHandle) -> _Enlistment:
        self._wire_events(ctx)
        repl = self._descriptor(handle).get("replication")
        if repl is not None:
            # The operation-driven heartbeat clock: the simulation has no
            # wall time, so "every N operations" stands in for "every N ms".
            repl.tick()
        by_relation = self._runtime.setdefault(ctx.txn_id, {})
        ent = by_relation.get(handle.relation_id)
        if ent is None:
            gtid = (f"s{handle.relation_id}.t{ctx.txn_id}"
                    f".l{ctx.services.wal.current_lsn}")
            ent = _Enlistment(gtid, handle.relation_id)
            by_relation[handle.relation_id] = ent
        return ent

    def _participant(self, ctx: ExecutionContext, handle: RelationHandle,
                     ent: _Enlistment, index: int) -> _ShardParticipant:
        participant = ent.participants.get(index)
        if participant is None:
            descriptor = self._descriptor(handle)
            child = descriptor["databases"][index]
            child_txn = child.services.transactions.begin()
            child.services.transactions.tag_gtid(child_txn, ent.gtid)
            participant = _ShardParticipant(
                index, child, child_txn, descriptor["channels"][index],
                self._transport(index),
                ctx.services.stats.namespace(f"shard.{index}"),
                ctx.services, descriptor.get("replication"))
            # Mirror the live savepoint stack so a later partial rollback
            # of the local transaction maps onto this late-joining child.
            for name in ctx.txn._savepoint_order:
                child.services.transactions.savepoint(
                    child_txn, _mirror_name(name))
            ent.participants[index] = participant
            ctx.stats.bump("sharded.enlistments")
        return participant

    def _child_handle(self, descriptor: dict,
                      participant: _ShardParticipant) -> RelationHandle:
        return participant.database.catalog.handle(descriptor["relation"])

    def _log_enlist(self, ctx: ExecutionContext, ent: _Enlistment,
                    descriptor: dict) -> None:
        """The durable pointer: a coordinator crash must still find every
        child that may have voted, so the record names all shards."""
        ctx.log(self.resource, {"op": "enlist", "gtid": ent.gtid,
                                "relation_id": ent.relation_id,
                                "txn_id": ctx.txn_id,
                                "shards": list(range(descriptor["shards"]))})
        ent.logged = True

    def _mark_write(self, ctx: ExecutionContext, handle: RelationHandle,
                    ent: _Enlistment) -> None:
        if not ent.logged:
            self._log_enlist(ctx, ent, self._descriptor(handle))
        if not ent.hooked:
            ent.hooked = True
            ctx.defer(ev.BEFORE_PREPARE, self._phase_one, (ctx, handle))
            ctx.defer(ev.AT_COMMIT, self._deliver, (ctx, handle))

    # -- two-phase commit hooks -------------------------------------------------
    def _phase_one(self, txn_id: int, data) -> None:
        """Phase 1, run as a deferred BEFORE_PREPARE action at local commit.

        Raising here vetoes the local commit (the transaction aborts), which
        is exactly right while no child has been told to prepare — and once
        one has, a later veto re-raises out of ``prepare_all`` after the
        already-prepared children were rolled back.
        """
        ctx, handle = data
        ent = self._runtime.get(txn_id, {}).get(handle.relation_id)
        if ent is None:
            return
        voters = [p for p in ent.participants.values() if p.wrote]
        if not voters:
            return
        if not ent.logged:
            # Every write record was compensated by partial rollbacks; the
            # children still vote, so the durable pointer must come back.
            self._log_enlist(ctx, ent, self._descriptor(handle))
        # The enlist record must be stable before any child makes a durable
        # promise, or a coordinator crash could strand prepared children
        # with nothing on stable storage pointing at them.
        ctx.services.wal.flush()
        coordinator = TwoPhaseCoordinator(ctx.services)
        ent.prepared = coordinator.prepare_all(ent.gtid,
                                              list(ent.participants.values()))
        coordinator.log_decision(
            txn_id, self.resource,
            {"op": "decision", "gtid": ent.gtid,
             "relation_id": ent.relation_id, "txn_id": txn_id,
             "shards": [p.index for p in ent.prepared]})

    def _deliver(self, txn_id: int, data) -> None:
        """Phase 2, run as a deferred AT_COMMIT action.

        The local COMMIT record is stable by now (pending AT_COMMIT work
        forces a solo flush), and the decision record rode that force — so
        a delivery failure leaves the child prepared and in doubt, never
        in danger of divergence.
        """
        ctx, handle = data
        ent = self._runtime.get(txn_id, {}).get(handle.relation_id)
        if ent is None or not ent.prepared:
            return
        coordinator = TwoPhaseCoordinator(ctx.services)
        left = coordinator.deliver_commit(ent.prepared)
        if left:
            ctx.stats.bump("sharded.indoubt_children", len(left))

    # -- modification -----------------------------------------------------------
    def insert(self, ctx, handle, record):
        descriptor = self._descriptor(handle)
        ent = self._enlist(ctx, handle)
        index = self._route(descriptor, record[descriptor["key_index"]])
        participant = self._participant(ctx, handle, ent, index)
        self._mark_write(ctx, handle, ent)
        child_handle = self._child_handle(descriptor, participant)
        remote_key = participant.call(
            lambda: participant.database.data.insert(
                participant.context(), child_handle, record))
        participant.wrote = True
        participant.stats.bump("remote.tuples_written")
        ctx.stats.bump("sharded.inserts")
        return (index, remote_key)

    def update(self, ctx, handle, key, old_record, new_record):
        descriptor = self._descriptor(handle)
        ent = self._enlist(ctx, handle)
        old_index, remote_key = key
        new_index = self._route(descriptor,
                                new_record[descriptor["key_index"]])
        self._mark_write(ctx, handle, ent)
        if new_index == old_index:
            participant = self._participant(ctx, handle, ent, old_index)
            child_handle = self._child_handle(descriptor, participant)
            new_remote = participant.call(
                lambda: participant.database.data.update(
                    participant.context(), child_handle, remote_key,
                    new_record))
            participant.wrote = True
            participant.stats.bump("remote.tuples_written")
            ctx.stats.bump("sharded.updates")
            return (old_index, new_remote)
        # The partition key moved: migrate the record across shards —
        # delete here, insert there, both inside the same global txn.
        source = self._participant(ctx, handle, ent, old_index)
        target = self._participant(ctx, handle, ent, new_index)
        source_handle = self._child_handle(descriptor, source)
        target_handle = self._child_handle(descriptor, target)
        source.call(lambda: source.database.data.delete(
            source.context(), source_handle, remote_key))
        new_remote = target.call(lambda: target.database.data.insert(
            target.context(), target_handle, new_record))
        source.wrote = True
        target.wrote = True
        source.stats.bump("remote.tuples_written")
        target.stats.bump("remote.tuples_written")
        ctx.stats.bump("sharded.updates")
        ctx.stats.bump("sharded.migrations")
        return (new_index, new_remote)

    def delete(self, ctx, handle, key, old_record) -> None:
        descriptor = self._descriptor(handle)
        ent = self._enlist(ctx, handle)
        index, remote_key = key
        participant = self._participant(ctx, handle, ent, index)
        self._mark_write(ctx, handle, ent)
        child_handle = self._child_handle(descriptor, participant)
        participant.call(lambda: participant.database.data.delete(
            participant.context(), child_handle, remote_key))
        participant.wrote = True
        participant.stats.bump("remote.tuples_written")
        ctx.stats.bump("sharded.deletes")

    # -- set-at-a-time modification ----------------------------------------------
    def insert_batch(self, ctx, handle, records):
        """Partition the batch, then one block-insert message per shard."""
        descriptor = self._descriptor(handle)
        ent = self._enlist(ctx, handle)
        groups: Dict[int, list] = {}
        for position, record in enumerate(records):
            index = self._route(descriptor, record[descriptor["key_index"]])
            groups.setdefault(index, []).append((position, record))
        self._mark_write(ctx, handle, ent)
        keys: list = [None] * len(records)
        for index in sorted(groups):
            group = groups[index]
            participant = self._participant(ctx, handle, ent, index)
            child_handle = self._child_handle(descriptor, participant)
            batch = [record for __, record in group]
            remote_keys = participant.call(
                lambda p=participant, h=child_handle, b=batch:
                p.database.data.insert_batch(p.context(), h, b))
            for (position, __), remote_key in zip(group, remote_keys):
                keys[position] = (index, remote_key)
            participant.wrote = True
            participant.stats.bump("remote.tuples_written", len(batch))
        ctx.stats.bump("sharded.inserts", len(records))
        ctx.stats.bump("sharded.batch_fanout", len(groups))
        return keys

    def update_batch(self, ctx, handle, items):
        """Route each (key, old, new) by its current shard; one message per
        shard for in-place updates, migrations go record-at-a-time."""
        descriptor = self._descriptor(handle)
        ent = self._enlist(ctx, handle)
        self._mark_write(ctx, handle, ent)
        keys: list = [None] * len(items)
        in_place: Dict[int, list] = {}
        for position, (key, old_record, new_record) in enumerate(items):
            old_index, remote_key = key
            new_index = self._route(descriptor,
                                    new_record[descriptor["key_index"]])
            if new_index == old_index:
                in_place.setdefault(old_index, []).append(
                    (position, remote_key, new_record))
            else:
                keys[position] = self.update(ctx, handle, key, old_record,
                                             new_record)
        for index in sorted(in_place):
            group = in_place[index]
            participant = self._participant(ctx, handle, ent, index)
            child_handle = self._child_handle(descriptor, participant)
            pairs = [(remote_key, new_record)
                     for __, remote_key, new_record in group]
            new_remotes = participant.call(
                lambda p=participant, h=child_handle, b=pairs:
                p.database.data.update_batch(p.context(), h, b))
            for (position, __, ___), new_remote in zip(group, new_remotes):
                keys[position] = (index, new_remote)
            participant.wrote = True
            participant.stats.bump("remote.tuples_written", len(pairs))
        ctx.stats.bump("sharded.updates", len(items))
        ctx.stats.bump("sharded.batch_fanout", len(in_place))
        return keys

    def delete_batch(self, ctx, handle, items) -> None:
        descriptor = self._descriptor(handle)
        ent = self._enlist(ctx, handle)
        self._mark_write(ctx, handle, ent)
        groups: Dict[int, list] = {}
        for key, __ in items:
            index, remote_key = key
            groups.setdefault(index, []).append(remote_key)
        for index in sorted(groups):
            participant = self._participant(ctx, handle, ent, index)
            child_handle = self._child_handle(descriptor, participant)
            remote_keys = groups[index]
            participant.call(
                lambda p=participant, h=child_handle, b=remote_keys:
                p.database.data.delete_batch(p.context(), h, b))
            participant.wrote = True
            participant.stats.bump("remote.tuples_written", len(remote_keys))
        ctx.stats.bump("sharded.deletes", len(items))
        ctx.stats.bump("sharded.batch_fanout", len(groups))

    # -- degraded / failed-over reads ---------------------------------------------
    @staticmethod
    def _start_report(ctx: ExecutionContext) -> dict:
        """Begin a structured read outcome and publish it on the context."""
        report = _fresh_report()
        ctx.read_report = report
        return report

    @staticmethod
    def _stale_read(descriptor: dict, index: int, report: dict, action):
        """Try the shard's standbys; the result, or ``_UNREACHED``.

        A successful standby read marks the shard stale in the report and
        widens its staleness bound by the standby's lag.
        """
        repl = descriptor.get("replication")
        if repl is None or not repl.standbys(index):
            return _UNREACHED
        try:
            result, lag = repl.failover_read(index, action)
        except GatewayError:
            return _UNREACHED
        report["stale_shards"].append(index)
        report["max_lag_lsn"] = max(report["max_lag_lsn"], lag)
        return result

    @staticmethod
    def _skip_shard(ctx: ExecutionContext, descriptor: dict, index: int,
                    report: dict, counter: str,
                    failure: Optional[GatewayError]) -> None:
        """Degraded skip (opted in) or fail closed with the original error."""
        if not descriptor.get("degraded_reads"):
            if failure is not None:
                raise failure
            raise GatewayError(
                f"shard {index} is unavailable (circuit breaker open); "
                f"create the relation with degraded_reads=True to read "
                f"around dead shards")
        ctx.stats.bump(counter)
        ctx.stats.bump(f"shard.{index}.degraded_skips")
        report["complete"] = False
        report["skipped_shards"].append(index)

    # -- access -------------------------------------------------------------------
    def fetch(self, ctx, handle, key, fields=None, predicate=None):
        descriptor = self._descriptor(handle)
        ent = self._enlist(ctx, handle)
        report = self._start_report(ctx)
        index, remote_key = key
        participant = self._participant(ctx, handle, ent, index)
        child_handle = self._child_handle(descriptor, participant)
        record = _UNREACHED
        failure = None
        try:
            record = participant.call(
                lambda: participant.database.data.fetch(
                    participant.context(), child_handle, remote_key))
        except GatewayError as exc:
            failure = exc
        if record is _UNREACHED:

            def fetch_standby(db, relation=descriptor["relation"],
                              rk=remote_key):
                h = db.catalog.handle(relation)
                with db.autocommit() as sctx:
                    return db.data.fetch(sctx, h, rk)

            record = self._stale_read(descriptor, index, report,
                                      fetch_standby)
        if record is _UNREACHED:
            self._skip_shard(ctx, descriptor, index, report,
                             "remote.degraded_fetches", failure)
            return None
        if record is None:
            return None
        ctx.stats.bump("sharded.fetches")
        if predicate is not None and not predicate.matches(record):
            return None
        if fields is None:
            return record
        return tuple(record[i] for i in fields)

    def fetch_many(self, ctx, handle, keys, fields=None, predicate=None):
        """Group the key set by shard: one block-fetch message per shard,
        results stitched back into input order."""
        descriptor = self._descriptor(handle)
        ent = self._enlist(ctx, handle)
        report = self._start_report(ctx)
        groups: Dict[int, list] = {}
        for key in keys:
            index, remote_key = key
            groups.setdefault(index, []).append(remote_key)
        fetched: Dict = {}
        for index in sorted(groups):
            participant = self._participant(ctx, handle, ent, index)
            child_handle = self._child_handle(descriptor, participant)
            remote_keys = groups[index]
            pairs = _UNREACHED
            failure = None
            try:
                pairs = participant.call(
                    lambda p=participant, h=child_handle, b=remote_keys:
                    p.database.data.fetch_many(p.context(), h, b))
            except GatewayError as exc:
                failure = exc
            else:
                participant.stats.bump("remote.tuples_fetched", len(pairs))
            if pairs is _UNREACHED:

                def fetch_standby(db, relation=descriptor["relation"],
                                  rks=remote_keys):
                    h = db.catalog.handle(relation)
                    with db.autocommit() as sctx:
                        return db.data.fetch_many(sctx, h, rks)

                pairs = self._stale_read(descriptor, index, report,
                                         fetch_standby)
            if pairs is _UNREACHED:
                self._skip_shard(ctx, descriptor, index, report,
                                 "remote.degraded_fetches", failure)
                continue
            for remote_key, record in pairs:
                fetched[(index, remote_key)] = record
        results = []
        for key in keys:
            record = fetched.get(key)
            if record is None:
                continue
            if predicate is not None and not predicate.matches(record):
                continue
            if fields is None:
                results.append((key, record))
            else:
                results.append((key, tuple(record[i] for i in fields)))
        ctx.stats.bump("sharded.fetches", len(results))
        return results

    def _child_order(self, ctx, descriptor: dict):
        """The key ordering the children report, or None.

        Every shard runs the same child storage method over the same
        schema, so shard 0's cost estimate speaks for all of them.
        """
        child = descriptor["databases"][0]
        entry = child.catalog.entry(descriptor["relation"])
        method = child.registry.storage_method(
            entry.handle.descriptor.storage_method_id)
        child_txn = child.services.transactions.begin()
        try:
            child_ctx = ExecutionContext(child_txn, child.services, child)
            cost = method.estimate_cost(child_ctx, entry.handle, ())
        finally:
            child.services.transactions.abort(child_txn)
        return cost.ordered_by

    def open_scan(self, ctx, handle, fields=None, predicate=None) -> Scan:
        descriptor = self._descriptor(handle)
        ent = self._enlist(ctx, handle)
        report = self._start_report(ctx)
        streams = []
        for index in range(descriptor["shards"]):
            transport = self._transport(index)
            rows = _UNREACHED
            failure = None
            if transport.available(descriptor["channels"][index]):
                participant = self._participant(ctx, handle, ent, index)
                child_handle = self._child_handle(descriptor, participant)
                child_predicate = None
                if predicate is not None:
                    child_predicate = Predicate(predicate.expr,
                                                child_handle.schema,
                                                predicate.params)

                def ship(p=participant, h=child_handle,
                         where=child_predicate):
                    scan = p.database.data.open_scan(p.context(), h, None,
                                                     where)
                    try:
                        rows = []
                        while True:
                            chunk = scan.next_batch(256)
                            if not chunk:
                                break
                            rows.extend(chunk)
                    finally:
                        scan.close()
                    return rows

                try:
                    rows = participant.call(ship)
                except GatewayError as exc:
                    failure = exc
                else:
                    participant.stats.bump("remote.tuples_scanned",
                                           len(rows))
            if rows is _UNREACHED:
                # Fail over to the most-caught-up standby: a stale-but-
                # bounded stream beats no stream, and the report says
                # exactly which shards are stale and by how much.

                def drain_standby(db, relation=descriptor["relation"],
                                  where=predicate):
                    h = db.catalog.handle(relation)
                    child_where = None
                    if where is not None:
                        child_where = Predicate(where.expr, h.schema,
                                                where.params)
                    with db.autocommit() as sctx:
                        scan = db.data.open_scan(sctx, h, None, child_where)
                        try:
                            out = []
                            while True:
                                chunk = scan.next_batch(256)
                                if not chunk:
                                    break
                                out.extend(chunk)
                        finally:
                            scan.close()
                            db.services.scans.unregister(scan)
                    return out

                rows = self._stale_read(descriptor, index, report,
                                        drain_standby)
            if rows is _UNREACHED:
                # Degraded read (opted in): the dead shard contributes no
                # rows rather than failing the whole scan.
                self._skip_shard(ctx, descriptor, index, report,
                                 "remote.degraded_scans", failure)
                continue
            streams.append([((index, remote_key), record)
                            for remote_key, record in rows])
        if len(streams) > 1 and self._child_order(ctx, descriptor):
            # Key-ordered children: lazy k-way merge on the remote key
            # keeps the global stream ordered (remote keys are the child
            # keys) while the merge itself stays batch-pulled — memory
            # bounded by the batch size, not the relation.
            source = _MergeSource(streams, ctx.stats)
            ctx.stats.bump("sharded.merged_scans")
        else:
            source = _ListSource(
                [pair for stream in streams for pair in stream])
        ctx.read_report = report  # _child_order spawns child reads
        scan = ShardedScan(ctx, handle, source, fields, report)
        ctx.services.scans.register(scan)
        return scan

    # -- cross-shard query pushdown ------------------------------------------------
    def fragment_worthwhile(self, ctx, handle, plan, fragment) -> bool:
        """Statistics-fed gating: push the fragment down only when it is
        expected to ship fewer rows than the pull-up scan would (results
        are bit-identical either way, so this is purely a cost call).

        Key-ordered children are gated off outright: per-shard fragments
        cannot reproduce the interleaved tie order of the merged global
        stream the pull-up path feeds to stable sorts and 'first' items.
        """
        from ..query import fragments
        descriptor = self._descriptor(handle)
        if self._child_order(ctx, descriptor):
            ctx.stats.bump("sharded.pushdown.gated_off")
            return False
        shards = descriptor["shards"]
        expected = getattr(plan.access.cost, "expected_tuples", 0.0) or 0.0
        distinct = None
        if fragment.kind == "group":
            distinct = self._group_distinct(ctx, handle, descriptor,
                                            plan.group_index)
        wire, pull = fragments.pushdown_estimate(fragment, shards, expected,
                                                 distinct)
        if wire < pull or fragments.projection_narrows(
                fragment, len(handle.schema.fields)):
            return True
        ctx.stats.bump("sharded.pushdown.gated_off")
        return False

    def _group_distinct(self, ctx, handle, descriptor: dict,
                        group_index: int) -> Optional[float]:
        """Global distinct estimate for the grouping column: the union of
        the per-shard KMV sketches when every child tracks statistics,
        else the coordinator's own statistics, else ``None``."""
        from ..access.statistics import (kmv_union_estimate, sketch_state,
                                         statistics_for)
        sketches = []
        for child in descriptor["databases"]:
            child_handle = child.catalog.handle(descriptor["relation"])
            column = sketch_state(child, child_handle, group_index)
            if column is None:
                sketches = None
                break
            sketches.append(column["kmv"])
        if sketches is not None:
            ctx.stats.bump("sharded.pushdown.kmv_unions")
            return float(kmv_union_estimate(sketches))
        table_stats = statistics_for(ctx, handle)
        if table_stats is not None:
            distinct = table_stats.distinct(group_index)
            if distinct is not None:
                return float(distinct)
        return None

    def run_fragment(self, ctx, handle, fragment, params):
        """Execute one shard-local fragment per shard — a single remote
        call each, dispatched concurrently — and run the coordinator
        merge program over the partial results.

        Per shard, the read ladder matches :meth:`open_scan` exactly:
        primary through the channel (retry/breaker/fencing), then the
        most-caught-up standby (marked stale in the read report), then a
        degraded skip when opted in.  *Any* other failure — fencing, an
        injected kernel fault, an unreachable shard without
        ``degraded_reads`` — raises :class:`FragmentFallback` so the
        executor transparently re-runs the query on the pull-up path:
        fail closed, never a partial answer.
        """
        from ..query import fragments
        descriptor = self._descriptor(handle)
        ent = self._enlist(ctx, handle)
        report = self._start_report(ctx)
        repl = descriptor.get("replication")
        relation = descriptor["relation"]
        shards = descriptor["shards"]
        sources = [_UNREACHED] * shards
        failures: Dict[int, GatewayError] = {}
        members, tasks, buffers = [], [], []
        for index in range(shards):
            transport = self._transport(index)
            channel = descriptor["channels"][index]
            if not transport.available(channel):
                continue
            participant = self._participant(ctx, handle, ent, index)
            # Touch the lazy engine in the coordinator thread; workers
            # must never race its first construction.
            participant.database.query_engine
            buffer = StatsBuffer()
            members.append(index)
            buffers.append(buffer)
            tasks.append(self._fragment_task(ctx, descriptor, fragment,
                                             params, index, participant,
                                             channel, transport, buffer))
        results = shared_pool().run(tasks)
        # Gather serially: stats buffers, replication health and failure
        # classification all touch single-threaded machinery.
        fallback = None
        for index, buffer, (rows, error) in zip(members, buffers, results):
            buffer.merge_into(ctx.services.stats)
            if error is None:
                sources[index] = rows
                if repl is not None:
                    repl.report_success(index)
                continue
            if isinstance(error, FencingError) \
                    or not isinstance(error, GatewayError):
                # A fence or a child-side fault is not a dead channel;
                # no failover, no degraded skip — fall back whole.
                if fallback is None:
                    fallback = error
                continue
            failures[index] = error
            if repl is not None:
                repl.report_failure(index)
                if repl.health(index) == DOWN:
                    repl.maybe_promote(index)
        if fallback is not None:
            ctx.stats.bump("sharded.pushdown.fallbacks")
            raise fragments.FragmentFallback(str(fallback)) from fallback
        for index in range(shards):
            if sources[index] is not _UNREACHED:
                continue

            def run_standby(db, relation=relation):
                with db.autocommit() as standby_ctx:
                    return fragments.run_fragment_on(
                        db, standby_ctx, relation, fragment, params)

            rows = self._stale_read(descriptor, index, report, run_standby)
            if rows is _UNREACHED:
                if not descriptor.get("degraded_reads"):
                    ctx.stats.bump("sharded.pushdown.fallbacks")
                    raise fragments.FragmentFallback(
                        f"shard {index} unreachable"
                    ) from failures.get(index)
                self._skip_shard(ctx, descriptor, index, report,
                                 "remote.degraded_fragments",
                                 failures.get(index))
                continue
            ctx.services.stats.namespace(f"shard.{index}").bump(
                "fragment.rows", len(rows))
            sources[index] = rows
        merged = fragments.merge_fragment_results(
            fragment,
            [rows for rows in sources if rows is not _UNREACHED], params)
        ctx.stats.bump("sharded.pushdown.queries")
        ctx.stats.bump("sharded.pushdown.fragments", len(tasks))
        ctx.read_report = report
        return merged

    def _fragment_task(self, ctx, descriptor, fragment, params, index,
                       participant, channel, transport, buffer):
        """One worker thunk: the whole fragment as one remote call.

        The worker writes counters only into its private buffer (mirrored
        under ``shard.<i>.``), owns the channel's breaker state for the
        duration, and reports nothing to replication — the gather loop
        applies health transitions serially.
        """
        from ..query import fragments
        repl = descriptor.get("replication")
        relation = descriptor["relation"]
        services = ctx.services
        shard_stats = NamespacedStats(buffer, f"shard.{index}")

        def task():
            if repl is not None \
                    and repl.epoch(index) != participant.epoch:
                raise FencingError(
                    f"shard {index}: fragment bound to deposed epoch "
                    f"{participant.epoch}")

            def send():
                transport.remote_call(services, channel, shard_stats)
                started = perf_counter()
                rows = fragments.run_fragment_on(
                    participant.database, participant.context(), relation,
                    fragment, params, cache_key=participant.database)
                shard_stats.bump("fragment.micros",
                                 int((perf_counter() - started) * 1e6))
                return rows

            rows = transport.call(channel, shard_stats, send)
            shard_stats.bump("fragment.calls")
            shard_stats.bump("fragment.rows", len(rows))
            return rows

        return task

    # -- planning -----------------------------------------------------------------
    def record_count(self, ctx, handle) -> int:
        descriptor = self._descriptor(handle)
        report = self._start_report(ctx)
        total = 0
        for index, child in enumerate(descriptor["databases"]):
            transport = self._transport(index)
            if not transport.available(descriptor["channels"][index]):

                def count_standby(db, relation=descriptor["relation"]):
                    return db.table(relation).count()

                count = self._stale_read(descriptor, index, report,
                                         count_standby)
                if count is not _UNREACHED:
                    total += count
                    continue
                self._skip_shard(ctx, descriptor, index, report,
                                 "remote.degraded_scans", None)
                continue
            total += child.table(descriptor["relation"]).count()
        return total

    def page_count(self, ctx, handle) -> int:
        # Child pages are invisible; cost comes from per-shard messages.
        return 0

    def estimate_cost(self, ctx, handle, eligible) -> AccessCost:
        descriptor = self._descriptor(handle)
        tuples = max(1, self.record_count(ctx, handle))
        selectivity = 1.0
        for pred in eligible:
            if pred.is_simple:
                selectivity *= DEFAULT_SELECTIVITY.get(pred.op, 0.5)
            else:
                selectivity *= 0.5
        expected = max(1.0, tuples * selectivity)
        shards = descriptor["shards"]
        latency = descriptor.get("latency", 0.5)
        return AccessCost(io_pages=shards * latency + expected / 50.0,
                          cpu_tuples=tuples,
                          expected_tuples=expected,
                          relevant=tuple(eligible),
                          ordered_by=self._child_order(ctx, descriptor),
                          route=("sharded_scan", shards))

    # -- restart resolution --------------------------------------------------------
    def resolve_decision(self, database, handle, payload: dict) -> int:
        """Redeliver a stable commit decision to still-prepared children.

        Called by :meth:`Database.resolve_indoubt` after a restart (or
        after a crashed shard comes back).  Delivery is direct — this is
        the resolution channel itself.
        """
        descriptor = handle.descriptor.storage_descriptor
        gtid = payload["gtid"]
        resolved = 0
        for index in payload.get("shards", ()):
            child = descriptor["databases"][index]
            manager = child.services.transactions
            child_txn = manager.find_gtid(gtid)
            if child_txn is None or child_txn.settled:
                # A vanished prepared child that heuristically aborted
                # contradicts this durable COMMIT: its changes are gone
                # while its siblings' are committed.  Surface the damage
                # instead of silently counting the child as resolved.
                if manager.heuristic_aborts.pop(gtid, None) is not None:
                    database.services.stats.bump("txn.2pc.heuristic_mismatches")
                continue
            if child_txn.state is TxnState.PREPARED:
                manager.commit_decided(child_txn)
                resolved += 1
        self._runtime.pop(payload["txn_id"], None)
        return resolved

    # -- event subscribers ---------------------------------------------------------
    def _on_savepoint_set(self, txn_id: int, info: dict) -> None:
        name = _mirror_name(info.get("name"))
        for ent in self._runtime.get(txn_id, {}).values():
            for participant in ent.participants.values():
                child_txn = participant.txn
                if child_txn.active and name not in child_txn.savepoints:
                    participant.manager.savepoint(child_txn, name)

    def _on_savepoint_rollback(self, txn_id: int, info: dict) -> None:
        name = _mirror_name(info.get("name"))
        for ent in self._runtime.get(txn_id, {}).values():
            for participant in ent.participants.values():
                child_txn = participant.txn
                if child_txn.active and name in child_txn.savepoints:
                    participant.manager.rollback_to(child_txn, name)

    def _on_txn_end(self, services, txn_id: int, info: dict) -> None:
        """End-of-transaction cleanup on the coordinator side.

        Unprepared children are rolled back directly (connection-drop
        semantics).  Prepared children depend on the local outcome: after
        a local *abort* they receive the abort decision (a real message —
        a dead channel leaves them prepared, to be drained by their own
        database's close/restart under presumed abort); after a local
        *commit* a still-prepared child is in doubt and must wait for the
        decision to be redelivered, so it is left strictly alone.
        """
        by_relation = self._runtime.pop(txn_id, None)
        if not by_relation:
            return
        local = services.transactions.get(txn_id)
        committed = local is not None and local.state is TxnState.COMMITTED
        for ent in by_relation.values():
            for participant in ent.participants.values():
                child_txn = participant.txn
                if child_txn.settled:
                    continue
                if child_txn.state is TxnState.PREPARED:
                    if committed:
                        continue
                    try:
                        participant.abort_decided()
                    except GatewayError:
                        services.stats.bump("txn.2pc.indoubt")
                    continue
                participant.manager.abort(child_txn)
