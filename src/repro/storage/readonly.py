"""Read-only publishing storage method.

The paper motivates "special facilities to support (read-only) optical
disk database publishing applications".  This storage method models a
write-once medium:

* a relation is *published* exactly once with :meth:`publish` (a bulk
  load that packs records onto pages and flushes them to the device — the
  mastering step);
* afterwards the relation is immutable: the method reports
  ``updatable = False`` and the dispatch layer rejects modification
  operations before they reach the storage method;
* nothing is ever logged — there is nothing to recover, the "platter"
  is stable storage by construction;
* record keys are ordinals (position on the platter), so direct-by-key
  access costs one page read via the pre-computed address directory.

DDL attributes: ``records_hint`` (int, advisory expected cardinality).
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

from ..core.context import ExecutionContext
from ..core.records import decode_record, encode_record
from ..core.storage_method import RelationHandle, StorageMethod
from ..errors import ReadOnlyError, ScanError, StorageError
from ..services.locks import LockMode
from ..services.predicate import Predicate
from ..services.scans import AFTER, BEFORE, ON, Scan, ScanPosition

__all__ = ["ReadOnlyStorageMethod", "ReadOnlyScan"]

PAGE_TYPE_READONLY = 3


class ReadOnlyScan(Scan):
    """Sequential scan in ordinal order over the published records."""

    def __init__(self, ctx: ExecutionContext, handle: RelationHandle,
                 fields: Optional[Sequence[int]],
                 predicate: Optional[Predicate]):
        super().__init__(ctx.txn_id)
        self.ctx = ctx
        self.handle = handle
        self.fields = tuple(fields) if fields is not None else None
        self.predicate = predicate
        self.state = BEFORE
        self.position: Optional[int] = None  # last ordinal returned

    def next(self):
        self._check_open()
        descriptor = self.handle.descriptor.storage_descriptor
        addresses = descriptor["addresses"]
        ordinal = 0 if self.position is None else self.position + 1
        buffer = self.ctx.buffer
        while ordinal < len(addresses):
            page_id, slot = addresses[ordinal]
            self.position = ordinal
            self.state = ON
            self.ctx.stats.bump("readonly.tuples_scanned")
            page = buffer.fetch(page_id)
            try:
                record = decode_record(self.handle.schema, page.read(slot))
                if self.predicate is not None \
                        and not self.predicate.matches(record):
                    ordinal += 1
                    continue
                if self.fields is None:
                    return ordinal, record
                return ordinal, tuple(record[i] for i in self.fields)
            finally:
                buffer.unpin(page_id)
        self.state = AFTER
        return None

    #: Pages prefetched ahead of the one being extracted during a batch.
    _PREFETCH_PAGES = 4

    def next_batch(self, n: int) -> list:
        """Extract up to ``n`` records with one pin per platter page —
        ordinals are packed page by page, so each page yields a run."""
        self._check_open()
        if n < 1:
            raise ScanError(f"next_batch needs a positive count, got {n}")
        descriptor = self.handle.descriptor.storage_descriptor
        addresses = descriptor["addresses"]
        pages = descriptor["pages"]
        ordinal = 0 if self.position is None else self.position + 1
        buffer = self.ctx.buffer
        batch: list = []
        while ordinal < len(addresses) and len(batch) < n:
            run_page = addresses[ordinal][0]
            page_index = pages.index(run_page)
            buffer.prefetch(pages[page_index + 1:
                                  page_index + 1 + self._PREFETCH_PAGES])
            page = buffer.fetch(run_page)
            try:
                while ordinal < len(addresses) and len(batch) < n:
                    page_id, slot = addresses[ordinal]
                    if page_id != run_page:
                        break
                    self.position = ordinal
                    self.state = ON
                    self.ctx.stats.bump("readonly.tuples_scanned")
                    record = decode_record(self.handle.schema, page.read(slot))
                    ordinal += 1
                    if self.predicate is not None \
                            and not self.predicate.matches(record):
                        continue
                    if self.fields is None:
                        batch.append((ordinal - 1, record))
                    else:
                        batch.append((ordinal - 1, tuple(
                            record[i] for i in self.fields)))
            finally:
                buffer.unpin(run_page)
        if not batch:
            self.state = AFTER
        return batch

    def save_position(self) -> ScanPosition:
        return ScanPosition(self.state, self.position)

    def restore_position(self, saved: ScanPosition) -> None:
        self.state = saved.state
        self.position = saved.item


class ReadOnlyStorageMethod(StorageMethod):
    """Write-once, read-many relation storage."""

    name = "readonly"
    recoverable = True   # survives restart (the platter is stable storage)
    updatable = False
    ordered_by_key = True  # ordinal order is the publication order

    # -- DDL -------------------------------------------------------------------
    def validate_attributes(self, schema, attributes):
        attributes = dict(attributes)
        hint = attributes.pop("records_hint", 0)
        if attributes:
            raise StorageError(
                f"readonly storage: unknown attributes {sorted(attributes)}")
        if not isinstance(hint, int) or hint < 0:
            raise StorageError(
                f"readonly storage: records_hint must be a non-negative int, "
                f"got {hint!r}")
        return {"records_hint": hint}

    def create_instance(self, ctx, relation_id, schema, attributes) -> dict:
        return {"relation_id": relation_id, "pages": [], "addresses": [],
                "published": False, "attributes": dict(attributes)}

    def destroy_instance(self, ctx, descriptor) -> None:
        for page_id in descriptor["pages"]:
            ctx.buffer.free_page(page_id)
        descriptor["pages"] = []
        descriptor["addresses"] = []

    # -- publishing (the mastering step) ---------------------------------------------
    def publish(self, ctx: ExecutionContext, handle: RelationHandle,
                records: Sequence[Tuple]) -> int:
        """Bulk-load the relation once; returns the record count.

        Pages are packed full and written straight through to the device —
        the published relation is durable immediately and no log records
        are ever needed for it.
        """
        descriptor = handle.descriptor.storage_descriptor
        if descriptor["published"]:
            raise ReadOnlyError(
                f"relation {handle.name!r} has already been published")
        ctx.lock_relation(handle.relation_id, LockMode.X)
        buffer = ctx.buffer
        page = None
        page_id = None
        for record in records:
            record = handle.schema.check_record(record)
            raw = encode_record(handle.schema, record)
            if page is None or not page.fits(len(raw)):
                if page is not None:
                    buffer.unpin(page_id, dirty=True)
                    buffer.flush_page(page_id)
                page = buffer.new_page(PAGE_TYPE_READONLY)
                page_id = page.page_id
                descriptor["pages"].append(page_id)
            slot = page.insert(raw)
            descriptor["addresses"].append((page_id, slot))
        if page is not None:
            buffer.unpin(page_id, dirty=True)
            buffer.flush_page(page_id)
        descriptor["published"] = True
        ctx.stats.bump("readonly.publications")
        return len(descriptor["addresses"])

    # -- modification: rejected -------------------------------------------------------
    def insert(self, ctx, handle, record):
        raise ReadOnlyError(f"relation {handle.name!r} is read-only")

    def update(self, ctx, handle, key, old_record, new_record):
        raise ReadOnlyError(f"relation {handle.name!r} is read-only")

    def delete(self, ctx, handle, key, old_record) -> None:
        raise ReadOnlyError(f"relation {handle.name!r} is read-only")

    # Batch modification is refused explicitly too (the dispatch layer
    # already blocks non-updatable methods, but direct callers get the
    # same error either way, even for an empty batch).
    def insert_batch(self, ctx, handle, records):
        raise ReadOnlyError(f"relation {handle.name!r} is read-only")

    def update_batch(self, ctx, handle, items):
        raise ReadOnlyError(f"relation {handle.name!r} is read-only")

    def delete_batch(self, ctx, handle, items) -> None:
        raise ReadOnlyError(f"relation {handle.name!r} is read-only")

    # -- access -------------------------------------------------------------------------
    def fetch(self, ctx, handle, key, fields=None, predicate=None):
        descriptor = handle.descriptor.storage_descriptor
        addresses = descriptor["addresses"]
        if not isinstance(key, int) or not 0 <= key < len(addresses):
            return None
        page_id, slot = addresses[key]
        page = ctx.buffer.fetch(page_id)
        try:
            record = decode_record(handle.schema, page.read(slot))
        finally:
            ctx.buffer.unpin(page_id)
        ctx.stats.bump("readonly.fetches")
        if predicate is not None and not predicate.matches(record):
            return None
        if fields is None:
            return record
        return tuple(record[i] for i in fields)

    def fetch_many(self, ctx, handle, keys, fields=None, predicate=None):
        """Group the requested ordinals by platter page, one pin each."""
        descriptor = handle.descriptor.storage_descriptor
        addresses = descriptor["addresses"]
        by_page = {}
        for key in keys:
            if not isinstance(key, int) or not 0 <= key < len(addresses):
                continue
            page_id, slot = addresses[key]
            by_page.setdefault(page_id, []).append((key, slot))
        found = {}
        for page_id, entries in by_page.items():
            page = ctx.buffer.fetch(page_id)
            try:
                for key, slot in entries:
                    record = decode_record(handle.schema, page.read(slot))
                    if predicate is not None and not predicate.matches(record):
                        continue
                    if fields is None:
                        found[key] = record
                    else:
                        found[key] = tuple(record[i] for i in fields)
            finally:
                ctx.buffer.unpin(page_id)
        ctx.stats.bump("readonly.fetches", len(found))
        return [(key, found[key]) for key in keys if key in found]

    def open_scan(self, ctx, handle, fields=None, predicate=None) -> Scan:
        scan = ReadOnlyScan(ctx, handle, fields, predicate)
        ctx.services.scans.register(scan)
        return scan

    # -- planning ---------------------------------------------------------------------------
    def record_count(self, ctx, handle) -> int:
        return len(handle.descriptor.storage_descriptor["addresses"])

    def page_count(self, ctx, handle) -> int:
        return len(handle.descriptor.storage_descriptor["pages"])
