"""Deterministic data generators shared by tests, examples, and benchmarks.

All generators take an explicit seed so every benchmark run sees the same
data; none of them depend on global random state.
"""

from __future__ import annotations

import random
from typing import List, Tuple

from ..core.records import Box

__all__ = ["employee_records", "rectangle_records", "parent_child_records",
           "zipf_int", "uniform_int"]

_DEPARTMENTS = ("engineering", "sales", "finance", "research", "support",
                "operations", "legal", "design")

_FIRST = ("alice", "bob", "carol", "dave", "erin", "frank", "grace", "heidi",
          "ivan", "judy", "mallory", "oscar", "peggy", "trent", "victor",
          "wendy")


def employee_records(n: int, seed: int = 7) -> List[Tuple]:
    """``(id, name, department, salary, active)`` rows, ids 1..n."""
    rng = random.Random(seed)
    out = []
    for i in range(1, n + 1):
        name = f"{rng.choice(_FIRST)}_{i}"
        department = rng.choice(_DEPARTMENTS)
        salary = round(rng.uniform(30000.0, 200000.0), 2)
        active = rng.random() < 0.9
        out.append((i, name, department, salary, active))
    return out


def rectangle_records(n: int, seed: int = 11, world: float = 1000.0,
                      max_side: float = 10.0) -> List[Tuple]:
    """``(id, region)`` rows with random small boxes in a square world."""
    rng = random.Random(seed)
    out = []
    for i in range(1, n + 1):
        x = rng.uniform(0.0, world - max_side)
        y = rng.uniform(0.0, world - max_side)
        w = rng.uniform(0.5, max_side)
        h = rng.uniform(0.5, max_side)
        out.append((i, Box(x, y, x + w, y + h)))
    return out


def parent_child_records(parents: int, children_per_parent: int,
                         seed: int = 13) -> Tuple[List[Tuple], List[Tuple]]:
    """``(parent rows, child rows)`` for referential-integrity workloads.

    Parents: ``(id, name)``.  Children: ``(id, parent_id, payload)``.
    """
    rng = random.Random(seed)
    parent_rows = [(i, f"parent_{i}") for i in range(1, parents + 1)]
    child_rows = []
    child_id = 1
    for parent_id in range(1, parents + 1):
        for __ in range(children_per_parent):
            child_rows.append((child_id, parent_id,
                               round(rng.uniform(0, 100), 3)))
            child_id += 1
    return parent_rows, child_rows


def uniform_int(n: int, low: int, high: int, seed: int = 17) -> List[int]:
    rng = random.Random(seed)
    return [rng.randint(low, high) for __ in range(n)]


def zipf_int(n: int, alpha: float = 1.2, max_value: int = 1000,
             seed: int = 19) -> List[int]:
    """Zipf-ish skewed integers in [1, max_value] (rejection-free inverse)."""
    rng = random.Random(seed)
    weights = [1.0 / (k ** alpha) for k in range(1, max_value + 1)]
    total = sum(weights)
    cumulative = []
    acc = 0.0
    for w in weights:
        acc += w / total
        cumulative.append(acc)
    out = []
    for __ in range(n):
        u = rng.random()
        lo, hi = 0, max_value - 1
        while lo < hi:
            mid = (lo + hi) // 2
            if cumulative[mid] < u:
                lo = mid + 1
            else:
                hi = mid
        out.append(lo + 1)
    return out
