"""Deterministic workload and data generators for tests and benchmarks."""

from __future__ import annotations

from .generators import (employee_records, rectangle_records,
                         parent_child_records, zipf_int, uniform_int)

__all__ = ["employee_records", "rectangle_records", "parent_child_records",
           "zipf_int", "uniform_int"]
