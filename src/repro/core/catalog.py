"""System catalogs.

Run-time descriptors for relation and access path instances: "the common
system will maintain and manage relation descriptors.  Each extension
supplies and interprets the contents of its own descriptor data, but the
common system manages the composite relation descriptor ...  This strategy
allows the common system to fetch the relation descriptors from the system
catalogs at query compilation time and store them in the query access
plan."

The catalog maps names to :class:`~repro.core.storage_method.RelationHandle`
objects and tracks per-relation statistics (cardinality, pages) for cost
estimation.  It also indexes attachment instances by name so DDL can drop
an index or constraint without knowing which relation it lives on.

Fidelity note (see DESIGN.md): the catalog is modelled as residing in
non-volatile system storage — it survives the simulated crash, while user
data pages and the buffer pool do not.  Transactional consistency of the
catalog is preserved through logical undo records written by the DDL layer.
"""

from __future__ import annotations

from typing import Dict, Iterator, Tuple

from ..errors import DuplicateObjectError, UnknownObjectError
from .storage_method import RelationHandle

__all__ = ["Catalog", "CatalogEntry"]


class CatalogEntry:
    """One relation's catalog row."""

    __slots__ = ("handle", "owner", "storage_method_name", "attachments")

    def __init__(self, handle: RelationHandle, owner: str,
                 storage_method_name: str):
        self.handle = handle
        self.owner = owner
        self.storage_method_name = storage_method_name
        #: instance name -> attachment type name
        self.attachments: Dict[str, str] = {}

    def __repr__(self) -> str:
        return (f"CatalogEntry({self.handle.name!r}, "
                f"sm={self.storage_method_name}, owner={self.owner})")


class Catalog:
    """Name → relation entry mapping plus the attachment-instance index."""

    def __init__(self):
        self._by_name: Dict[str, CatalogEntry] = {}
        self._by_id: Dict[int, CatalogEntry] = {}
        # attachment instance name -> relation name (instances are globally
        # named, like SQL indexes)
        self._attachment_index: Dict[str, str] = {}
        self._next_relation_id = 1

    # -- relations -------------------------------------------------------------
    def allocate_relation_id(self) -> int:
        relation_id = self._next_relation_id
        self._next_relation_id += 1
        return relation_id

    def install(self, entry: CatalogEntry) -> None:
        name = entry.handle.name
        if name in self._by_name:
            raise DuplicateObjectError(f"relation {name!r} already exists")
        self._by_name[name] = entry
        self._by_id[entry.handle.relation_id] = entry

    def remove(self, name: str) -> CatalogEntry:
        entry = self.entry(name)
        del self._by_name[name]
        del self._by_id[entry.handle.relation_id]
        for instance_name in entry.attachments:
            self._attachment_index.pop(instance_name, None)
        return entry

    def reinstall(self, entry: CatalogEntry) -> None:
        """Undo of a drop: put an entry (and its attachment names) back."""
        self.install(entry)
        for instance_name in entry.attachments:
            self._attachment_index[instance_name] = entry.handle.name

    def entry(self, name: str) -> CatalogEntry:
        try:
            return self._by_name[name.lower()]
        except KeyError:
            raise UnknownObjectError(f"no relation named {name!r}") from None

    def entry_by_id(self, relation_id: int) -> CatalogEntry:
        try:
            return self._by_id[relation_id]
        except KeyError:
            raise UnknownObjectError(
                f"no relation with id {relation_id}") from None

    def handle(self, name: str) -> RelationHandle:
        return self.entry(name).handle

    def exists(self, name: str) -> bool:
        return name.lower() in self._by_name

    def relations(self) -> Iterator[CatalogEntry]:
        return iter(self._by_name.values())

    def relation_names(self) -> Tuple[str, ...]:
        return tuple(sorted(self._by_name))

    # -- attachment instances --------------------------------------------------------
    def register_attachment(self, relation_name: str, instance_name: str,
                            type_name: str) -> None:
        instance_name = instance_name.lower()
        if instance_name in self._attachment_index:
            raise DuplicateObjectError(
                f"attachment instance {instance_name!r} already exists")
        entry = self.entry(relation_name)
        entry.attachments[instance_name] = type_name
        self._attachment_index[instance_name] = entry.handle.name

    def unregister_attachment(self, instance_name: str) -> Tuple[str, str]:
        """Remove an instance from the index; returns (relation, type name)."""
        instance_name = instance_name.lower()
        relation_name = self.find_attachment(instance_name)
        entry = self.entry(relation_name)
        type_name = entry.attachments.pop(instance_name)
        del self._attachment_index[instance_name]
        return relation_name, type_name

    def find_attachment(self, instance_name: str) -> str:
        """Relation name owning an attachment instance."""
        try:
            return self._attachment_index[instance_name.lower()]
        except KeyError:
            raise UnknownObjectError(
                f"no attachment instance named {instance_name!r}") from None

    def attachment_exists(self, instance_name: str) -> bool:
        return instance_name.lower() in self._attachment_index

    def __repr__(self) -> str:
        return (f"Catalog({len(self._by_name)} relations, "
                f"{len(self._attachment_index)} attachment instances)")
