"""Data definition with extension-specific attribute lists.

The paper: "the data definition language of the DBMS has been extended to
allow specification of a storage method or attachment type and an
attribute / value list for extension-specific parameters.  Storage method
and attachment implementations supply generic operations to validate and
process the attribute lists during parsing and execution of the data
definition operations."

Two further protocol points from the paper are implemented here:

* **Deferred destroy** — "In order to make storage method and attachment
  drop (destroy) operations undoable without logging the entire state of
  the relation or access path, the actual release of the relation or
  access path state is deferred until the transaction commits."  DROP
  removes the catalog entry immediately (so the object disappears from the
  transaction's view) but queues the storage release on the at-commit
  deferred-action queue; the logical undo record restores the catalog
  entry if the transaction aborts.
* **Plan invalidation** — creating or dropping relations and attachments
  invalidates dependent bound plans through the dependency tracker.
"""

from __future__ import annotations

from typing import Dict, Optional

from ..errors import DuplicateObjectError, StorageError
from ..services import events as ev
from ..services.recovery import ResourceHandler
from .attachment import instances_of
from .authorization import CONTROL
from .catalog import CatalogEntry
from .context import ExecutionContext
from .descriptor import RelationDescriptor
from .dependency import attachment_token, relation_token
from .storage_method import RelationHandle

__all__ = ["DataDefinition", "DDL_RESOURCE"]

DDL_RESOURCE = "ddl"


class _DdlHandler(ResourceHandler):
    """Logical undo for catalog changes; redo is a no-op because the
    catalog resides in non-volatile system storage (DESIGN.md)."""

    def __init__(self, database):
        self.database = database

    def undo(self, services, payload: dict, clr_lsn: int) -> None:
        action = payload["action"]
        db = self.database
        if action == "create_relation":
            # Undo create: destroy the just-created storage immediately and
            # remove the catalog entry.
            entry = db.catalog.entry(payload["name"])
            method = db.registry.storage_method(
                entry.handle.descriptor.storage_method_id)
            ctx = ExecutionContext(_RecoveryTxn(payload["txn_id"]),
                                   services, db)
            method.destroy_instance(ctx,
                                    entry.handle.descriptor.storage_descriptor)
            db.catalog.remove(payload["name"])
            db.authorization.forget_relation(payload["name"])
            db.dependencies.invalidate(relation_token(payload["name"]))
        elif action == "drop_relation":
            # Idempotent: restart's before_redo may have provisionally
            # reinstalled the entry so page redo could find it.
            if not db.catalog.exists(payload["entry"].handle.name):
                db.catalog.reinstall(payload["entry"])
        elif action == "create_attachment":
            entry = db.catalog.entry(payload["relation"])
            attachment = db.registry.attachment_type_by_name(payload["type"])
            field = entry.handle.descriptor.attachment_field(attachment.type_id)
            if field is not None:
                instance = field["instances"].pop(payload["instance"], None)
                if instance is not None:
                    ctx = ExecutionContext(_RecoveryTxn(payload["txn_id"]),
                                           services, db)
                    attachment.destroy_instance(ctx, entry.handle,
                                                payload["instance"], instance)
                if not field["instances"]:
                    entry.handle.descriptor.set_attachment_field(
                        attachment.type_id, None)
            if db.catalog.attachment_exists(payload["instance"]):
                db.catalog.unregister_attachment(payload["instance"])
            db.dependencies.invalidate(relation_token(payload["relation"]))
        elif action == "drop_attachment":
            entry = db.catalog.entry(payload["relation"])
            attachment = db.registry.attachment_type_by_name(payload["type"])
            field = entry.handle.descriptor.attachment_field(attachment.type_id)
            if field is None:
                field = attachment.new_field_descriptor()
                entry.handle.descriptor.set_attachment_field(
                    attachment.type_id, field)
            field["instances"][payload["instance"]] = payload["instance_data"]
            db.catalog.register_attachment(payload["relation"],
                                           payload["instance"],
                                           payload["type"])
            db.dependencies.invalidate(relation_token(payload["relation"]))
        else:
            raise StorageError(f"ddl cannot undo action {action!r}")

    def redo(self, services, lsn: int, payload: dict) -> None:
        """Catalog state is non-volatile; nothing to redo."""

    def before_redo(self, services, record) -> None:
        """A loser DROP hid the relation's catalog entry before the
        crash; put it back so page-based redo of the relation's data can
        resolve the descriptor.  Undo later reinstalls idempotently."""
        payload = record.payload
        if payload.get("action") == "drop_relation":
            entry = payload["entry"]
            if not self.database.catalog.exists(entry.handle.name):
                self.database.catalog.reinstall(entry)


class _RecoveryTxn:
    """Minimal transaction stand-in for undo-time extension calls."""

    __slots__ = ("txn_id",)

    def __init__(self, txn_id: int):
        self.txn_id = txn_id


class DataDefinition:
    """Executes DDL through the generic creation/destroy operations."""

    def __init__(self, database):
        self.database = database
        database.services.recovery.register_handler(
            DDL_RESOURCE, _DdlHandler(database))

    # ------------------------------------------------------------------
    # Relations
    # ------------------------------------------------------------------
    def create_relation(self, ctx: ExecutionContext, name: str, schema,
                        storage_method: str = "heap",
                        attributes: Optional[Dict[str, object]] = None,
                        owner: Optional[str] = None) -> RelationHandle:
        db = self.database
        name = name.lower()
        if db.catalog.exists(name):
            raise DuplicateObjectError(f"relation {name!r} already exists")
        method = db.registry.storage_method_by_name(storage_method)
        validated = method.validate_attributes(schema, attributes or {})
        relation_id = db.catalog.allocate_relation_id()
        storage_descriptor = method.create_instance(
            ctx, relation_id, schema, validated)
        descriptor = RelationDescriptor(method.method_id, storage_descriptor)
        handle = RelationHandle(relation_id, name, schema, descriptor)
        entry = CatalogEntry(handle, owner or db.principal, method.name)
        db.catalog.install(entry)
        db.authorization.set_owner(name, entry.owner)
        ctx.log(DDL_RESOURCE, {"action": "create_relation", "name": name,
                               "txn_id": ctx.txn_id})
        ctx.stats.bump("ddl.create_relation")
        return handle

    def drop_relation(self, ctx: ExecutionContext, name: str) -> None:
        db = self.database
        name = name.lower()
        entry = db.catalog.entry(name)
        db.authorization.check(db.principal, name, CONTROL)
        db.catalog.remove(name)
        ctx.log(DDL_RESOURCE, {"action": "drop_relation", "name": name,
                               "entry": entry, "txn_id": ctx.txn_id})
        # The actual release of relation and attachment state is deferred
        # until commit, keeping DROP undoable without logging the state.
        ctx.defer(ev.AT_COMMIT, self._release_relation, entry)
        db.dependencies.invalidate(relation_token(name))
        for instance_name in entry.attachments:
            db.dependencies.invalidate(attachment_token(instance_name))
        ctx.stats.bump("ddl.drop_relation")

    def _release_relation(self, txn_id: int, entry: CatalogEntry) -> None:
        db = self.database
        services = db.services
        ctx = ExecutionContext(_RecoveryTxn(txn_id), services, db)
        descriptor = entry.handle.descriptor
        for type_id, field in descriptor.present_attachments():
            attachment = db.registry.attachment_type(type_id)
            instances = dict(instances_of(field))
            instances.update(field.get("disabled", {}))
            instances.update(field.get("quarantined", {}))
            for instance_name, instance in instances.items():
                attachment.destroy_instance(ctx, entry.handle, instance_name,
                                            instance)
        method = db.registry.storage_method(descriptor.storage_method_id)
        method.destroy_instance(ctx, descriptor.storage_descriptor)
        db.authorization.forget_relation(entry.handle.name)
        services.stats.bump("ddl.deferred_releases")

    # ------------------------------------------------------------------
    # Attachments
    # ------------------------------------------------------------------
    def create_attachment(self, ctx: ExecutionContext, relation: str,
                          type_name: str, instance_name: str,
                          attributes: Optional[Dict[str, object]] = None
                          ) -> dict:
        db = self.database
        relation = relation.lower()
        instance_name = instance_name.lower()
        entry = db.catalog.entry(relation)
        db.authorization.check(db.principal, relation, CONTROL)
        if db.catalog.attachment_exists(instance_name):
            raise DuplicateObjectError(
                f"attachment instance {instance_name!r} already exists")
        attachment = db.registry.attachment_type_by_name(type_name)
        handle = entry.handle
        validated = attachment.validate_attributes(handle.schema,
                                                   attributes or {})
        field = handle.descriptor.attachment_field(attachment.type_id)
        installed_field = field is not None
        if field is None:
            field = attachment.new_field_descriptor()
            handle.descriptor.set_attachment_field(attachment.type_id, field)
        try:
            instance = attachment.create_instance(ctx, handle, instance_name,
                                                  validated)
        except Exception:
            if not installed_field:
                handle.descriptor.set_attachment_field(attachment.type_id, None)
            raise
        field["instances"][instance_name] = instance
        db.catalog.register_attachment(relation, instance_name,
                                       attachment.name)
        ctx.log(DDL_RESOURCE, {"action": "create_attachment",
                               "relation": relation, "type": attachment.name,
                               "instance": instance_name,
                               "txn_id": ctx.txn_id})
        db.dependencies.invalidate(relation_token(relation))
        ctx.stats.bump("ddl.create_attachment")
        return instance

    def drop_attachment(self, ctx: ExecutionContext, instance_name: str) -> None:
        db = self.database
        instance_name = instance_name.lower()
        relation = db.catalog.find_attachment(instance_name)
        db.authorization.check(db.principal, relation, CONTROL)
        entry = db.catalog.entry(relation)
        __, type_name = db.catalog.unregister_attachment(instance_name)
        attachment = db.registry.attachment_type_by_name(type_name)
        handle = entry.handle
        field = handle.descriptor.attachment_field(attachment.type_id)
        # A disabled or quarantined instance can be dropped directly.
        disabled = field.get("disabled", {})
        if instance_name in disabled:
            field["instances"][instance_name] = disabled.pop(instance_name)
        quarantined = field.get("quarantined", {})
        if instance_name in quarantined:
            field["instances"][instance_name] = quarantined.pop(instance_name)
        instance = field["instances"].pop(instance_name)
        if not field["instances"] and not field.get("disabled") \
                and not field.get("quarantined"):
            # Field N becomes NULL again when the last instance goes.
            handle.descriptor.set_attachment_field(attachment.type_id, None)
        ctx.log(DDL_RESOURCE, {"action": "drop_attachment",
                               "relation": relation, "type": type_name,
                               "instance": instance_name,
                               "instance_data": instance,
                               "txn_id": ctx.txn_id})
        ctx.defer(ev.AT_COMMIT, self._release_attachment,
                  (handle, type_name, instance_name, instance))
        db.dependencies.invalidate(attachment_token(instance_name))
        db.dependencies.invalidate(relation_token(relation))
        ctx.stats.bump("ddl.drop_attachment")

    # ------------------------------------------------------------------
    # Status changes ("change mode or status of ... attachment instances")
    # ------------------------------------------------------------------
    def set_attachment_status(self, ctx: ExecutionContext,
                              instance_name: str, enabled: bool) -> None:
        """Disable or re-enable an attachment instance.

        A disabled instance is moved out of the active instance set, so it
        is neither maintained by attached procedures nor considered by the
        planner.  Re-enabling an access-path instance rebuilds its
        structure from the base relation (the data may have drifted while
        it was disabled); constraint instances without a rebuild operation
        resume enforcement for *future* modifications only.
        """
        db = self.database
        instance_name = instance_name.lower()
        relation = db.catalog.find_attachment(instance_name)
        db.authorization.check(db.principal, relation, CONTROL)
        entry = db.catalog.entry(relation)
        type_name = entry.attachments[instance_name]
        attachment = db.registry.attachment_type_by_name(type_name)
        handle = entry.handle
        field = handle.descriptor.attachment_field(attachment.type_id)
        disabled = field.setdefault("disabled", {})
        if enabled:
            if instance_name not in disabled:
                return  # already enabled
            field["instances"][instance_name] = disabled.pop(instance_name)
            rebuild = getattr(attachment, "rebuild", None)
            if rebuild is not None:
                rebuild(ctx, handle, field)
        else:
            if instance_name not in field["instances"]:
                return  # already disabled
            disabled[instance_name] = field["instances"].pop(instance_name)
        handle.descriptor.version += 1
        db.dependencies.invalidate(relation_token(relation))
        db.dependencies.invalidate(attachment_token(instance_name))
        ctx.stats.bump("ddl.status_changes")

    def rebuild_attachment(self, ctx: ExecutionContext,
                           instance_name: str) -> None:
        """Bring a quarantined attachment instance back into service.

        The instance's structure is rebuilt from the base relation (the
        data drifted while it was offline — quarantined instances are
        excluded from modification fan-out), the offense count against its
        type on this relation is forgiven, and dependent plans are
        invalidated so the planner sees the restored access path.  Also
        accepts an in-service instance, in which case it is simply rebuilt
        (media recovery for a damaged index).
        """
        db = self.database
        instance_name = instance_name.lower()
        relation = db.catalog.find_attachment(instance_name)
        db.authorization.check(db.principal, relation, CONTROL)
        entry = db.catalog.entry(relation)
        type_name = entry.attachments[instance_name]
        attachment = db.registry.attachment_type_by_name(type_name)
        handle = entry.handle
        field = handle.descriptor.attachment_field(attachment.type_id)
        quarantined = field.get("quarantined", {})
        if instance_name in quarantined:
            field["instances"][instance_name] = quarantined.pop(instance_name)
        rebuild = getattr(attachment, "rebuild", None)
        if rebuild is not None:
            rebuild(ctx, handle, field)
        db.data.forgive(handle.relation_id, attachment.type_id)
        handle.descriptor.version += 1
        db.dependencies.invalidate(relation_token(relation))
        db.dependencies.invalidate(attachment_token(instance_name))
        ctx.stats.bump("containment.quarantine.rebuilds")

    def _release_attachment(self, txn_id: int, data) -> None:
        handle, type_name, instance_name, instance = data
        db = self.database
        attachment = db.registry.attachment_type_by_name(type_name)
        ctx = ExecutionContext(_RecoveryTxn(txn_id), db.services, db)
        attachment.destroy_instance(ctx, handle, instance_name, instance)
        db.services.stats.bump("ddl.deferred_releases")
