"""The extensible relation descriptor.

The paper: "The relation descriptor is composed of a relation storage
method descriptor and descriptors for any attachments defined on the
relation instance.  The structure of the relation descriptor is a record
whose header contains the storage method identifier and whose first field
contains the storage method descriptor.  Each attachment has an assigned
identifier, and the descriptor for the attachment with identifier N is
found in field N of the relation descriptor.  If there are no instances of
attachment type N defined on a particular relation, then field N of that
relation's descriptor will be NULL."

The common system manages the composite; each extension supplies and
interprets only its own part.  The descriptor is fetched from the catalogs
at query compilation time and embedded in bound plans, eliminating catalog
access at run time — the plan cache (query/plans.py) relies on that.
"""

from __future__ import annotations

import pickle
from typing import Iterator, List, Optional, Tuple

from ..errors import DescriptorError

__all__ = ["RelationDescriptor"]


class RelationDescriptor:
    """Header (storage method id + storage descriptor) plus one field per
    registered attachment type."""

    __slots__ = ("storage_method_id", "storage_descriptor", "_fields",
                 "version")

    def __init__(self, storage_method_id: int, storage_descriptor: dict):
        if storage_method_id < 1:
            raise DescriptorError(
                f"bad storage method id {storage_method_id} (0 is reserved "
                "for 'access via the storage method')")
        self.storage_method_id = storage_method_id
        self.storage_descriptor = storage_descriptor
        self._fields: List[Optional[dict]] = []
        #: Bumped on every structural change; bound plans compare versions
        #: to detect that the descriptor they embedded is stale.
        self.version = 0

    # -- attachment fields ---------------------------------------------------
    def attachment_field(self, type_id: int) -> Optional[dict]:
        """Field ``type_id`` of the descriptor record, or None."""
        if type_id < 1:
            raise DescriptorError(f"bad attachment type id {type_id}")
        if type_id > len(self._fields):
            return None
        return self._fields[type_id - 1]

    def set_attachment_field(self, type_id: int, field: Optional[dict]) -> None:
        if type_id < 1:
            raise DescriptorError(f"bad attachment type id {type_id}")
        while len(self._fields) < type_id:
            self._fields.append(None)
        self._fields[type_id - 1] = field
        self.version += 1

    def present_attachments(self) -> Iterator[Tuple[int, dict]]:
        """Yield ``(type_id, field descriptor)`` for non-NULL fields, in
        type-id order — the order attached procedures are driven in."""
        for i, field in enumerate(self._fields):
            if field is not None:
                yield i + 1, field

    def attachment_count(self) -> int:
        return sum(1 for _ in self.present_attachments())

    def has_attachments(self) -> bool:
        return any(field is not None for field in self._fields)

    # -- record-oriented encoding ------------------------------------------------
    def encode(self) -> bytes:
        """Serialise to the record-oriented catalog form.

        The paper notes this format "effectively limits the number of
        different attachment types to a few dozen without beginning to
        incur significant storage overhead ... (since non-present
        attachments will require a few bytes in the record-oriented
        relation descriptor format)" — tests measure exactly that overhead.
        """
        return pickle.dumps(
            (self.storage_method_id, self.storage_descriptor,
             list(self._fields), self.version),
            protocol=pickle.HIGHEST_PROTOCOL)

    @classmethod
    def decode(cls, raw: bytes) -> "RelationDescriptor":
        method_id, storage_descriptor, fields, version = pickle.loads(raw)
        descriptor = cls(method_id, storage_descriptor)
        descriptor._fields = fields
        descriptor.version = version
        return descriptor

    def encoded_size(self) -> int:
        return len(self.encode())

    def __repr__(self) -> str:
        present = [i for i, _ in self.present_attachments()]
        return (f"RelationDescriptor(sm={self.storage_method_id}, "
                f"attachments={present}, v{self.version})")
