"""Extension registry and procedure vectors.

The paper: "For each direct or indirect generic operation, there is a
vector of addresses for the procedures that implement the corresponding
operation ...  Storage method and attachment internal identifiers are
small integers that serve as indexes into the vectors of procedures ...
the base database system has a storage method for implementing temporary
relations and that storage method is assigned the internal identifier 1."

Extensions are "made at the factory": they are registered when the
database instance is constructed (the Python analogue of being compiled
and linked with the DBMS), after which dispatch is a list index — no name
lookup on the hot path.  Benchmark E1 measures exactly this.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from ..errors import RegistryError
from .attachment import AttachmentType
from .storage_method import StorageMethod

__all__ = ["ExtensionRegistry"]


class ExtensionRegistry:
    """Assigns identifiers and maintains the procedure vectors."""

    def __init__(self):
        # Index 0 is reserved: "access path zero is interpreted as an
        # access to the storage method" — so neither vector uses slot 0.
        self._storage_methods: List[Optional[StorageMethod]] = [None]
        self._attachment_types: List[Optional[AttachmentType]] = [None]
        self._storage_by_name: Dict[str, StorageMethod] = {}
        self._attachment_by_name: Dict[str, AttachmentType] = {}

        # Direct-operation procedure vectors (one entry per storage method).
        self.storage_insert: List[Optional[Callable]] = [None]
        self.storage_update: List[Optional[Callable]] = [None]
        self.storage_delete: List[Optional[Callable]] = [None]
        self.storage_fetch: List[Optional[Callable]] = [None]
        self.storage_fetch_many: List[Optional[Callable]] = [None]
        self.storage_open_scan: List[Optional[Callable]] = [None]

        # Set-at-a-time counterparts; the entries default to the base-class
        # fallbacks (which loop the per-record routines) unless the method
        # overrides a batch hook.
        self.storage_insert_batch: List[Optional[Callable]] = [None]
        self.storage_update_batch: List[Optional[Callable]] = [None]
        self.storage_delete_batch: List[Optional[Callable]] = [None]

        # Attached-procedure vectors (one entry per attachment type) for
        # relation insert, update, and delete.
        self.attached_insert: List[Optional[Callable]] = [None]
        self.attached_update: List[Optional[Callable]] = [None]
        self.attached_delete: List[Optional[Callable]] = [None]

        # Set-at-a-time attached-procedure vectors (one call per batch).
        self.attached_insert_batch: List[Optional[Callable]] = [None]
        self.attached_update_batch: List[Optional[Callable]] = [None]
        self.attached_delete_batch: List[Optional[Callable]] = [None]

    # -- registration ("at the factory") -----------------------------------------
    def register_storage_method(self, method: StorageMethod,
                                recovery=None) -> int:
        """Install a storage method; returns its assigned identifier.

        When the method is recoverable and supplies a ``recovery_handler()``,
        the handler is registered with the recovery manager passed in
        ``recovery``.
        """
        if not method.name:
            raise RegistryError("storage method needs a name")
        if method.name in self._storage_by_name:
            raise RegistryError(
                f"storage method {method.name!r} already registered")
        method_id = len(self._storage_methods)
        method.method_id = method_id
        self._storage_methods.append(method)
        self._storage_by_name[method.name] = method
        self.storage_insert.append(method.insert)
        self.storage_update.append(method.update)
        self.storage_delete.append(method.delete)
        self.storage_fetch.append(method.fetch)
        self.storage_fetch_many.append(method.fetch_many)
        self.storage_open_scan.append(method.open_scan)
        self.storage_insert_batch.append(method.insert_batch)
        self.storage_update_batch.append(method.update_batch)
        self.storage_delete_batch.append(method.delete_batch)
        handler = getattr(method, "recovery_handler", None)
        if recovery is not None and handler is not None:
            recovery.register_handler(method.resource, handler())
        return method_id

    def register_attachment_type(self, attachment: AttachmentType,
                                 recovery=None) -> int:
        """Install an attachment type; returns its assigned identifier."""
        if not attachment.name:
            raise RegistryError("attachment type needs a name")
        if attachment.name in self._attachment_by_name:
            raise RegistryError(
                f"attachment type {attachment.name!r} already registered")
        type_id = len(self._attachment_types)
        attachment.type_id = type_id
        self._attachment_types.append(attachment)
        self._attachment_by_name[attachment.name] = attachment
        self.attached_insert.append(attachment.on_insert)
        self.attached_update.append(attachment.on_update)
        self.attached_delete.append(attachment.on_delete)
        self.attached_insert_batch.append(attachment.on_insert_batch)
        self.attached_update_batch.append(attachment.on_update_batch)
        self.attached_delete_batch.append(attachment.on_delete_batch)
        handler = getattr(attachment, "recovery_handler", None)
        if recovery is not None and handler is not None:
            recovery.register_handler(attachment.resource, handler())
        return type_id

    # -- vector-indexed lookup (the hot path) ----------------------------------------
    def storage_method(self, method_id: int) -> StorageMethod:
        try:
            method = self._storage_methods[method_id]
        except IndexError:
            method = None
        if method is None:
            raise RegistryError(f"no storage method with id {method_id}")
        return method

    def attachment_type(self, type_id: int) -> AttachmentType:
        try:
            attachment = self._attachment_types[type_id]
        except IndexError:
            attachment = None
        if attachment is None:
            raise RegistryError(f"no attachment type with id {type_id}")
        return attachment

    # -- name lookup (DDL / catalog time only) ------------------------------------------
    def storage_method_by_name(self, name: str) -> StorageMethod:
        try:
            return self._storage_by_name[name]
        except KeyError:
            raise RegistryError(
                f"unknown storage method {name!r} (available: "
                f"{sorted(self._storage_by_name)})") from None

    def attachment_type_by_name(self, name: str) -> AttachmentType:
        try:
            return self._attachment_by_name[name]
        except KeyError:
            raise RegistryError(
                f"unknown attachment type {name!r} (available: "
                f"{sorted(self._attachment_by_name)})") from None

    # -- introspection ---------------------------------------------------------------------
    @property
    def storage_methods(self) -> tuple:
        return tuple(m for m in self._storage_methods if m is not None)

    @property
    def attachment_types(self) -> tuple:
        return tuple(a for a in self._attachment_types if a is not None)

    @property
    def max_attachment_id(self) -> int:
        return len(self._attachment_types) - 1

    def __repr__(self) -> str:
        return (f"ExtensionRegistry({len(self.storage_methods)} storage "
                f"methods, {len(self.attachment_types)} attachment types)")
