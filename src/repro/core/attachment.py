"""The attachment generic abstraction.

The paper: "Access path, integrity constraint, and trigger extensions are
called 'attachments' ...  Unlike storage methods, attachment modification
operations are not directly invoked by the data management facility user.
Instead, attachment modification interfaces are invoked only as side
effects of modification operations on relations ...  Any attachment can
abort the relation operation if the operation violates any restrictions of
the attachment."

Key protocol points implemented here:

* each attachment **type** is invoked at most once per relation
  modification and must itself service *all instances* of its type defined
  on the relation (the type receives the composite per-type field from the
  relation descriptor);
* attachments may **veto** by raising :class:`~repro.errors.VetoError` (or
  a subclass); the dispatch layer then drives the log-based partial
  rollback of the storage-method change and the attachments that already
  ran;
* access-path attachments additionally expose direct access operations
  (direct-by-key and key-sequential over their mapping structures) and
  cost estimation;
* attachments may have their own storage (the paper distinguishes them
  from plain triggers on exactly this point).
"""

from __future__ import annotations

import abc
from typing import Dict, Optional, Sequence, Tuple

from ..errors import UnknownObjectError
from ..query.cost import AccessCost, EligiblePredicate
from ..services.predicate import Predicate
from ..services.scans import Scan
from .context import ExecutionContext
from .storage_method import RelationHandle

__all__ = ["AttachmentType", "instances_of", "tag_batch_index"]


def tag_batch_index(exc: BaseException, index: int) -> None:
    """Record which batch element an escaping exception belongs to.

    Works for any exception type (the dispatch fault barrier copies the
    attribute onto the :class:`~repro.errors.ExtensionFault` it raises);
    exceptions that refuse attributes (``__slots__``) are left untagged.
    """
    try:
        if getattr(exc, "batch_index", None) is None:
            exc.batch_index = index
    except AttributeError:
        pass


def instances_of(field: dict) -> Dict[str, dict]:
    """The per-instance descriptors inside an attachment field descriptor.

    By convention every attachment type keeps its instances under the
    ``"instances"`` key of its field descriptor, mapping instance name →
    instance descriptor.  The helper exists so the dispatch layer and tools
    can enumerate instances without knowing the type.
    """
    return field.get("instances", {})


class AttachmentType(abc.ABC):
    """Base class for attachment extensions.

    Class attributes:

    * ``name`` — unique registry name (and recovery resource suffix);
    * ``is_access_path`` — whether the type supports direct access
      operations (fetch/scan/cost); integrity constraints and triggers
      leave this False;
    * ``recoverable`` — whether the attachment logs its own storage
      changes (pure checks log nothing).
    """

    name: str = ""
    is_access_path: bool = False
    recoverable: bool = False

    #: Assigned by the registry; indexes the attachment procedure vectors
    #: and the relation descriptor fields.
    type_id: int = -1

    @property
    def resource(self) -> str:
        return f"attachment.{self.name}"

    # -- data definition -----------------------------------------------------
    def validate_attributes(self, schema, attributes: Dict[str, object]
                            ) -> Dict[str, object]:
        """Validate the DDL attribute/value list for a new instance."""
        return dict(attributes)

    def new_field_descriptor(self) -> dict:
        """The descriptor stored in the relation descriptor's field for this
        type when its first instance is created."""
        return {"instances": {}}

    @abc.abstractmethod
    def create_instance(self, ctx: ExecutionContext, handle: RelationHandle,
                        instance_name: str,
                        attributes: Dict[str, object]) -> dict:
        """Create one attachment instance; returns its instance descriptor.

        Implementations must bring the instance up to date with records
        already stored in the relation (e.g. bulk-build an index) and
        install the descriptor under ``field["instances"][instance_name]``
        themselves if they need intermediate state; the DDL layer installs
        the returned descriptor after this call returns.
        """

    @abc.abstractmethod
    def destroy_instance(self, ctx: ExecutionContext, handle: RelationHandle,
                         instance_name: str, instance: dict) -> None:
        """Release an instance's storage (deferred to commit by DDL)."""

    # -- procedurally attached, indirect operations ------------------------------
    def on_insert(self, ctx: ExecutionContext, handle: RelationHandle,
                  field: dict, key, new_record: Tuple) -> None:
        """Called once per record insert; must service all instances."""

    def on_update(self, ctx: ExecutionContext, handle: RelationHandle,
                  field: dict, old_key, new_key, old_record: Tuple,
                  new_record: Tuple) -> None:
        """Called once per record update with old and new values/keys."""

    def on_delete(self, ctx: ExecutionContext, handle: RelationHandle,
                  field: dict, key, old_record: Tuple) -> None:
        """Called once per record delete with the old record value."""

    # -- set-at-a-time attached procedures -----------------------------------------
    # Called once per relation modification *batch* (after the storage
    # method has applied the whole set).  The defaults fan out to the
    # per-record hooks, so existing attachment types work unchanged; types
    # that profit from set-at-a-time maintenance (indexes sorting their
    # entries, constraints batching existence probes) override these.  A
    # veto raised anywhere rolls the whole batch back to the operation
    # savepoint.

    def on_insert_batch(self, ctx: ExecutionContext, handle: RelationHandle,
                        field: dict, keys: Sequence,
                        new_records: Sequence[Tuple]) -> None:
        """Called once per insert batch; parallel ``keys``/``new_records``."""
        for index, (key, record) in enumerate(zip(keys, new_records)):
            try:
                self.on_insert(ctx, handle, field, key, record)
            except Exception as exc:
                tag_batch_index(exc, index)
                raise

    def on_update_batch(self, ctx: ExecutionContext, handle: RelationHandle,
                        field: dict, items: Sequence[Tuple]) -> None:
        """Called once per update batch; ``items`` holds ``(old_key,
        new_key, old_record, new_record)`` quadruples."""
        for index, (old_key, new_key, old, new) in enumerate(items):
            try:
                self.on_update(ctx, handle, field, old_key, new_key, old, new)
            except Exception as exc:
                tag_batch_index(exc, index)
                raise

    def on_delete_batch(self, ctx: ExecutionContext, handle: RelationHandle,
                        field: dict, items: Sequence[Tuple]) -> None:
        """Called once per delete batch; ``items`` holds ``(key,
        old_record)`` pairs."""
        for index, (key, old) in enumerate(items):
            try:
                self.on_delete(ctx, handle, field, key, old)
            except Exception as exc:
                tag_batch_index(exc, index)
                raise

    # -- direct access operations (access paths only) --------------------------------
    def fetch(self, ctx: ExecutionContext, handle: RelationHandle,
              instance: dict, input_key) -> Sequence:
        """Direct-by-key: map an access-path key to matching record keys."""
        raise UnknownObjectError(
            f"attachment type {self.name!r} is not an access path")

    def open_scan(self, ctx: ExecutionContext, handle: RelationHandle,
                  instance: dict,
                  predicate: Optional[Predicate] = None,
                  route=None) -> Scan:
        """Key-sequential access over the mapping structure.

        Yields ``(record_key, view)`` where ``view`` exposes whatever
        record fields are present in the access-path key (so the common
        predicate evaluator can filter before the base record is fetched).
        """
        raise UnknownObjectError(
            f"attachment type {self.name!r} is not an access path")

    def estimate_cost(self, ctx: ExecutionContext, handle: RelationHandle,
                      instance_name: str, instance: dict,
                      eligible: Sequence[EligiblePredicate]
                      ) -> Optional[AccessCost]:
        """Cost of answering via this instance, or ``None`` when the
        eligible predicates are not relevant to it."""
        return None

    # -- helpers --------------------------------------------------------------------------
    def instance(self, field: dict, name: str) -> dict:
        try:
            return field["instances"][name]
        except KeyError:
            if name in field.get("quarantined", {}):
                raise UnknownObjectError(
                    f"attachment instance {name!r} of type {self.name!r} is "
                    "quarantined (offline after repeated faults; use "
                    "rebuild_attachment to restore it)") from None
            if name in field.get("disabled", {}):
                raise UnknownObjectError(
                    f"attachment instance {name!r} of type {self.name!r} is "
                    "disabled") from None
            raise UnknownObjectError(
                f"attachment {self.name!r} has no instance {name!r}") from None

    def __repr__(self) -> str:
        return f"<AttachmentType {self.name} id={self.type_id}>"
