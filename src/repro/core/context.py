"""Execution context passed through every generic operation.

Extensions never reach for globals: each direct or indirect generic
operation receives an :class:`ExecutionContext` carrying the transaction,
the common services bundle, and the owning database (attachments use the
latter to access *other* relations — e.g. referential integrity acting on a
child relation, the paper's cascaded-modification example).
"""

from __future__ import annotations

from typing import Hashable

from ..services import SystemServices
from ..services.locks import LockMode
from ..services.transactions import Transaction
from ..services.wal import LogRecord

__all__ = ["ExecutionContext"]


class ExecutionContext:
    """Per-operation bundle: transaction + services + database."""

    __slots__ = ("txn", "services", "database", "read_report")

    def __init__(self, txn: Transaction, services: SystemServices,
                 database=None):
        self.txn = txn
        self.services = services
        self.database = database
        #: Structured outcome of the last degraded-capable read through
        #: this context (set by storage methods that can serve partial or
        #: stale results — see the sharded method), or None.
        self.read_report = None

    # -- convenience passthroughs used by every extension ----------------------
    @property
    def txn_id(self) -> int:
        return self.txn.txn_id

    @property
    def buffer(self):
        return self.services.buffer

    @property
    def stats(self):
        return self.services.stats

    def log(self, resource: str, payload: dict) -> LogRecord:
        """Append a logical operation record for a recoverable extension."""
        return self.services.recovery.log_update(self.txn_id, resource, payload)

    def log_batch(self, resource: str, payloads) -> list:
        """Append a group of operation records occupying one LSN range."""
        return self.services.recovery.log_update_batch(self.txn_id, resource,
                                                       payloads)

    def lock(self, resource: Hashable, mode: LockMode) -> None:
        """Acquire a lock — unless this is a snapshot reader.

        Snapshot transactions resolve reads against their snapshot at the
        scan boundary, so locks buy them nothing: every lock request is
        skipped (counted under ``mvcc.lock_bypasses``) and the reader can
        neither block nor be blocked by writers.  Modifications by a
        snapshot transaction are rejected long before this point.
        """
        if self.txn.snapshot is not None:
            self.services.stats.bump("mvcc.lock_bypasses")
            return
        self.services.locks.acquire(self.txn_id, resource, mode)

    def lock_relation(self, relation_id: int, mode: LockMode) -> None:
        self.lock(("rel", relation_id), mode)

    def lock_record(self, relation_id: int, key, mode: LockMode) -> None:
        """Record lock under the usual IS/IX intent on the relation.

        Skipped entirely when the transaction already holds a relation-level
        lock that subsumes ``mode`` (set-at-a-time operations escalate large
        batches to one relation lock instead of record-at-a-time locking).
        """
        if self.services.locks.covers(self.txn_id, ("rel", relation_id), mode):
            return
        intent = LockMode.IX if mode in (LockMode.X, LockMode.IX) else LockMode.IS
        self.lock(("rel", relation_id), intent)
        self.lock(("rec", relation_id, key), mode)

    def defer(self, event: str, callback, data=None) -> None:
        self.services.events.defer(self.txn_id, event, callback, data)

    def spawn(self, txn: Transaction) -> "ExecutionContext":
        """A context for the same services/database but another transaction."""
        return ExecutionContext(txn, self.services, self.database)
