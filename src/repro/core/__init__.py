"""Core architecture: generic abstractions, registry, descriptor, dispatch."""

from __future__ import annotations

from .attachment import AttachmentType
from .context import ExecutionContext
from .descriptor import RelationDescriptor
from .dispatch import AccessPath, DataManager, STORAGE_ACCESS
from .records import Box, RecordView
from .registry import ExtensionRegistry
from .relation import Relation
from .schema import Field, Schema
from .storage_method import RelationHandle, StorageMethod

__all__ = ["AttachmentType", "ExecutionContext", "RelationDescriptor",
           "AccessPath", "DataManager", "STORAGE_ACCESS", "Box",
           "RecordView", "ExtensionRegistry", "Relation", "Field", "Schema",
           "RelationHandle", "StorageMethod"]
