"""The storage method generic abstraction.

The paper: "Relation storage method extensions are known simply as
'storage methods' ... a storage method implementation must support a
well-defined set of relation operations such as delete, insert, destroy
relation, and estimate access costs (for query planning).  Additionally,
storage method implementations must define the notion of a record key and
support direct-by-key and key-sequential record accesses to selected
fields of the records.  The definition and interpretation of record keys
is controlled by the storage method implementation."

Every concrete storage method subclasses :class:`StorageMethod` and is
registered in the extension registry, which assigns it the small-integer
identifier used to index the procedure vectors and the relation descriptor
header.
"""

from __future__ import annotations

import abc
from typing import Dict, Optional, Sequence, Tuple

from ..query.cost import AccessCost, EligiblePredicate
from ..services.predicate import Predicate
from ..services.scans import Scan
from .context import ExecutionContext

__all__ = ["StorageMethod", "RelationHandle"]


class RelationHandle:
    """Runtime identity of one relation instance.

    Bundles what every generic operation needs: the relation id (lock name
    and catalog key), the schema, and the composite relation descriptor
    through which each extension reaches *its own* meta-data.
    """

    __slots__ = ("relation_id", "name", "schema", "descriptor")

    def __init__(self, relation_id: int, name: str, schema, descriptor):
        self.relation_id = relation_id
        self.name = name
        self.schema = schema
        self.descriptor = descriptor

    def __repr__(self) -> str:
        return f"RelationHandle({self.name!r}, id={self.relation_id})"


class StorageMethod(abc.ABC):
    """Base class for relation storage method extensions.

    Class attributes concrete methods must define:

    * ``name`` — unique registry name (also names the recovery resource);
    * ``recoverable`` — whether modifications are logged and survive abort
      and restart (the paper's recoverable vs. temporary distinction);
    * ``updatable`` — whether modifications are supported at all (the
      read-only publishing method sets this False);
    * ``ordered_by_key`` — whether key-sequential access returns records in
      a meaningful key order (B-tree-organised storage) rather than
      physical order (heaps).
    """

    name: str = ""
    recoverable: bool = True
    updatable: bool = True
    ordered_by_key: bool = False

    #: Assigned by the registry; indexes the storage procedure vectors and
    #: the relation descriptor header.
    method_id: int = -1

    @property
    def resource(self) -> str:
        """Recovery-log resource name for this method's logged operations."""
        return f"storage.{self.name}"

    # -- data definition --------------------------------------------------------
    def validate_attributes(self, schema, attributes: Dict[str, object]
                            ) -> Dict[str, object]:
        """Validate the DDL attribute/value list for this storage method.

        The paper extends the data definition language with an extension-
        specific attribute list; the extension "supplies generic operations
        to validate and process the attribute lists during parsing and
        execution of the data definition operations".  Returns the
        normalised attribute dict; raises on unknown/invalid attributes.
        The default accepts an empty list only.
        """
        if attributes:
            from ..errors import StorageError
            raise StorageError(
                f"storage method {self.name!r} accepts no attributes, got "
                f"{sorted(attributes)}")
        return {}

    @abc.abstractmethod
    def create_instance(self, ctx: ExecutionContext, relation_id: int,
                        schema, attributes: Dict[str, object]) -> dict:
        """Create storage for a new relation; returns its storage descriptor."""

    @abc.abstractmethod
    def destroy_instance(self, ctx: ExecutionContext, descriptor: dict) -> None:
        """Release the storage behind a descriptor (deferred to commit by
        the DDL layer so that DROP stays undoable without logging state)."""

    # -- relation modification -----------------------------------------------------
    @abc.abstractmethod
    def insert(self, ctx: ExecutionContext, handle: RelationHandle,
               record: Tuple):
        """Store a record; returns its record key."""

    @abc.abstractmethod
    def update(self, ctx: ExecutionContext, handle: RelationHandle,
               key, old_record: Tuple, new_record: Tuple):
        """Replace a record; returns its (possibly changed) record key."""

    @abc.abstractmethod
    def delete(self, ctx: ExecutionContext, handle: RelationHandle,
               key, old_record: Tuple) -> None:
        """Remove a record by key."""

    # -- set-at-a-time relation modification ---------------------------------------
    # The batch hooks are the set-at-a-time counterparts of insert / update /
    # delete.  The dispatch layer calls them once per relation modification
    # batch (one operation savepoint, one relation lock for the whole set).
    # The defaults degrade to the per-record routines, so every storage
    # method keeps working without overriding anything; methods with a real
    # bulk advantage (filling pages before unpinning them, logging one
    # record group per page) override these.

    def insert_batch(self, ctx: ExecutionContext, handle: RelationHandle,
                     records: Sequence[Tuple]) -> list:
        """Store several records; returns their record keys in order."""
        return [self.insert(ctx, handle, record) for record in records]

    def update_batch(self, ctx: ExecutionContext, handle: RelationHandle,
                     items: Sequence[Tuple]) -> list:
        """Replace several records; ``items`` holds ``(key, old_record,
        new_record)`` triples.  Returns the (possibly changed) keys in
        order."""
        return [self.update(ctx, handle, key, old, new)
                for key, old, new in items]

    def delete_batch(self, ctx: ExecutionContext, handle: RelationHandle,
                     items: Sequence[Tuple]) -> None:
        """Remove several records; ``items`` holds ``(key, old_record)``
        pairs."""
        for key, old in items:
            self.delete(ctx, handle, key, old)

    # -- access -------------------------------------------------------------------------
    @abc.abstractmethod
    def fetch(self, ctx: ExecutionContext, handle: RelationHandle, key,
              fields: Optional[Sequence[int]] = None,
              predicate: Optional[Predicate] = None) -> Optional[Tuple]:
        """Direct-by-key access: selected fields of the record with ``key``.

        Returns ``None`` when the key does not exist or the filter predicate
        rejects the record (evaluated against the buffered record, before
        any copy-out).  ``fields=None`` returns the whole record.
        """

    def fetch_many(self, ctx: ExecutionContext, handle: RelationHandle,
                   keys: Sequence,
                   fields: Optional[Sequence[int]] = None,
                   predicate: Optional[Predicate] = None) -> list:
        """Direct-by-key access for a whole set of record keys.

        Returns ``(key, values)`` pairs in input-key order, omitting keys
        that do not exist or whose records the filter predicate rejects.
        The default degrades to per-key :meth:`fetch`; page-addressed
        methods override it to group the keys by page and pin each page
        once — the read-side counterpart of the batch modification hooks.
        The executor's index-probe routes run on this.
        """
        pairs = []
        for key in keys:
            values = self.fetch(ctx, handle, key, fields, predicate)
            if values is not None:
                pairs.append((key, values))
        return pairs

    @abc.abstractmethod
    def open_scan(self, ctx: ExecutionContext, handle: RelationHandle,
                  fields: Optional[Sequence[int]] = None,
                  predicate: Optional[Predicate] = None) -> Scan:
        """Key-sequential access over all records.

        The scan yields ``(record_key, values)`` tuples and follows the
        paper's positioning rules (on/after/before; a delete at the scan
        position leaves the scan just after the deleted item).
        """

    # -- statistics & planning -----------------------------------------------------------
    @abc.abstractmethod
    def record_count(self, ctx: ExecutionContext, handle: RelationHandle) -> int:
        """Number of records currently stored (cheap; used for costing)."""

    def page_count(self, ctx: ExecutionContext, handle: RelationHandle) -> int:
        """Pages occupied; in-memory methods return 0."""
        return 0

    def estimate_cost(self, ctx: ExecutionContext, handle: RelationHandle,
                      eligible: Sequence[EligiblePredicate]) -> AccessCost:
        """Cost of scanning this relation applying the eligible predicates.

        The default models a full scan: every page read, every tuple
        touched, output scaled by the predicates' selectivities — real
        ones from an installed statistics attachment when available, the
        System R defaults otherwise.
        """
        from ..access.statistics import (predicate_selectivity,
                                         statistics_for)
        from ..query.cost import DEFAULT_SELECTIVITY
        table_stats = statistics_for(ctx, handle)
        tuples = max(1, self.record_count(ctx, handle))
        pages = max(1, self.page_count(ctx, handle))
        selectivity = 1.0
        for pred in eligible:
            estimated = predicate_selectivity(table_stats, pred)
            if estimated is not None:
                selectivity *= estimated
            elif pred.is_simple:
                selectivity *= DEFAULT_SELECTIVITY.get(pred.op, 0.5)
            else:
                selectivity *= 0.5
        ordered = None
        if self.ordered_by_key:
            key_fields = self.key_fields(handle)
            if key_fields:
                ordered = tuple(key_fields)
        return AccessCost(io_pages=pages, cpu_tuples=tuples,
                          expected_tuples=max(1.0, tuples * selectivity),
                          relevant=tuple(eligible), ordered_by=ordered,
                          route=("scan",))

    def key_fields(self, handle: RelationHandle) -> Tuple[int, ...]:
        """Field indexes composing the record key, when the key is composed
        from record fields (B-tree-organised storage); empty for address
        keys (heaps)."""
        return ()

    def __repr__(self) -> str:
        return f"<StorageMethod {self.name} id={self.method_id}>"
