"""Relation schemas: field definitions, typing, and record validation.

A :class:`Schema` is the common, extension-independent description of a
relation's record layout.  It is stored in the system catalogs, embedded in
relation descriptors, and consulted by every storage method and attachment
when encoding, decoding, or projecting records.
"""

from __future__ import annotations

from typing import Sequence, Tuple

from ..errors import SchemaError
from .records import Box

__all__ = ["FIELD_TYPES", "Field", "Schema"]

#: The supported field type codes and a Python-level type check for each.
FIELD_TYPES = {
    "INT": lambda v: isinstance(v, int) and not isinstance(v, bool),
    "FLOAT": lambda v: isinstance(v, (int, float)) and not isinstance(v, bool),
    "STRING": lambda v: isinstance(v, str),
    "BOOL": lambda v: isinstance(v, bool),
    "BYTES": lambda v: isinstance(v, (bytes, bytearray)),
    "BOX": lambda v: isinstance(v, Box),
}

#: Types on which ordering comparisons (and therefore B-tree keys and
#: key-sequential ordering) are defined.
ORDERABLE_TYPES = frozenset({"INT", "FLOAT", "STRING", "BOOL", "BYTES"})


class Field:
    """One field (column) of a relation schema."""

    __slots__ = ("name", "type_code", "nullable")

    def __init__(self, name: str, type_code: str, nullable: bool = True):
        # Dots are allowed so the query layer can synthesise qualified
        # (table.column) names for join output schemas.
        if not name or not name.replace("_", "").replace(".", "").isalnum():
            raise SchemaError(f"bad field name {name!r}")
        if type_code not in FIELD_TYPES:
            raise SchemaError(
                f"unknown field type {type_code!r} (expected one of "
                f"{sorted(FIELD_TYPES)})")
        self.name = name.lower()
        self.type_code = type_code
        self.nullable = nullable

    def check_value(self, value) -> None:
        """Raise :class:`SchemaError` unless ``value`` fits this field."""
        if value is None:
            if not self.nullable:
                raise SchemaError(f"field {self.name!r} is not nullable")
            return
        if not FIELD_TYPES[self.type_code](value):
            raise SchemaError(
                f"field {self.name!r} expects {self.type_code}, got "
                f"{type(value).__name__} {value!r}")

    def __eq__(self, other) -> bool:
        return (isinstance(other, Field)
                and (self.name, self.type_code, self.nullable)
                == (other.name, other.type_code, other.nullable))

    def __hash__(self) -> int:
        return hash((self.name, self.type_code, self.nullable))

    def __repr__(self) -> str:
        null = "" if self.nullable else " NOT NULL"
        return f"Field({self.name} {self.type_code}{null})"


class Schema:
    """An ordered collection of fields describing a relation's records."""

    def __init__(self, name: str, fields: Sequence[Field]):
        if not fields:
            raise SchemaError("a schema needs at least one field")
        names = [f.name for f in fields]
        if len(set(names)) != len(names):
            raise SchemaError(f"duplicate field names in schema {name!r}")
        self.name = name.lower()
        self.fields: Tuple[Field, ...] = tuple(fields)
        self._index = {f.name: i for i, f in enumerate(self.fields)}

    # -- lookups -------------------------------------------------------------
    def field_index(self, name: str) -> int:
        try:
            return self._index[name.lower()]
        except KeyError:
            raise SchemaError(
                f"relation {self.name!r} has no field {name!r} "
                f"(fields: {', '.join(self._index)})") from None

    def field(self, name: str) -> Field:
        return self.fields[self.field_index(name)]

    def has_field(self, name: str) -> bool:
        return name.lower() in self._index

    def field_names(self) -> Tuple[str, ...]:
        return tuple(f.name for f in self.fields)

    def indexes_of(self, names: Sequence[str]) -> Tuple[int, ...]:
        return tuple(self.field_index(n) for n in names)

    # -- validation ----------------------------------------------------------
    def check_record(self, record: Sequence) -> Tuple:
        """Validate and normalise a record against this schema.

        Accepts any sequence of values in field order and returns the
        canonical tuple form.  Raises :class:`SchemaError` on arity or type
        mismatches.
        """
        if len(record) != len(self.fields):
            raise SchemaError(
                f"record has {len(record)} values, schema {self.name!r} "
                f"has {len(self.fields)} fields")
        for field, value in zip(self.fields, record):
            field.check_value(value)
        return tuple(record)

    def check_partial(self, updates: dict) -> dict:
        """Validate a {field name: value} partial update; returns
        {field index: value}."""
        normalised = {}
        for name, value in updates.items():
            i = self.field_index(name)
            self.fields[i].check_value(value)
            normalised[i] = value
        return normalised

    def apply_update(self, record: Sequence, updates: dict) -> Tuple:
        """Return a new record tuple with ``updates`` ({index: value})
        applied."""
        values = list(record)
        for i, value in updates.items():
            values[i] = value
        return self.check_record(values)

    def orderable(self, name: str) -> bool:
        return self.field(name).type_code in ORDERABLE_TYPES

    # -- value protocol --------------------------------------------------------
    def __eq__(self, other) -> bool:
        return (isinstance(other, Schema) and self.name == other.name
                and self.fields == other.fields)

    def __len__(self) -> int:
        return len(self.fields)

    def __repr__(self) -> str:
        cols = ", ".join(f"{f.name} {f.type_code}" for f in self.fields)
        return f"Schema({self.name}: {cols})"
