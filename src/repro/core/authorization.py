"""Uniform authorization facility.

The paper: "Because extensions are alternative implementations of a common
relation abstraction, a uniform authorization facility can be used to
control user access to relations of all storage methods."

Privileges are the four relation modification/access classes plus CONTROL
(grant/revoke and DDL on the relation).  The owner of a relation holds
every privilege implicitly; a designated superuser principal bypasses
checks.  Authorization is enforced at the relation abstraction — storage
methods and attachments never see it, which is exactly the uniformity the
paper claims.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Set, Tuple

from ..errors import AuthorizationError

__all__ = ["Privilege", "AuthorizationService",
           "SELECT", "INSERT", "UPDATE", "DELETE", "CONTROL"]

SELECT = "select"
INSERT = "insert"
UPDATE = "update"
DELETE = "delete"
CONTROL = "control"

PRIVILEGES = frozenset({SELECT, INSERT, UPDATE, DELETE, CONTROL})

#: Alias kept for introspection/tests.
Privilege = str


class AuthorizationService:
    """Grant tables keyed by (relation name, principal)."""

    def __init__(self, superuser: str = "admin"):
        self.superuser = superuser
        self._grants: Dict[Tuple[str, str], Set[str]] = {}
        self._owners: Dict[str, str] = {}
        self.enabled = True

    # -- ownership ---------------------------------------------------------------
    def set_owner(self, relation: str, owner: str) -> None:
        self._owners[relation.lower()] = owner

    def owner(self, relation: str) -> str:
        return self._owners.get(relation.lower(), self.superuser)

    def forget_relation(self, relation: str) -> None:
        relation = relation.lower()
        self._owners.pop(relation, None)
        for key in [k for k in self._grants if k[0] == relation]:
            del self._grants[key]

    # -- grant / revoke -----------------------------------------------------------
    def grant(self, granter: str, relation: str, principal: str,
              privileges) -> None:
        self._require(granter, relation, CONTROL)
        privileges = self._normalise(privileges)
        self._grants.setdefault((relation.lower(), principal),
                                set()).update(privileges)

    def revoke(self, revoker: str, relation: str, principal: str,
               privileges) -> None:
        self._require(revoker, relation, CONTROL)
        privileges = self._normalise(privileges)
        held = self._grants.get((relation.lower(), principal))
        if held:
            held.difference_update(privileges)

    # -- checking ---------------------------------------------------------------------
    def check(self, principal: str, relation: str, privilege: str) -> None:
        """Raise :class:`AuthorizationError` unless allowed."""
        if not self.enabled:
            return
        self._require(principal, relation, privilege)

    def allowed(self, principal: str, relation: str, privilege: str) -> bool:
        try:
            self._require(principal, relation, privilege)
        except AuthorizationError:
            return False
        return True

    def privileges_of(self, principal: str, relation: str) -> FrozenSet[str]:
        if principal == self.superuser or principal == self.owner(relation):
            return frozenset(PRIVILEGES)
        return frozenset(self._grants.get((relation.lower(), principal), ()))

    # -- internals -----------------------------------------------------------------------
    def _require(self, principal: str, relation: str, privilege: str) -> None:
        if privilege not in PRIVILEGES:
            raise AuthorizationError(f"unknown privilege {privilege!r}")
        if principal == self.superuser:
            return
        if principal == self.owner(relation):
            return
        held = self._grants.get((relation.lower(), principal), ())
        if privilege not in held:
            raise AuthorizationError(
                f"principal {principal!r} lacks {privilege.upper()} on "
                f"{relation!r}")

    @staticmethod
    def _normalise(privileges) -> Set[str]:
        if isinstance(privileges, str):
            privileges = [privileges]
        out = {p.lower() for p in privileges}
        bad = out - PRIVILEGES
        if bad:
            raise AuthorizationError(f"unknown privileges {sorted(bad)}")
        return out
