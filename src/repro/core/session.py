"""Sessions: the multi-caller front door to one database.

The paper's extension architecture serves "an integrated database
supporting multiple applications"; the unit of concurrency is therefore
the *session*, not the engine.  A :class:`Session` is one caller's
connection: it owns a per-session transaction, carries its own principal
for the uniform authorization facility, and shares everything engine-wide
— the catalog, the extension registry, the common services, and the
bound-plan cache (plans are keyed by statement text and re-validated
against relation descriptor versions, so one session's DDL transparently
re-translates every other session's cached plans).

Admission control: the database grants at most ``max_sessions``
concurrent sessions; :meth:`Database.connect` raises
:class:`~repro.errors.AdmissionError` beyond that, bounding the
transaction, lock, and scan state a burst of callers can pin.

A session duck-types the :class:`Database` surface that
:class:`~repro.core.relation.Relation` and the query engine consume
(``catalog``, ``data``, ``services``, ``authorization``, ``principal``,
``autocommit``), so every existing layer runs unchanged against a
session — it just resolves transactions and principals per session.

Read-only work should use ``session.begin(snapshot=True)``: the
transaction reads a consistent snapshot through the multi-version
machinery and takes no locks, so it neither blocks nor is blocked by any
writer session.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Optional

from ..errors import SessionError, TransactionError
from .context import ExecutionContext
from .relation import Relation

__all__ = ["Session"]


class Session:
    """One caller's connection to a shared database."""

    def __init__(self, database, session_id: int,
                 principal: Optional[str] = None):
        self.database = database
        self.session_id = session_id
        self.principal = principal if principal is not None \
            else database.principal
        self._txn = None
        self.closed = False

    # ------------------------------------------------------------------
    # Shared engine surface (duck-types Database for Relation/queries)
    # ------------------------------------------------------------------
    @property
    def services(self):
        return self.database.services

    @property
    def catalog(self):
        return self.database.catalog

    @property
    def data(self):
        return self.database.data

    @property
    def registry(self):
        return self.database.registry

    @property
    def authorization(self):
        return self.database.authorization

    @property
    def dependencies(self):
        return self.database.dependencies

    # ------------------------------------------------------------------
    # Per-session transactions
    # ------------------------------------------------------------------
    def begin(self, snapshot: bool = False):
        """Open this session's transaction.

        ``snapshot=True`` begins a read-only snapshot transaction: reads
        are served from a consistent point-in-time view and acquire no
        locks (see ``services/transactions.py``).
        """
        self._check_open()
        if self._txn is not None and self._txn.active:
            raise TransactionError(
                f"session {self.session_id} already has an open transaction")
        with self.services.stats.session(self.session_id):
            self._txn = self.services.transactions.begin(snapshot=snapshot)
        return self._txn

    def commit(self) -> None:
        txn = self._require_txn()
        self._txn = None
        with self.services.stats.session(self.session_id):
            try:
                self.services.transactions.commit(txn)
            except Exception:
                if not txn.settled:
                    self.services.transactions.abort(txn)
                raise

    def rollback(self) -> None:
        txn = self._require_txn()
        self._txn = None
        with self.services.stats.session(self.session_id):
            self.services.transactions.abort(txn)

    def savepoint(self, name: str) -> int:
        return self.services.transactions.savepoint(self._require_txn(), name)

    def rollback_to(self, name: str) -> int:
        return self.services.transactions.rollback_to(self._require_txn(),
                                                      name)

    @contextmanager
    def transaction(self, snapshot: bool = False):
        """``with session.transaction() as ctx:`` — commit on exit."""
        txn = self.begin(snapshot=snapshot)
        try:
            yield ExecutionContext(txn, self.services, self)
            self._txn = None
            with self.services.stats.session(self.session_id):
                self.services.transactions.commit(txn)
        except Exception:
            if not txn.settled:
                self._txn = None
                with self.services.stats.session(self.session_id):
                    self.services.transactions.abort(txn)
            raise

    @contextmanager
    def autocommit(self):
        """Join this session's open transaction, or run one for the call.

        Every bump inside the block is attributed to this session as well
        as engine-wide, so per-session counters reconcile in benchmarks.
        """
        self._check_open()
        with self.services.stats.session(self.session_id):
            if self._txn is not None and self._txn.active:
                yield ExecutionContext(self._txn, self.services, self)
                return
            txn = self.services.transactions.begin()
            try:
                yield ExecutionContext(txn, self.services, self)
                self.services.transactions.commit(txn)
            except Exception:
                if not txn.settled:
                    self.services.transactions.abort(txn)
                raise

    def _require_txn(self):
        self._check_open()
        if self._txn is None or not self._txn.active:
            raise TransactionError(
                f"session {self.session_id} has no open transaction")
        return self._txn

    @property
    def in_transaction(self) -> bool:
        return self._txn is not None and self._txn.active

    # ------------------------------------------------------------------
    # Work surface
    # ------------------------------------------------------------------
    def table(self, name: str) -> Relation:
        self._check_open()
        self.catalog.entry(name)  # fail fast on unknown names
        return Relation(self, name)

    def execute(self, statement: str, params: Optional[dict] = None):
        """Run a mini-SQL statement through the shared plan cache, under
        this session's transaction and principal."""
        self._check_open()
        return self.database.query_engine.execute(statement, params,
                                                  scope=self)

    def explain(self, statement: str) -> dict:
        self._check_open()
        return self.database.query_engine.explain(statement, scope=self)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def close(self) -> None:
        """Disconnect: abort any open transaction, free the admission slot.

        Idempotent — closing a closed session is a no-op.
        """
        if self.closed:
            return
        if self._txn is not None and self._txn.active:
            txn = self._txn
            self._txn = None
            with self.services.stats.session(self.session_id):
                self.services.transactions.abort(txn)
        self.closed = True
        self.database._disconnect(self)
        self.services.stats.bump("sessions.closed")

    def __enter__(self) -> "Session":
        self._check_open()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.close()
        return False

    def _check_open(self) -> None:
        if self.closed:
            raise SessionError(f"session {self.session_id} is closed")

    def __repr__(self) -> str:
        state = "closed" if self.closed else (
            "in-txn" if self.in_transaction else "idle")
        return (f"Session(id={self.session_id}, "
                f"principal={self.principal!r}, {state})")
