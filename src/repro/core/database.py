"""The Database: wiring of common services, registry, catalogs, and DDL.

A :class:`Database` instance is the "integrated database supporting
multiple applications" the paper targets.  Constructing one registers the
built-in storage methods and attachment types "at the factory" — the
Python analogue of compiling and linking extensions with the DBMS — after
which the procedure vectors are fixed and dispatch is purely index-based.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Dict, Optional, Sequence, Union

from ..errors import AdmissionError, TransactionError
from ..services import SystemServices
from ..services import wal as wal_records
from ..services.transactions import TxnState
from .authorization import AuthorizationService
from .catalog import Catalog
from .context import ExecutionContext
from .ddl import DataDefinition
from .dependency import DependencyTracker
from .dispatch import DataManager
from .registry import ExtensionRegistry
from .relation import Relation
from .schema import Field, Schema
from .session import Session

__all__ = ["Database"]


class Database:
    """An extensible relational database instance."""

    def __init__(self, page_size: int = 4096, buffer_capacity: int = 256,
                 principal: str = "admin", register_builtins: bool = True,
                 group_commit: int = 0, auto_checkpoint_interval: int = 0,
                 max_sessions: int = 64, kernel_backend=None):
        self.services = SystemServices(page_size=page_size,
                                       buffer_capacity=buffer_capacity)
        # Durability knobs: group_commit=N batches N commits per log force
        # (deferred durability until the group flushes);
        # auto_checkpoint_interval=N takes a fuzzy checkpoint every N log
        # records, bounding restart redo and enabling log truncation.
        self.services.transactions.group_commit_limit = group_commit
        if auto_checkpoint_interval > 0:
            self.services.enable_auto_checkpoint(auto_checkpoint_interval)
        self.services.database = self  # recovery handlers reach the catalog
        self.services.in_restart = False
        self.registry = ExtensionRegistry()
        self.catalog = Catalog()
        self.authorization = AuthorizationService(superuser=principal)
        self.dependencies = DependencyTracker()
        self.data = DataManager(self.registry, self.services)
        self.ddl = DataDefinition(self)
        self.principal = principal
        self._session_txn = None
        self._query_engine = None
        #: Admission control: the bounded session pool.
        self.max_sessions = max_sessions
        self._sessions: Dict[int, "Session"] = {}
        self._next_session_id = 1
        # Columnar kernel backend: None auto-detects (NumPy when
        # importable), "python"/"numpy" name one, or pass an instance.
        # Resolution is lazy so constructing a Database never imports
        # NumPy unless the query layer actually runs.
        self._kernel_backend_spec = kernel_backend
        self._kernel_backend = None
        if register_builtins:
            self._register_builtins()

    @property
    def kernel_backend(self):
        """The resolved columnar kernel backend (see :mod:`..query.backends`)."""
        if self._kernel_backend is None:
            from ..query.backends import resolve
            self._kernel_backend = resolve(self._kernel_backend_spec)
        return self._kernel_backend

    # ------------------------------------------------------------------
    # Sessions (the multi-caller front door)
    # ------------------------------------------------------------------
    def connect(self, principal: Optional[str] = None) -> "Session":
        """Admit a new session, or raise :class:`AdmissionError` when the
        pool is at capacity.  ``principal`` defaults to the database's."""
        if len(self._sessions) >= self.max_sessions:
            self.services.stats.bump("sessions.rejected")
            raise AdmissionError(self.max_sessions)
        session = Session(self, self._next_session_id, principal)
        self._next_session_id += 1
        self._sessions[session.session_id] = session
        self.services.stats.bump("sessions.connected")
        return session

    def _disconnect(self, session: "Session") -> None:
        self._sessions.pop(session.session_id, None)

    def sessions(self) -> tuple:
        """The currently admitted sessions."""
        return tuple(self._sessions.values())

    def _register_builtins(self) -> None:
        from ..access import builtin_attachment_types
        from ..storage import builtin_storage_methods
        recovery = self.services.recovery
        for method in builtin_storage_methods():
            self.registry.register_storage_method(method, recovery)
        for attachment in builtin_attachment_types():
            self.registry.register_attachment_type(attachment, recovery)

    # ------------------------------------------------------------------
    # Transactions
    # ------------------------------------------------------------------
    def begin(self):
        """Open an explicit session transaction."""
        if self._session_txn is not None and self._session_txn.active:
            raise TransactionError("a session transaction is already open")
        self._session_txn = self.services.transactions.begin()
        return self._session_txn

    def commit(self) -> None:
        txn = self._require_session()
        self._session_txn = None
        try:
            self.services.transactions.commit(txn)
        except Exception:
            if not txn.settled:
                self.services.transactions.abort(txn)
            raise

    def rollback(self) -> None:
        txn = self._require_session()
        self._session_txn = None
        self.services.transactions.abort(txn)

    def savepoint(self, name: str) -> int:
        return self.services.transactions.savepoint(self._require_session(),
                                                    name)

    def rollback_to(self, name: str) -> int:
        return self.services.transactions.rollback_to(self._require_session(),
                                                      name)

    @contextmanager
    def transaction(self):
        """``with db.transaction() as ctx:`` — commit on exit, abort on error."""
        txn = self.begin()
        try:
            yield ExecutionContext(txn, self.services, self)
            self._session_txn = None
            self.services.transactions.commit(txn)
        except Exception:
            if not txn.settled:
                self._session_txn = None
                self.services.transactions.abort(txn)
            raise

    @contextmanager
    def autocommit(self):
        """Join the open session transaction, or run one just for this call."""
        if self._session_txn is not None and self._session_txn.active:
            yield ExecutionContext(self._session_txn, self.services, self)
            return
        txn = self.services.transactions.begin()
        try:
            yield ExecutionContext(txn, self.services, self)
            self.services.transactions.commit(txn)
        except Exception:
            # `not settled` (rather than `active`) also catches a commit
            # that failed after PREPARED — e.g. an injected log-flush
            # fault — whose changes and locks would otherwise leak, and
            # whose unflushed COMMIT record would silently become durable
            # at the next log force.
            if not txn.settled:
                self.services.transactions.abort(txn)
            raise

    def _require_session(self):
        if self._session_txn is None or not self._session_txn.active:
            raise TransactionError("no session transaction is open")
        return self._session_txn

    @property
    def in_transaction(self) -> bool:
        return self._session_txn is not None and self._session_txn.active

    # ------------------------------------------------------------------
    # DDL conveniences
    # ------------------------------------------------------------------
    def create_table(self, name: str,
                     columns: Union[Schema, Sequence],
                     storage_method: str = "heap",
                     attributes: Optional[Dict[str, object]] = None,
                     owner: Optional[str] = None) -> Relation:
        """Create a relation; ``columns`` is a Schema or
        ``[(name, type[, nullable]), ...]``."""
        schema = self._schema(name, columns)
        with self.autocommit() as ctx:
            self.ddl.create_relation(ctx, name, schema, storage_method,
                                     attributes, owner)
        return Relation(self, name)

    def drop_table(self, name: str) -> None:
        with self.autocommit() as ctx:
            self.ddl.drop_relation(ctx, name)

    def create_attachment(self, relation: str, type_name: str,
                          instance_name: str,
                          attributes: Optional[Dict[str, object]] = None
                          ) -> dict:
        with self.autocommit() as ctx:
            return self.ddl.create_attachment(ctx, relation, type_name,
                                              instance_name, attributes)

    def drop_attachment(self, instance_name: str) -> None:
        with self.autocommit() as ctx:
            self.ddl.drop_attachment(ctx, instance_name)

    def rebuild_attachment(self, instance_name: str) -> None:
        """Restore a quarantined attachment instance to service (rebuilding
        its structure from the base relation), or rebuild a live one."""
        with self.autocommit() as ctx:
            self.ddl.rebuild_attachment(ctx, instance_name)

    def disable_attachment(self, instance_name: str) -> None:
        """Take an attachment instance out of service (not maintained, not
        planned) without dropping its definition."""
        with self.autocommit() as ctx:
            self.ddl.set_attachment_status(ctx, instance_name, enabled=False)

    def enable_attachment(self, instance_name: str) -> None:
        """Return a disabled instance to service, rebuilding its structure
        from the base relation when the type supports rebuilding."""
        with self.autocommit() as ctx:
            self.ddl.set_attachment_status(ctx, instance_name, enabled=True)

    def create_index(self, name: str, relation: str,
                     columns: Sequence[str], kind: str = "btree_index",
                     **attributes) -> dict:
        """Convenience wrapper: a keyed access-path attachment."""
        attributes = dict(attributes)
        attributes["columns"] = list(columns)
        return self.create_attachment(relation, kind, name, attributes)

    def add_check(self, name: str, relation: str, predicate: str) -> dict:
        return self.create_attachment(relation, "check", name,
                                      {"predicate": predicate})

    def table(self, name: str) -> Relation:
        self.catalog.entry(name)  # fail fast on unknown names
        return Relation(self, name)

    @staticmethod
    def _schema(name: str, columns) -> Schema:
        if isinstance(columns, Schema):
            return columns
        fields = []
        for column in columns:
            if isinstance(column, Field):
                fields.append(column)
            else:
                fields.append(Field(*column))
        return Schema(name, fields)

    # ------------------------------------------------------------------
    # Authorization conveniences
    # ------------------------------------------------------------------
    def grant(self, relation: str, principal: str, privileges) -> None:
        self.authorization.grant(self.principal, relation, principal,
                                 privileges)

    def revoke(self, relation: str, principal: str, privileges) -> None:
        self.authorization.revoke(self.principal, relation, principal,
                                  privileges)

    @contextmanager
    def as_principal(self, principal: str):
        previous = self.principal
        self.principal = principal
        try:
            yield self
        finally:
            self.principal = previous

    # ------------------------------------------------------------------
    # Queries (bound plans, cost-based access selection)
    # ------------------------------------------------------------------
    @property
    def query_engine(self):
        if self._query_engine is None:
            from ..query.engine import QueryEngine
            self._query_engine = QueryEngine(self)
        return self._query_engine

    def execute(self, statement: str, params: Optional[dict] = None):
        """Parse/plan/execute a mini-SQL statement through the plan cache."""
        return self.query_engine.execute(statement, params)

    def explain(self, statement: str) -> dict:
        return self.query_engine.explain(statement)

    # ------------------------------------------------------------------
    # Crash / restart
    # ------------------------------------------------------------------
    def checkpoint(self, mode: str = "fuzzy", truncate: bool = False) -> dict:
        """Take a checkpoint; returns its summary.

        ``mode="fuzzy"`` (the default) snapshots the active-transaction
        and dirty-page tables without flushing a single data page; restart
        redo then starts at ``min(rec_lsn)`` over the snapshot instead of
        at the head of the log.  ``mode="sharp"`` first writes every dirty
        page back, collapsing the redo bound to the checkpoint itself.
        ``truncate=True`` reclaims the log prefix below the checkpoint's
        redo/undo point (LSN addressing stays stable).
        """
        if mode not in ("fuzzy", "sharp"):
            raise ValueError(f"unknown checkpoint mode {mode!r}")
        info = self.services.checkpoint(truncate=truncate,
                                        flush_pages=(mode == "sharp"))
        self.services.stats.bump("db.checkpoints")
        return info

    def commit_group(self) -> int:
        """Stabilize every pending group commit with one log flush."""
        return self.services.transactions.commit_group()

    def close(self) -> None:
        """Orderly shutdown: nothing committed may be lost afterwards.

        Disconnects every admitted session (aborting their open
        transactions), aborts an open database-level transaction, forces
        every enqueued group commit (deferred durability must not outlive
        the process), flushes the log, and writes all dirty pages back.

        Idempotent and safe with sessions still open: a second ``close``
        finds no sessions, no open transactions, and nothing pending, so
        the group-commit force and flushes run exactly once per dirty
        period.  The instance remains usable afterwards (there is no file
        handle to release in this simulation); ``close`` exists so callers
        have a single point that guarantees the no-pending-durability
        invariant.
        """
        for session in list(self._sessions.values()):
            session.close()  # aborts the session's open transaction
        if self._session_txn is not None and self._session_txn.active:
            txn = self._session_txn
            self._session_txn = None
            self.services.transactions.abort(txn)
        # Drain PREPARED limbo: a participant whose coordinator died (or a
        # commit that failed between states) must not hold locks and
        # undecided changes past shutdown.  An orderly close is this
        # database's *heuristic* decision point: aborting a participant
        # that voted may contradict a commit decision the coordinator
        # durably logged but never delivered, so the gtid is remembered
        # (durably, on the ABORT record) and a later decision redelivery
        # reports the mismatch instead of silently resolving nothing.
        for txn in self.services.transactions.active_transactions():
            if txn.state is TxnState.PREPARED:
                if txn.gtid is not None:
                    self.services.transactions.heuristic_abort(txn)
                else:
                    self.services.transactions.abort(txn)
                self.services.stats.bump("txn.indoubt.resolved")
        self.services.transactions.commit_group()
        self.services.wal.flush()
        self.services.buffer.flush_all()
        self.services.stats.bump("db.closes")

    def restart(self) -> dict:
        """Simulate a crash and run restart recovery.

        1. active transactions are forgotten (they become losers);
        2. the buffer pool and unflushed log records are lost;
        3. the common recovery driver performs analysis/redo/undo;
        4. temporary (non-recoverable) relations are reset — they do not
           survive a restart;
        5. access-path attachment structures are rebuilt from their base
           relations (index recovery by rebuild; see DESIGN.md).

        Returns the recovery summary.
        """
        self._session_txn = None
        # Sessions survive a restart (the connection is not the crash
        # domain here) but their in-flight transactions and snapshots do
        # not: undo images are volatile, so every live snapshot is
        # invalidated and will raise SnapshotError on its next read.
        for session in self._sessions.values():
            session._txn = None
        self.services.transactions.invalidate_snapshots()
        lost = self.services.crash()
        # Lock state is volatile: pre-crash transactions hold nothing now.
        self.services.locks.reset()
        self.services.in_restart = True
        try:
            summary = self.services.recovery.restart()
        finally:
            self.services.in_restart = False
        summary["log_records_lost"] = lost
        self.services.transactions._active.clear()
        self.services.transactions._by_gtid.clear()
        # In-doubt participants re-enter the active table in PREPARED
        # state: their stable PREPARE vote binds this database, so they
        # hold their (redone) changes — and re-acquire their record
        # locks — until the coordinator's decision arrives.  Their
        # deferred actions were volatile and died with the crash.
        for txn_id, gtid in summary.get("indoubt", {}).items():
            self.services.events.discard(txn_id)
            self.services.transactions.register_indoubt(txn_id, gtid)
        # Heuristic-abort markers survive as marked ABORT records; rebuild
        # the in-memory map so decision redelivery still detects mismatches
        # after a restart.
        self.services.transactions.heuristic_aborts.update(
            summary.get("heuristic_aborts", {}))

        for entry in self.catalog.relations():
            handle = entry.handle
            method = self.registry.storage_method(
                handle.descriptor.storage_method_id)
            if not method.recoverable:
                reset = getattr(method, "reset_instance", None)
                if reset is not None:
                    reset(handle.descriptor.storage_descriptor)

        rebuilt = 0
        with self.autocommit() as ctx:
            for entry in self.catalog.relations():
                handle = entry.handle
                for type_id, field in handle.descriptor.present_attachments():
                    attachment = self.registry.attachment_type(type_id)
                    rebuild = getattr(attachment, "rebuild", None)
                    if rebuild is not None:
                        rebuild(ctx, handle, field)
                        rebuilt += 1
        summary["attachment_types_rebuilt"] = rebuilt
        # Coordinator-side resolution: decisions this database logged and
        # committed are re-delivered to participants still in doubt.
        summary["indoubt_resolved"] = self.resolve_indoubt()
        return summary

    def resolve_indoubt(self) -> int:
        """Re-deliver surviving commit decisions to in-doubt participants.

        Walks the retained log for decision records (logical UPDATEs with
        ``op == "decision"``) written by transactions whose COMMIT is
        stable, and hands each to the owning storage method's
        ``resolve_decision`` hook — which commits the still-prepared
        participants it can reach.  Decisions of loser transactions need
        no delivery: restart undo already presumed abort for them.

        Idempotent, and also callable on demand — e.g. after a crashed
        shard comes back up, the coordinator re-resolves so the shard's
        re-registered in-doubt transactions settle.  Returns how many
        participants were resolved.
        """
        wal = self.services.wal
        committed = set()
        decisions = []
        for record in wal.forward():
            if record.kind == wal_records.COMMIT:
                committed.add(record.txn_id)
            elif (record.kind == wal_records.UPDATE
                    and record.payload.get("op") == "decision"):
                decisions.append(record)
        resolved = 0
        for record in decisions:
            if record.txn_id not in committed:
                continue
            try:
                entry = self.catalog.entry_by_id(
                    record.payload["relation_id"])
            except Exception:
                continue  # relation dropped since; nothing to deliver to
            method = self.registry.storage_method(
                entry.handle.descriptor.storage_method_id)
            hook = getattr(method, "resolve_decision", None)
            if hook is not None:
                resolved += hook(self, entry.handle, record.payload)
        if resolved:
            self.services.stats.bump("txn.indoubt.resolved", resolved)
        return resolved

    def __repr__(self) -> str:
        return (f"Database({len(self.catalog.relation_names())} relations, "
                f"{self.registry!r})")
