"""Bound-plan dependency tracking and invalidation.

The paper: "A uniform mechanism for recording the dependencies of
execution plans on the relations they use allows the system to invalidate
any plans which depend upon relations or access paths that have been
deleted from the system.  Invalidated execution plans are automatically
re-translated, by the common system, the next time the query is invoked."

Dependency tokens are opaque strings; the DDL layer publishes
``relation:<name>`` and ``attachment:<instance>`` tokens, plans register
against the tokens of every object their translation used, and a drop (or
schema change) invalidates the dependents.  The plan cache then re-plans
lazily on next execution.
"""

from __future__ import annotations

from typing import Dict, Set

__all__ = ["DependencyTracker", "relation_token", "attachment_token"]


def relation_token(name: str) -> str:
    return f"relation:{name.lower()}"


def attachment_token(instance_name: str) -> str:
    return f"attachment:{instance_name.lower()}"


class DependencyTracker:
    """token -> dependents; dependents carry an ``invalidate()`` callback."""

    def __init__(self):
        self._dependents: Dict[str, Set] = {}
        self._registered: Dict[int, Set[str]] = {}  # id(dependent) -> tokens
        self.invalidations = 0

    def register(self, dependent, tokens) -> None:
        """Record that ``dependent`` (anything with ``invalidate()``) relies
        on every token in ``tokens``.

        Re-registering replaces the previous token set (a re-translated
        plan must not stay subscribed to objects it no longer uses).
        """
        if id(dependent) in self._registered:
            self.unregister(dependent)
        token_set = set(tokens)
        self._registered[id(dependent)] = token_set
        for token in token_set:
            self._dependents.setdefault(token, set()).add(dependent)

    def unregister(self, dependent) -> None:
        tokens = self._registered.pop(id(dependent), set())
        for token in tokens:
            group = self._dependents.get(token)
            if group:
                group.discard(dependent)
                if not group:
                    del self._dependents[token]

    def invalidate(self, token: str) -> int:
        """Invalidate every dependent of ``token``; returns how many."""
        dependents = self._dependents.pop(token, set())
        for dependent in list(dependents):
            dependent.invalidate()
            self.unregister(dependent)
        self.invalidations += len(dependents)
        return len(dependents)

    def dependents_of(self, token: str) -> int:
        return len(self._dependents.get(token, ()))

    def __repr__(self) -> str:
        return f"DependencyTracker({len(self._dependents)} tracked tokens)"
