"""User-level relation facade.

Applications manipulate relations through :class:`Relation`, which routes
every operation through the uniform authorization facility and the
dispatch layer's direct generic operations.  The facade adds the
conveniences a library user expects (field names instead of indexes,
predicate strings, autocommit) without bypassing any architecture layer.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from ..errors import StorageError
from ..services.predicate import Predicate
from .authorization import DELETE, INSERT, SELECT, UPDATE
from .dispatch import AccessPath

__all__ = ["Relation"]


class Relation:
    """A bound, authorized view of one relation for the current principal."""

    def __init__(self, database, name: str):
        self.database = database
        self.name = name.lower()

    @property
    def handle(self):
        return self.database.catalog.handle(self.name)

    @property
    def schema(self):
        return self.handle.schema

    # ------------------------------------------------------------------
    # Modification
    # ------------------------------------------------------------------
    def insert(self, record: Sequence):
        """Insert one record (values in schema order); returns its key."""
        db = self.database
        db.authorization.check(db.principal, self.name, INSERT)
        with db.autocommit() as ctx:
            return db.data.insert(ctx, self.handle, tuple(record))

    def insert_many(self, records: Sequence[Sequence]) -> List:
        """Insert several records as one set-at-a-time operation (one
        transaction, one operation savepoint); returns their keys."""
        db = self.database
        db.authorization.check(db.principal, self.name, INSERT)
        with db.autocommit() as ctx:
            return db.data.insert_batch(ctx, self.handle,
                                        [tuple(r) for r in records])

    def update(self, key, changes: Dict[str, object]):
        """Update named fields of the record at ``key``; returns its
        (possibly new) key."""
        db = self.database
        db.authorization.check(db.principal, self.name, UPDATE)
        handle = self.handle
        updates = handle.schema.check_partial(changes)
        with db.autocommit() as ctx:
            old = db.data.fetch(ctx, handle, key)
            if old is None:
                raise StorageError(
                    f"relation {self.name!r} has no record with key {key!r}")
            new_record = handle.schema.apply_update(old, updates)
            return db.data.update(ctx, handle, key, new_record)

    def update_many(self, items: Sequence) -> List:
        """Replace several records as one set-at-a-time operation.

        ``items`` holds ``(key, new_record)`` pairs with full records in
        schema order; returns the (possibly changed) keys in order.
        """
        db = self.database
        db.authorization.check(db.principal, self.name, UPDATE)
        with db.autocommit() as ctx:
            return db.data.update_batch(
                ctx, self.handle,
                [(key, tuple(record)) for key, record in items])

    def delete(self, key) -> None:
        db = self.database
        db.authorization.check(db.principal, self.name, DELETE)
        with db.autocommit() as ctx:
            db.data.delete(ctx, self.handle, key)

    def delete_many(self, keys: Sequence) -> None:
        """Delete the records at ``keys`` as one set-at-a-time operation."""
        db = self.database
        db.authorization.check(db.principal, self.name, DELETE)
        with db.autocommit() as ctx:
            db.data.delete_batch(ctx, self.handle, list(keys))

    def delete_where(self, where: str, params: Optional[dict] = None) -> int:
        """Delete all records matching a predicate; returns how many.

        Authorization is checked before anything is read, and the victim
        scan and the deletes run in the *same* transaction, so no other
        transaction can slip between finding a record and deleting it.
        """
        db = self.database
        db.authorization.check(db.principal, self.name, DELETE)
        handle = self.handle
        predicate = self._predicate(where, params)
        with db.autocommit() as ctx:
            victims = [key for key, __
                       in self._scan_in(ctx, handle, predicate)]
            db.data.delete_batch(ctx, handle, victims)
        return len(victims)

    def update_where(self, where: str, changes: Dict[str, object],
                     params: Optional[dict] = None) -> int:
        """Update named fields of every record matching a predicate, as
        one set-at-a-time operation; returns how many were updated."""
        db = self.database
        db.authorization.check(db.principal, self.name, UPDATE)
        handle = self.handle
        updates = handle.schema.check_partial(changes)
        predicate = self._predicate(where, params)
        with db.autocommit() as ctx:
            items = [(key, handle.schema.apply_update(record, updates))
                     for key, record in self._scan_in(ctx, handle, predicate)]
            db.data.update_batch(ctx, handle, items)
        return len(items)

    # ------------------------------------------------------------------
    # Access
    # ------------------------------------------------------------------
    def fetch(self, key, fields: Optional[Sequence[str]] = None,
              access_path: Optional[AccessPath] = None,
              with_report: bool = False):
        """Direct-by-key access; returns the record tuple (or selected
        fields), or None.

        With ``with_report=True`` returns ``(record, report)`` where
        ``report`` is the storage method's structured read outcome (which
        shards were skipped or served stale, and the staleness bound) —
        or None for methods that always read complete and current data.
        """
        db = self.database
        db.authorization.check(db.principal, self.name, SELECT)
        handle = self.handle
        indexes = handle.schema.indexes_of(fields) if fields else None
        with db.autocommit() as ctx:
            record = db.data.fetch(ctx, handle, key, indexes,
                                   access_path=access_path)
            if with_report:
                return record, ctx.read_report
            return record

    def scan(self, where=None, fields: Optional[Sequence[str]] = None,
             params: Optional[dict] = None, with_report: bool = False):
        """Key-sequential access; returns ``[(key, values), ...]``.

        ``where`` may be a predicate string (parsed and evaluated by the
        common predicate service, inside the storage method, while records
        are still in the buffer pool) or a pre-built
        :class:`~repro.services.predicate.Predicate`.

        With ``with_report=True`` returns ``(rows, report)`` where
        ``report`` is the storage method's structured read outcome (which
        shards were skipped or served stale, and the staleness bound) —
        or None for methods that always read complete and current data.
        """
        db = self.database
        db.authorization.check(db.principal, self.name, SELECT)
        handle = self.handle
        predicate = self._predicate(where, params)
        indexes = handle.schema.indexes_of(fields) if fields else None
        out: List[Tuple] = []
        report = None
        with db.autocommit() as ctx:
            scan = db.data.open_scan(ctx, handle, indexes, predicate)
            report = ctx.read_report
            try:
                while True:
                    batch = scan.next_batch(256)
                    if not batch:
                        break
                    out.extend(batch)
            finally:
                scan.close()
                db.services.scans.unregister(scan)
        if with_report:
            return out, report
        return out

    def rows(self, where=None, fields: Optional[Sequence[str]] = None,
             params: Optional[dict] = None) -> List[Tuple]:
        """Like :meth:`scan` but returns just the value tuples."""
        return [values for __, values in self.scan(where, fields, params)]

    def count(self, where=None, params: Optional[dict] = None) -> int:
        if where is None:
            db = self.database
            db.authorization.check(db.principal, self.name, SELECT)
            method = db.registry.storage_method(
                self.handle.descriptor.storage_method_id)
            with db.autocommit() as ctx:
                return method.record_count(ctx, self.handle)
        return len(self.scan(where=where, params=params))

    # ------------------------------------------------------------------
    # Helpers
    # ------------------------------------------------------------------
    def _scan_in(self, ctx, handle, predicate) -> List[Tuple]:
        """Collect ``(key, record)`` pairs inside an existing transaction."""
        db = self.database
        out: List[Tuple] = []
        scan = db.data.open_scan(ctx, handle, None, predicate)
        try:
            while True:
                batch = scan.next_batch(256)
                if not batch:
                    break
                out.extend(batch)
        finally:
            scan.close()
            db.services.scans.unregister(scan)
        return out

    def _predicate(self, where, params) -> Optional[Predicate]:
        if where is None:
            return None
        if isinstance(where, Predicate):
            return where.with_params(params) if params else where
        return Predicate.parse(where, self.schema, params)

    def __repr__(self) -> str:
        return f"Relation({self.name!r})"
