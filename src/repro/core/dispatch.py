"""Direct generic operations and the attached-procedure driver.

This module is the heart of the architecture — the paper's two-step
execution of relation modification operations:

  "The first step, using the storage method identifier from the relation
  descriptor, calls the appropriate storage method modification routine
  via the storage method operation vectors.  After completing the storage
  method operation, the extensions attached to the relation are invoked
  via the attached procedures vectors.  Again, the relation descriptor is
  consulted to determine which attachment types have instances on the
  relation and must, therefore, be notified of the relation modification
  ...  The storage method operation or the procedurally-attached
  extensions can abort the entire relation modification operation.
  Common system facilities will be used to undo the effects of completed
  storage method and attachment modifications if the relation
  modification operation is aborted."

Undo of a vetoed modification is driven through an *operation savepoint*
established before the storage-method call; a veto (or any error) raised
by the storage method or any attached procedure triggers a log-driven
partial rollback to it, after which the error propagates to the caller.

Data access operations take an access path selector: "Access path
extensions are selected using their attachment identifier plus an instance
number ...  Access path zero is interpreted as an access to the storage
method."
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

from ..errors import ReadOnlyError, StorageError, UnknownObjectError
from ..services.locks import LockMode
from ..services.predicate import Predicate
from .context import ExecutionContext
from .registry import ExtensionRegistry
from .storage_method import RelationHandle

__all__ = ["DataManager", "AccessPath", "STORAGE_ACCESS"]

#: The reserved access-path selector meaning "access via the storage method".
STORAGE_ACCESS = 0


class AccessPath:
    """An access-path selector: attachment type id + instance name.

    ``AccessPath(0)`` (or the module constant ``STORAGE_ACCESS``) selects
    the relation's storage method itself.
    """

    __slots__ = ("type_id", "instance_name")

    def __init__(self, type_id: int = STORAGE_ACCESS,
                 instance_name: Optional[str] = None):
        self.type_id = type_id
        self.instance_name = instance_name

    @property
    def is_storage(self) -> bool:
        return self.type_id == STORAGE_ACCESS

    def __repr__(self) -> str:
        if self.is_storage:
            return "AccessPath(storage)"
        return f"AccessPath(type={self.type_id}, instance={self.instance_name!r})"


class DataManager:
    """Executes the direct generic operations through the procedure vectors."""

    def __init__(self, registry: ExtensionRegistry, services):
        self.registry = registry
        self.services = services
        self._op_counter = 0

    # ------------------------------------------------------------------
    # Relation modification operations (two-step execution)
    # ------------------------------------------------------------------
    def insert(self, ctx: ExecutionContext, handle: RelationHandle,
               record: Tuple):
        """Insert a record; returns its record key."""
        record = handle.schema.check_record(record)
        method = self._modifiable_method(handle)
        ctx.lock_relation(handle.relation_id, LockMode.IX)
        with self._operation(ctx):
            ctx.stats.bump("dispatch.inserts")
            key = self.registry.storage_insert[method.method_id](
                ctx, handle, record)
            for type_id, field in handle.descriptor.present_attachments():
                ctx.stats.bump("dispatch.attached_calls")
                self.registry.attached_insert[type_id](
                    ctx, handle, field, key, record)
        return key

    def update(self, ctx: ExecutionContext, handle: RelationHandle, key,
               new_record: Tuple):
        """Replace the record at ``key``; returns the (possibly new) key.

        The old record value is fetched first — it is "available to the
        extension routines on updates and deletes".
        """
        new_record = handle.schema.check_record(new_record)
        method = self._modifiable_method(handle)
        ctx.lock_relation(handle.relation_id, LockMode.IX)
        old_record = self._require_record(ctx, handle, key)
        with self._operation(ctx):
            ctx.stats.bump("dispatch.updates")
            new_key = self.registry.storage_update[method.method_id](
                ctx, handle, key, old_record, new_record)
            for type_id, field in handle.descriptor.present_attachments():
                ctx.stats.bump("dispatch.attached_calls")
                self.registry.attached_update[type_id](
                    ctx, handle, field, key, new_key, old_record, new_record)
        return new_key

    def delete(self, ctx: ExecutionContext, handle: RelationHandle, key) -> None:
        """Delete the record at ``key``."""
        method = self._modifiable_method(handle)
        ctx.lock_relation(handle.relation_id, LockMode.IX)
        old_record = self._require_record(ctx, handle, key)
        with self._operation(ctx):
            ctx.stats.bump("dispatch.deletes")
            self.registry.storage_delete[method.method_id](
                ctx, handle, key, old_record)
            for type_id, field in handle.descriptor.present_attachments():
                ctx.stats.bump("dispatch.attached_calls")
                self.registry.attached_delete[type_id](
                    ctx, handle, field, key, old_record)

    # ------------------------------------------------------------------
    # Data access operations
    # ------------------------------------------------------------------
    def fetch(self, ctx: ExecutionContext, handle: RelationHandle, key,
              fields: Optional[Sequence[int]] = None,
              predicate: Optional[Predicate] = None,
              access_path: Optional[AccessPath] = None):
        """Direct-by-key access.

        With the default access path (zero) ``key`` is a storage-method
        record key and the matching record's fields are returned.  With an
        access-path selector, ``key`` is an access-path input key and the
        *record keys* it maps to are returned — "normally, access paths
        will return record keys that can then be used to access the stored
        record directly via its storage method implementation".
        """
        ctx.lock_relation(handle.relation_id, LockMode.IS)
        if access_path is None or access_path.is_storage:
            method = self.registry.storage_method(
                handle.descriptor.storage_method_id)
            return self.registry.storage_fetch[method.method_id](
                ctx, handle, key, fields, predicate)
        attachment = self.registry.attachment_type(access_path.type_id)
        field = self._attachment_field(handle, access_path)
        instance = attachment.instance(field, access_path.instance_name)
        return attachment.fetch(ctx, handle, instance, key)

    def open_scan(self, ctx: ExecutionContext, handle: RelationHandle,
                  fields: Optional[Sequence[int]] = None,
                  predicate: Optional[Predicate] = None,
                  access_path: Optional[AccessPath] = None,
                  route=None):
        """Key-sequential access via the storage method or an access path."""
        ctx.lock_relation(handle.relation_id, LockMode.IS)
        if access_path is None or access_path.is_storage:
            method = self.registry.storage_method(
                handle.descriptor.storage_method_id)
            return self.registry.storage_open_scan[method.method_id](
                ctx, handle, fields, predicate)
        attachment = self.registry.attachment_type(access_path.type_id)
        field = self._attachment_field(handle, access_path)
        instance = attachment.instance(field, access_path.instance_name)
        return attachment.open_scan(ctx, handle, instance, predicate,
                                    route=route)

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _modifiable_method(self, handle: RelationHandle):
        method = self.registry.storage_method(
            handle.descriptor.storage_method_id)
        if not method.updatable:
            raise ReadOnlyError(
                f"relation {handle.name!r} uses read-only storage method "
                f"{method.name!r}")
        return method

    def _require_record(self, ctx, handle, key) -> Tuple:
        method = self.registry.storage_method(
            handle.descriptor.storage_method_id)
        old = self.registry.storage_fetch[method.method_id](
            ctx, handle, key, None, None)
        if old is None:
            raise StorageError(
                f"relation {handle.name!r} has no record with key {key!r}")
        return old

    def _attachment_field(self, handle: RelationHandle,
                          access_path: AccessPath) -> dict:
        field = handle.descriptor.attachment_field(access_path.type_id)
        if field is None:
            raise UnknownObjectError(
                f"relation {handle.name!r} has no attachments of type id "
                f"{access_path.type_id}")
        return field

    def _operation(self, ctx: ExecutionContext):
        """Context manager: operation savepoint + rollback-on-error.

        Every relation modification runs inside an internal savepoint so a
        veto by the k-th attachment undoes the storage-method change and
        the k−1 attached procedures that already ran (including any
        cascaded modifications they performed on other relations).
        """
        return _OperationScope(self, ctx)


class _OperationScope:
    __slots__ = ("manager", "ctx", "name")

    def __init__(self, manager: DataManager, ctx: ExecutionContext):
        self.manager = manager
        self.ctx = ctx
        manager._op_counter += 1
        self.name = f"__op_{manager._op_counter}"

    def __enter__(self):
        txns = self.manager.services.transactions
        txns.savepoint(self.ctx.txn, self.name)
        return self

    def __exit__(self, exc_type, exc, tb):
        txns = self.manager.services.transactions
        if exc_type is None:
            txns.release_savepoint(self.ctx.txn, self.name)
            return False
        # Undo the partial effects of the failed modification, then let the
        # veto / error propagate to the caller.
        txns.rollback_to(self.ctx.txn, self.name)
        txns.release_savepoint(self.ctx.txn, self.name)
        self.ctx.stats.bump("dispatch.vetoed_operations")
        return False
