"""Direct generic operations and the attached-procedure driver.

This module is the heart of the architecture — the paper's two-step
execution of relation modification operations:

  "The first step, using the storage method identifier from the relation
  descriptor, calls the appropriate storage method modification routine
  via the storage method operation vectors.  After completing the storage
  method operation, the extensions attached to the relation are invoked
  via the attached procedures vectors.  Again, the relation descriptor is
  consulted to determine which attachment types have instances on the
  relation and must, therefore, be notified of the relation modification
  ...  The storage method operation or the procedurally-attached
  extensions can abort the entire relation modification operation.
  Common system facilities will be used to undo the effects of completed
  storage method and attachment modifications if the relation
  modification operation is aborted."

Undo of a vetoed modification is driven through an *operation savepoint*
established before the storage-method call; a veto (or any error) raised
by the storage method or any attached procedure triggers a log-driven
partial rollback to it, after which the error propagates to the caller.

Data access operations take an access path selector: "Access path
extensions are selected using their attachment identifier plus an instance
number ...  Access path zero is interpreted as an access to the storage
method."
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

from ..errors import (ExtensionFault, ReadOnlyError,
                      ReadOnlyTransactionError, ReproError, StorageError,
                      UnknownObjectError)
from ..services.locks import LockMode
from ..services.predicate import Predicate
from ..services.scans import ABSENT, SnapshotScan
from .context import ExecutionContext
from .registry import ExtensionRegistry
from .storage_method import RelationHandle

__all__ = ["DataManager", "AccessPath", "STORAGE_ACCESS"]

#: The reserved access-path selector meaning "access via the storage method".
STORAGE_ACCESS = 0

#: Batches at least this large take one relation-level X lock instead of
#: record-at-a-time locks (classic lock escalation for bulk operations).
LOCK_ESCALATION_THRESHOLD = 64


class AccessPath:
    """An access-path selector: attachment type id + instance name.

    ``AccessPath(0)`` (or the module constant ``STORAGE_ACCESS``) selects
    the relation's storage method itself.
    """

    __slots__ = ("type_id", "instance_name")

    def __init__(self, type_id: int = STORAGE_ACCESS,
                 instance_name: Optional[str] = None):
        self.type_id = type_id
        self.instance_name = instance_name

    @property
    def is_storage(self) -> bool:
        return self.type_id == STORAGE_ACCESS

    def __repr__(self) -> str:
        if self.is_storage:
            return "AccessPath(storage)"
        return f"AccessPath(type={self.type_id}, instance={self.instance_name!r})"


class DataManager:
    """Executes the direct generic operations through the procedure vectors."""

    #: ExtensionFaults from one access-path attachment type on one relation
    #: before its instances are quarantined (taken offline).
    QUARANTINE_THRESHOLD = 3

    def __init__(self, registry: ExtensionRegistry, services):
        self.registry = registry
        self.services = services
        #: (relation_id, type_id) -> ExtensionFault count since the last
        #: quarantine/forgive.  Constraint and trigger types accumulate
        #: counts too but are never quarantined — they fail closed.
        self._offenses = {}

    # ------------------------------------------------------------------
    # Fault barrier
    # ------------------------------------------------------------------
    # Every procedure-vector call runs behind a barrier: a ReproError
    # (veto, integrity violation, storage error) passes through annotated
    # with where it fired; any *other* exception — a bug in a third-party
    # extension — is converted to ExtensionFault so the shared transaction
    # machinery sees a known failure class and the operation savepoint can
    # roll the modification back.  Repeat-offender access-path attachments
    # are quarantined (their loss costs performance, not correctness — the
    # base relation still answers every query); constraint and trigger
    # attachments fail closed, because silently skipping enforcement would
    # corrupt data integrity.

    def _fire_point(self, point: str) -> None:
        faults = getattr(self.services, "faults", None)
        if faults is not None and faults.armed:
            faults.fire(point)

    def _storage_call(self, ctx: ExecutionContext, handle: RelationHandle,
                      op: str, proc, *args, **kwargs):
        try:
            self._fire_point(f"dispatch.storage.{op}")
            return proc(*args, **kwargs)
        except ReproError as exc:
            annotate = getattr(exc, "annotate", None)
            if annotate is not None:
                annotate(relation=handle.name, operation=op)
            raise
        except Exception as exc:
            ctx.stats.bump("containment.extension_faults")
            raise ExtensionFault(
                f"storage method raised {type(exc).__name__} during "
                f"{op!r} on relation {handle.name!r}: {exc}",
                relation=handle.name, operation=op) from exc

    def _attached_call(self, ctx: ExecutionContext, handle: RelationHandle,
                       type_id: int, field: dict, op: str, proc,
                       *args, **kwargs):
        attachment = self.registry.attachment_type(type_id)
        try:
            self._fire_point(f"dispatch.attached.{attachment.name}.{op}")
            return proc(*args, **kwargs)
        except ReproError as exc:
            annotate = getattr(exc, "annotate", None)
            if annotate is not None:
                annotate(relation=handle.name, operation=op,
                         attachment_id=attachment.name)
            raise
        except Exception as exc:
            ctx.stats.bump("containment.extension_faults")
            fault = ExtensionFault(
                f"attachment type {attachment.name!r} raised "
                f"{type(exc).__name__} during {op!r} on relation "
                f"{handle.name!r}: {exc}",
                relation=handle.name, operation=op,
                attachment_id=attachment.name,
                batch_index=getattr(exc, "batch_index", None))
            self._record_offense(ctx, handle, attachment, field)
            raise fault from exc

    def _record_offense(self, ctx, handle, attachment, field) -> None:
        key = (handle.relation_id, attachment.type_id)
        count = self._offenses.get(key, 0) + 1
        self._offenses[key] = count
        if not attachment.is_access_path:
            # Fail closed: a faulty constraint or trigger keeps vetoing
            # every modification rather than being taken out of service.
            ctx.stats.bump("containment.fail_closed")
            return
        if count >= self.QUARANTINE_THRESHOLD:
            self._quarantine(ctx, handle, attachment, field)
            self._offenses.pop(key, None)

    def _quarantine(self, ctx, handle, attachment, field) -> None:
        """Take every instance of one access-path type offline.

        Quarantined instances are moved out of the active set, so they are
        neither maintained by modification fan-out nor enumerated by the
        planner's cost pass; ``rebuild_attachment`` brings one back after
        rebuilding its structure from the base relation.
        """
        names = sorted(field.get("instances", {}))
        if not names:
            return
        quarantined = field.setdefault("quarantined", {})
        quarantined.update(field["instances"])
        field["instances"].clear()
        handle.descriptor.version += 1
        database = getattr(self.services, "database", None)
        if database is not None:
            from .dependency import attachment_token, relation_token
            database.dependencies.invalidate(relation_token(handle.name))
            for name in names:
                database.dependencies.invalidate(attachment_token(name))
        ctx.stats.bump("containment.quarantine.count")
        ctx.stats.bump("containment.quarantine.instances", len(names))

    def forgive(self, relation_id: int, type_id: int) -> None:
        """Reset the offense count (after a successful rebuild)."""
        self._offenses.pop((relation_id, type_id), None)

    def offenses(self, relation_id: int, type_id: int) -> int:
        return self._offenses.get((relation_id, type_id), 0)

    @staticmethod
    def _active_attachments(handle: RelationHandle):
        """Attachment fields with at least one in-service instance.

        Quarantined or disabled instances are excluded from modification
        fan-out — every hook services ``field["instances"]`` only, so a
        field with none of them in service would be a guaranteed no-op
        call.
        """
        for type_id, field in handle.descriptor.present_attachments():
            if field.get("instances"):
                yield type_id, field

    # ------------------------------------------------------------------
    # Relation modification operations (two-step execution)
    # ------------------------------------------------------------------
    def insert(self, ctx: ExecutionContext, handle: RelationHandle,
               record: Tuple):
        """Insert a record; returns its record key."""
        record = handle.schema.check_record(record)
        method = self._modifiable_method(handle)
        self._check_writable(ctx, handle, "insert")
        ctx.lock_relation(handle.relation_id, LockMode.IX)
        with self._operation(ctx):
            ctx.stats.bump("dispatch.inserts")
            key = self._storage_call(
                ctx, handle, "insert",
                self.registry.storage_insert[method.method_id],
                ctx, handle, record)
            for type_id, field in self._active_attachments(handle):
                ctx.stats.bump("dispatch.attached_calls")
                self._attached_call(
                    ctx, handle, type_id, field, "insert",
                    self.registry.attached_insert[type_id],
                    ctx, handle, field, key, record)
        self._note_versions(ctx, handle, [(key, ABSENT)])
        return key

    def update(self, ctx: ExecutionContext, handle: RelationHandle, key,
               new_record: Tuple):
        """Replace the record at ``key``; returns the (possibly new) key.

        The old record value is fetched first — it is "available to the
        extension routines on updates and deletes".
        """
        new_record = handle.schema.check_record(new_record)
        method = self._modifiable_method(handle)
        self._check_writable(ctx, handle, "update")
        ctx.lock_relation(handle.relation_id, LockMode.IX)
        old_record = self._require_record(ctx, handle, key)
        with self._operation(ctx):
            ctx.stats.bump("dispatch.updates")
            new_key = self._storage_call(
                ctx, handle, "update",
                self.registry.storage_update[method.method_id],
                ctx, handle, key, old_record, new_record)
            for type_id, field in self._active_attachments(handle):
                ctx.stats.bump("dispatch.attached_calls")
                self._attached_call(
                    ctx, handle, type_id, field, "update",
                    self.registry.attached_update[type_id],
                    ctx, handle, field, key, new_key, old_record, new_record)
        transitions = [(key, old_record)]
        if new_key != key:  # relocated: the new key did not exist before
            transitions.append((new_key, ABSENT))
        self._note_versions(ctx, handle, transitions)
        return new_key

    def delete(self, ctx: ExecutionContext, handle: RelationHandle, key) -> None:
        """Delete the record at ``key``."""
        method = self._modifiable_method(handle)
        self._check_writable(ctx, handle, "delete")
        ctx.lock_relation(handle.relation_id, LockMode.IX)
        old_record = self._require_record(ctx, handle, key)
        with self._operation(ctx):
            ctx.stats.bump("dispatch.deletes")
            self._storage_call(
                ctx, handle, "delete",
                self.registry.storage_delete[method.method_id],
                ctx, handle, key, old_record)
            for type_id, field in self._active_attachments(handle):
                ctx.stats.bump("dispatch.attached_calls")
                self._attached_call(
                    ctx, handle, type_id, field, "delete",
                    self.registry.attached_delete[type_id],
                    ctx, handle, field, key, old_record)
        self._note_versions(ctx, handle, [(key, old_record)])

    # ------------------------------------------------------------------
    # Set-at-a-time relation modification operations
    # ------------------------------------------------------------------
    # The batch operations run the same two-step protocol as the
    # per-record ones, but once per *set*: one operation savepoint, one
    # relation lock, one storage-method call, and one attached-procedure
    # call per attachment type for the whole batch.  A veto anywhere —
    # by the storage method on the j-th record or by the k-th attachment
    # type — rolls the entire batch back to the operation savepoint, so a
    # batch is atomic as one relation modification operation.
    #
    # Batches of at least LOCK_ESCALATION_THRESHOLD records escalate to a
    # relation-level X lock, after which record-at-a-time locking inside
    # the storage method and attachments is subsumed and skipped.

    def insert_batch(self, ctx: ExecutionContext, handle: RelationHandle,
                     records: Sequence[Tuple]) -> list:
        """Insert a set of records; returns their record keys in order."""
        records = [handle.schema.check_record(r) for r in records]
        if not records:
            return []
        method = self._modifiable_method(handle)
        self._check_writable(ctx, handle, "insert_batch")
        self._lock_for_batch(ctx, handle, len(records))
        with self._operation(ctx):
            ctx.stats.bump("dispatch.inserts", len(records))
            keys = self._storage_call(
                ctx, handle, "insert_batch",
                self.registry.storage_insert_batch[method.method_id],
                ctx, handle, records)
            for type_id, field in self._active_attachments(handle):
                ctx.stats.bump("dispatch.attached_calls", len(records))
                self._attached_call(
                    ctx, handle, type_id, field, "insert_batch",
                    self.registry.attached_insert_batch[type_id],
                    ctx, handle, field, keys, records)
        self._note_versions(ctx, handle, [(k, ABSENT) for k in keys])
        return list(keys)

    def update_batch(self, ctx: ExecutionContext, handle: RelationHandle,
                     items: Sequence[Tuple]) -> list:
        """Replace a set of records; ``items`` holds ``(key, new_record)``
        pairs.  Returns the (possibly changed) keys in order.

        All old record values are fetched before the operation savepoint —
        they are "available to the extension routines on updates and
        deletes" — so extensions see consistent pre-images even if an
        earlier record in the batch moves a later one's neighbours.
        """
        if not items:
            return []
        method = self._modifiable_method(handle)
        self._check_writable(ctx, handle, "update_batch")
        self._lock_for_batch(ctx, handle, len(items))
        triples = [(key, self._require_record(ctx, handle, key),
                    handle.schema.check_record(new))
                   for key, new in items]
        with self._operation(ctx):
            ctx.stats.bump("dispatch.updates", len(triples))
            new_keys = self._storage_call(
                ctx, handle, "update_batch",
                self.registry.storage_update_batch[method.method_id],
                ctx, handle, triples)
            quads = [(key, new_key, old, new)
                     for (key, old, new), new_key in zip(triples, new_keys)]
            for type_id, field in self._active_attachments(handle):
                ctx.stats.bump("dispatch.attached_calls", len(quads))
                self._attached_call(
                    ctx, handle, type_id, field, "update_batch",
                    self.registry.attached_update_batch[type_id],
                    ctx, handle, field, quads)
        transitions = []
        for key, new_key, old, __ in quads:
            transitions.append((key, old))
            if new_key != key:
                transitions.append((new_key, ABSENT))
        self._note_versions(ctx, handle, transitions)
        return list(new_keys)

    def delete_batch(self, ctx: ExecutionContext, handle: RelationHandle,
                     keys: Sequence) -> None:
        """Delete the records at ``keys`` as one operation."""
        if not keys:
            return
        method = self._modifiable_method(handle)
        self._check_writable(ctx, handle, "delete_batch")
        self._lock_for_batch(ctx, handle, len(keys))
        pairs = [(key, self._require_record(ctx, handle, key))
                 for key in keys]
        with self._operation(ctx):
            ctx.stats.bump("dispatch.deletes", len(pairs))
            self._storage_call(
                ctx, handle, "delete_batch",
                self.registry.storage_delete_batch[method.method_id],
                ctx, handle, pairs)
            for type_id, field in self._active_attachments(handle):
                ctx.stats.bump("dispatch.attached_calls", len(pairs))
                self._attached_call(
                    ctx, handle, type_id, field, "delete_batch",
                    self.registry.attached_delete_batch[type_id],
                    ctx, handle, field, pairs)
        self._note_versions(ctx, handle, pairs)

    # ------------------------------------------------------------------
    # Data access operations
    # ------------------------------------------------------------------
    def fetch(self, ctx: ExecutionContext, handle: RelationHandle, key,
              fields: Optional[Sequence[int]] = None,
              predicate: Optional[Predicate] = None,
              access_path: Optional[AccessPath] = None):
        """Direct-by-key access.

        With the default access path (zero) ``key`` is a storage-method
        record key and the matching record's fields are returned.  With an
        access-path selector, ``key`` is an access-path input key and the
        *record keys* it maps to are returned — "normally, access paths
        will return record keys that can then be used to access the stored
        record directly via its storage method implementation".
        """
        ctx.lock_relation(handle.relation_id, LockMode.IS)
        if access_path is None or access_path.is_storage:
            method = self.registry.storage_method(
                handle.descriptor.storage_method_id)
            snapshot = self._snapshot_of(ctx)
            if snapshot is not None:
                return self._snapshot_fetch(ctx, handle, method, key,
                                            fields, predicate, snapshot)
            return self._storage_call(
                ctx, handle, "fetch",
                self.registry.storage_fetch[method.method_id],
                ctx, handle, key, fields, predicate)
        attachment = self.registry.attachment_type(access_path.type_id)
        field = self._attachment_field(handle, access_path)
        instance = attachment.instance(field, access_path.instance_name)
        return self._attached_call(
            ctx, handle, access_path.type_id, field, "fetch",
            attachment.fetch, ctx, handle, instance, key)

    def fetch_many(self, ctx: ExecutionContext, handle: RelationHandle,
                   keys: Sequence,
                   fields: Optional[Sequence[int]] = None,
                   predicate: Optional[Predicate] = None,
                   access_path: Optional[AccessPath] = None) -> list:
        """Direct-by-key access for a set of keys in one operation.

        With the default access path (zero) the storage method resolves
        the whole key set at once — typically one page pin per distinct
        page — and returns ``(key, fields)`` pairs in input-key order,
        omitting keys with no (qualifying) record.  With an access-path
        selector each input key is probed and the pairs map input keys to
        the record keys they yielded.
        """
        ctx.lock_relation(handle.relation_id, LockMode.IS)
        if access_path is None or access_path.is_storage:
            method = self.registry.storage_method(
                handle.descriptor.storage_method_id)
            snapshot = self._snapshot_of(ctx)
            if snapshot is not None:
                return self._snapshot_fetch_many(ctx, handle, method, keys,
                                                 fields, predicate, snapshot)
            return self._storage_call(
                ctx, handle, "fetch_many",
                self.registry.storage_fetch_many[method.method_id],
                ctx, handle, keys, fields, predicate)
        attachment = self.registry.attachment_type(access_path.type_id)
        field = self._attachment_field(handle, access_path)
        instance = attachment.instance(field, access_path.instance_name)
        pairs = []
        for key in keys:
            record_keys = attachment.fetch(ctx, handle, instance, key)
            if record_keys:
                pairs.append((key, record_keys))
        return pairs

    def open_scan(self, ctx: ExecutionContext, handle: RelationHandle,
                  fields: Optional[Sequence[int]] = None,
                  predicate: Optional[Predicate] = None,
                  access_path: Optional[AccessPath] = None,
                  route=None):
        """Key-sequential access via the storage method or an access path."""
        ctx.lock_relation(handle.relation_id, LockMode.IS)
        if access_path is None or access_path.is_storage:
            method = self.registry.storage_method(
                handle.descriptor.storage_method_id)
            snapshot = self._snapshot_of(ctx)
            if snapshot is not None:
                return self._snapshot_open_scan(ctx, handle, method,
                                                fields, predicate, snapshot)
            return self._storage_call(
                ctx, handle, "open_scan",
                self.registry.storage_open_scan[method.method_id],
                ctx, handle, fields, predicate)
        attachment = self.registry.attachment_type(access_path.type_id)
        field = self._attachment_field(handle, access_path)
        instance = attachment.instance(field, access_path.instance_name)
        return self._attached_call(
            ctx, handle, access_path.type_id, field, "open_scan",
            attachment.open_scan, ctx, handle, instance, predicate,
            route=route)

    # ------------------------------------------------------------------
    # Multi-version (snapshot) reads
    # ------------------------------------------------------------------
    # A snapshot reader resolves every storage-path read against its
    # Snapshot: current storage state is first *patched* with the
    # before-images of transitions the snapshot must not see (writes by
    # transactions that were uncommitted at — or committed after — the
    # snapshot LSN).  Index (access-path) routes are not snapshot-aware:
    # the executor downgrades snapshot queries to the storage route, where
    # the full residual predicate makes the answer complete.

    @staticmethod
    def _snapshot_of(ctx: ExecutionContext):
        return ctx.txn.snapshot

    def _check_writable(self, ctx: ExecutionContext, handle: RelationHandle,
                        op: str) -> None:
        if ctx.txn.snapshot is not None:
            raise ReadOnlyTransactionError(
                f"snapshot transaction {ctx.txn_id} cannot {op} on relation "
                f"{handle.name!r}; begin a read-write transaction instead")

    def _note_versions(self, ctx: ExecutionContext, handle: RelationHandle,
                       transitions) -> None:
        """Tell the version store what this modification changed."""
        self.services.transactions.note_versions(ctx.txn, handle.relation_id,
                                                 transitions)

    def _relation_patch(self, handle: RelationHandle, snapshot) -> dict:
        return self.services.transactions.snapshot_patch(
            snapshot, handle.relation_id)

    @staticmethod
    def _apply_read(record, fields, predicate):
        """Predicate + projection for a snapshot image, matching what the
        storage method would have applied had the read been pushed down."""
        if record is None or record is ABSENT:
            return None
        if predicate is not None and not predicate.matches(record):
            return None
        if fields is None:
            return tuple(record)
        return tuple(record[i] for i in fields)

    def _snapshot_fetch(self, ctx, handle, method, key, fields, predicate,
                        snapshot):
        patch = self._relation_patch(handle, snapshot)
        if key in patch:
            ctx.stats.bump("mvcc.records_patched")
            return self._apply_read(patch[key], fields, predicate)
        record = self._storage_call(
            ctx, handle, "fetch",
            self.registry.storage_fetch[method.method_id],
            ctx, handle, key, None, None)
        return self._apply_read(record, fields, predicate)

    def _snapshot_fetch_many(self, ctx, handle, method, keys, fields,
                             predicate, snapshot) -> list:
        patch = self._relation_patch(handle, snapshot)
        unpatched = [k for k in keys if k not in patch]
        raw = dict(self._storage_call(
            ctx, handle, "fetch_many",
            self.registry.storage_fetch_many[method.method_id],
            ctx, handle, unpatched, None, None)) if unpatched else {}
        pairs = []
        for key in keys:
            if key in patch:
                ctx.stats.bump("mvcc.records_patched")
                image = patch[key]
            else:
                image = raw.get(key)
            item = self._apply_read(image, fields, predicate)
            if item is not None:
                pairs.append((key, item))
        return pairs

    def _snapshot_open_scan(self, ctx, handle, method, fields, predicate,
                            snapshot):
        """A raw storage scan wrapped to serve the snapshot.

        The base scan carries no predicate or projection — both must run
        *after* patching, on snapshot images rather than current state.
        """
        base = self._storage_call(
            ctx, handle, "open_scan",
            self.registry.storage_open_scan[method.method_id],
            ctx, handle, None, None)

        def transform(key, record):
            item = self._apply_read(record, fields, predicate)
            return None if item is None else (key, item)

        batch_transform = None
        if fields is None and predicate is not None \
                and hasattr(predicate, "match_indexes"):
            # Full-record reads filter the whole patched batch through
            # the predicate's vector kernels — the same set-at-a-time
            # filtering a quiesced storage scan gets from pushdown.
            def batch_transform(pairs):
                records = [record for __, record in pairs]
                return [(pairs[i][0], tuple(records[i]))
                        for i in predicate.match_indexes(records)]

        wrapped = SnapshotScan(
            base,
            patch_fn=lambda: self._relation_patch(handle, snapshot),
            transform=transform, stats=ctx.stats,
            batch_transform=batch_transform)
        ctx.services.scans.register(wrapped)
        return wrapped

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _modifiable_method(self, handle: RelationHandle):
        method = self.registry.storage_method(
            handle.descriptor.storage_method_id)
        if not method.updatable:
            raise ReadOnlyError(
                f"relation {handle.name!r} uses read-only storage method "
                f"{method.name!r}")
        return method

    def _lock_for_batch(self, ctx, handle: RelationHandle, size: int) -> None:
        """Relation lock for a set-at-a-time modification.

        Small batches take the usual IX intent and let the storage method
        lock each record; large ones escalate to one relation-level X lock,
        which subsumes (and suppresses) all record-at-a-time locking.
        """
        if size >= LOCK_ESCALATION_THRESHOLD:
            ctx.lock_relation(handle.relation_id, LockMode.X)
        else:
            ctx.lock_relation(handle.relation_id, LockMode.IX)

    def _require_record(self, ctx, handle, key) -> Tuple:
        method = self.registry.storage_method(
            handle.descriptor.storage_method_id)
        old = self.registry.storage_fetch[method.method_id](
            ctx, handle, key, None, None)
        if old is None:
            raise StorageError(
                f"relation {handle.name!r} has no record with key {key!r}")
        return old

    def _attachment_field(self, handle: RelationHandle,
                          access_path: AccessPath) -> dict:
        field = handle.descriptor.attachment_field(access_path.type_id)
        if field is None:
            raise UnknownObjectError(
                f"relation {handle.name!r} has no attachments of type id "
                f"{access_path.type_id}")
        return field

    def _operation(self, ctx: ExecutionContext):
        """Context manager: operation savepoint + rollback-on-error.

        Every relation modification runs inside an internal savepoint so a
        veto by the k-th attachment undoes the storage-method change and
        the k−1 attached procedures that already ran (including any
        cascaded modifications they performed on other relations).
        """
        return _OperationScope(self, ctx)


class _OperationScope:
    __slots__ = ("manager", "ctx", "name")

    def __init__(self, manager: DataManager, ctx: ExecutionContext):
        self.manager = manager
        self.ctx = ctx
        # Savepoint names are derived from (txn id, per-txn depth) so that
        # cascaded modifications nested inside an operation — which run in
        # the *same* transaction — get unique names regardless of how many
        # DataManager instances or databases participate.
        ctx.txn.op_seq += 1
        self.name = f"__op_{ctx.txn.txn_id}.{ctx.txn.op_seq}"

    def __enter__(self):
        txns = self.manager.services.transactions
        txns.savepoint(self.ctx.txn, self.name)
        return self

    def __exit__(self, exc_type, exc, tb):
        txns = self.manager.services.transactions
        if exc_type is None:
            txns.release_savepoint(self.ctx.txn, self.name)
            return False
        # Undo the partial effects of the failed modification, then let the
        # veto / error propagate to the caller.
        txns.rollback_to(self.ctx.txn, self.name)
        txns.release_savepoint(self.ctx.txn, self.name)
        self.ctx.stats.bump("dispatch.vetoed_operations")
        return False
