"""Common record and field-value representation.

The paper: "The most obvious interface convention is the common record and
field value representations needed to allow communication with the generic
operations comprising the storage method and attachment extensions."

Every storage method and attachment in this library exchanges records in
one canonical form: a tuple of Python field values ordered by the relation
schema, plus a binary wire form used on pages.  The binary form is a small
self-describing row format (null bitmap + fixed header + variable-length
tail) so that any extension can materialise only the fields it needs while
the row is still in the buffer pool.
"""

from __future__ import annotations

import struct
from typing import Iterable, Sequence, Tuple

from ..errors import SchemaError

__all__ = ["Box", "encode_value", "decode_value", "encode_record", "decode_record",
           "record_fields", "RecordView"]


class Box:
    """An axis-aligned rectangle, the value type of spatial (BOX) fields.

    Used by the R-tree attachment to evaluate the spatial predicates the
    paper names (``ENCLOSES``) plus the usual companions.  Coordinates are
    floats; ``lo`` is the lower-left corner and ``hi`` the upper-right.
    """

    __slots__ = ("x_lo", "y_lo", "x_hi", "y_hi")

    def __init__(self, x_lo: float, y_lo: float, x_hi: float, y_hi: float):
        if x_lo > x_hi or y_lo > y_hi:
            raise SchemaError(f"degenerate box: ({x_lo},{y_lo})..({x_hi},{y_hi})")
        self.x_lo = float(x_lo)
        self.y_lo = float(y_lo)
        self.x_hi = float(x_hi)
        self.y_hi = float(y_hi)

    # -- spatial predicates -------------------------------------------------
    def encloses(self, other: "Box") -> bool:
        """True when this box fully contains ``other`` (paper's ENCLOSES)."""
        return (self.x_lo <= other.x_lo and self.y_lo <= other.y_lo
                and self.x_hi >= other.x_hi and self.y_hi >= other.y_hi)

    def enclosed_by(self, other: "Box") -> bool:
        return other.encloses(self)

    def overlaps(self, other: "Box") -> bool:
        return not (self.x_hi < other.x_lo or other.x_hi < self.x_lo
                    or self.y_hi < other.y_lo or other.y_hi < self.y_lo)

    # -- geometry helpers used by the R-tree --------------------------------
    def area(self) -> float:
        return (self.x_hi - self.x_lo) * (self.y_hi - self.y_lo)

    def union(self, other: "Box") -> "Box":
        return Box(min(self.x_lo, other.x_lo), min(self.y_lo, other.y_lo),
                   max(self.x_hi, other.x_hi), max(self.y_hi, other.y_hi))

    def enlargement(self, other: "Box") -> float:
        """Area growth needed for this box to cover ``other``."""
        return self.union(other).area() - self.area()

    # -- value protocol ------------------------------------------------------
    def __eq__(self, other) -> bool:
        return (isinstance(other, Box)
                and (self.x_lo, self.y_lo, self.x_hi, self.y_hi)
                == (other.x_lo, other.y_lo, other.x_hi, other.y_hi))

    def __hash__(self) -> int:
        return hash((self.x_lo, self.y_lo, self.x_hi, self.y_hi))

    def __repr__(self) -> str:
        return f"Box({self.x_lo}, {self.y_lo}, {self.x_hi}, {self.y_hi})"


# ---------------------------------------------------------------------------
# Binary field encoding.
#
# Wire format per value (type tags come from the schema, not the wire):
#   INT    -> 8-byte signed little-endian
#   FLOAT  -> 8-byte IEEE double
#   BOOL   -> 1 byte
#   STRING -> u16 length + utf-8 bytes
#   BYTES  -> u16 length + raw bytes
#   BOX    -> 4 IEEE doubles
# ---------------------------------------------------------------------------

_INT = struct.Struct("<q")
_FLOAT = struct.Struct("<d")
_BOOL = struct.Struct("<B")
_LEN = struct.Struct("<H")
_BOX = struct.Struct("<dddd")


def encode_value(type_code: str, value) -> bytes:
    """Encode one non-null field value to its binary wire form."""
    if type_code == "INT":
        return _INT.pack(value)
    if type_code == "FLOAT":
        return _FLOAT.pack(value)
    if type_code == "BOOL":
        return _BOOL.pack(1 if value else 0)
    if type_code == "STRING":
        raw = value.encode("utf-8")
        if len(raw) > 0xFFFF:
            raise SchemaError(f"string too long ({len(raw)} bytes)")
        return _LEN.pack(len(raw)) + raw
    if type_code == "BYTES":
        if len(value) > 0xFFFF:
            raise SchemaError(f"bytes too long ({len(value)} bytes)")
        return _LEN.pack(len(value)) + bytes(value)
    if type_code == "BOX":
        return _BOX.pack(value.x_lo, value.y_lo, value.x_hi, value.y_hi)
    raise SchemaError(f"unknown field type {type_code!r}")


def decode_value(type_code: str, buf: memoryview, offset: int):
    """Decode one field value; returns ``(value, next_offset)``."""
    if type_code == "INT":
        return _INT.unpack_from(buf, offset)[0], offset + 8
    if type_code == "FLOAT":
        return _FLOAT.unpack_from(buf, offset)[0], offset + 8
    if type_code == "BOOL":
        return bool(_BOOL.unpack_from(buf, offset)[0]), offset + 1
    if type_code == "STRING":
        (n,) = _LEN.unpack_from(buf, offset)
        start = offset + 2
        return bytes(buf[start:start + n]).decode("utf-8"), start + n
    if type_code == "BYTES":
        (n,) = _LEN.unpack_from(buf, offset)
        start = offset + 2
        return bytes(buf[start:start + n]), start + n
    if type_code == "BOX":
        x_lo, y_lo, x_hi, y_hi = _BOX.unpack_from(buf, offset)
        return Box(x_lo, y_lo, x_hi, y_hi), offset + 32
    raise SchemaError(f"unknown field type {type_code!r}")


def encode_record(schema, record: Sequence) -> bytes:
    """Encode a full record to the on-page wire form.

    Layout: null bitmap (one bit per field, 1 = NULL), then the non-null
    field values in schema order.
    """
    n = len(schema.fields)
    if len(record) != n:
        raise SchemaError(
            f"record has {len(record)} fields, schema {schema.name!r} has {n}")
    bitmap = bytearray((n + 7) // 8)
    parts = [bytes(bitmap)]  # placeholder, replaced below
    body = []
    for i, (field, value) in enumerate(zip(schema.fields, record)):
        if value is None:
            bitmap[i // 8] |= 1 << (i % 8)
        else:
            body.append(encode_value(field.type_code, value))
    parts[0] = bytes(bitmap)
    return b"".join(parts + body)


def decode_record(schema, raw: bytes) -> Tuple:
    """Decode the on-page wire form back to a value tuple."""
    n = len(schema.fields)
    buf = memoryview(raw)
    bitmap = raw[: (n + 7) // 8]
    offset = (n + 7) // 8
    values = []
    for i, field in enumerate(schema.fields):
        if bitmap[i // 8] & (1 << (i % 8)):
            values.append(None)
        else:
            value, offset = decode_value(field.type_code, buf, offset)
            values.append(value)
    return tuple(values)


def record_fields(record: Sequence, indexes: Iterable[int]) -> Tuple:
    """Project the given field positions out of a record tuple."""
    return tuple(record[i] for i in indexes)


class RecordView:
    """A partial view of a record: only selected fields are materialised.

    Access paths evaluate filter predicates against the fields available in
    their keys *before* fetching the full record (the paper's early
    filtering).  A ``RecordView`` lets the common predicate evaluator treat
    a full record and a partial key uniformly: it maps schema field index →
    value and reports which fields are available.
    """

    __slots__ = ("_values", "_available")

    def __init__(self, values: dict):
        self._values = values
        self._available = frozenset(values)

    @classmethod
    def from_record(cls, record: Sequence) -> "RecordView":
        return cls({i: v for i, v in enumerate(record)})

    @classmethod
    def from_fields(cls, indexes: Sequence[int], values: Sequence) -> "RecordView":
        return cls(dict(zip(indexes, values)))

    @property
    def available(self) -> frozenset:
        return self._available

    def covers(self, indexes: Iterable[int]) -> bool:
        """True when every listed field position is available in the view."""
        return all(i in self._available for i in indexes)

    def __getitem__(self, index: int):
        try:
            return self._values[index]
        except KeyError:
            raise SchemaError(f"field {index} not available in this view") from None

    def get(self, index: int, default=None):
        return self._values.get(index, default)

    def __repr__(self) -> str:
        inner = ", ".join(f"{i}={self._values[i]!r}" for i in sorted(self._values))
        return f"RecordView({inner})"
