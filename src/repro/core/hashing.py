"""Stable value hashing shared by shard routing and statistics sketches.

Python's built-in ``hash()`` is salted per process (PYTHONHASHSEED), so
anything derived from it — shard selection, sketch contents — would change
from run to run and break both deterministic benchmarks and any on-disk
artifact that encodes a placement decision.  Every component that needs a
*placement* or *sketch* hash therefore uses this module: a CRC32 over a
canonical text encoding of the value, identical across processes,
platforms, and restarts.
"""

from __future__ import annotations

import zlib

__all__ = ["stable_hash", "shard_of", "HASH_SPACE"]

#: The hash range: CRC32 values are uniform over 32 bits.
HASH_SPACE = 2 ** 32


def stable_hash(value) -> int:
    """A salt-free 32-bit hash of ``value``, stable across processes.

    ``repr`` gives a canonical text form for the scalar types records
    carry (ints, floats, strings, bools, None); ``backslashreplace``
    keeps arbitrary unicode encodable.
    """
    return zlib.crc32(repr(value).encode("utf-8", "backslashreplace"))


def shard_of(value, shards: int) -> int:
    """Deterministic shard index for a partition-key value."""
    return stable_hash(value) % shards
