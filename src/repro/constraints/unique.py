"""Uniqueness constraint attachment (a constraint *with storage*).

The paper stresses that attachments differ from plain triggers "because
they may have associated storage".  The unique constraint demonstrates
exactly that: it maintains its own page-based B-tree keyed by the
constrained columns purely to enforce uniqueness in O(log n), vetoing the
modification with :class:`~repro.errors.UniqueViolation` on duplicates.

SQL semantics: records with a NULL in any constrained column are exempt.

DDL attributes: ``columns`` (list of column names, required).
"""

from __future__ import annotations

from typing import Optional

from ..access.btree_core import BTree
from ..core.attachment import AttachmentType
from ..errors import PageError, StorageError, UniqueViolation
from ..services.recovery import ResourceHandler

__all__ = ["UniqueConstraintAttachment"]


class _UniqueHandler(ResourceHandler):
    def __init__(self, attachment: "UniqueConstraintAttachment"):
        self.attachment = attachment

    def undo(self, services, payload: dict, clr_lsn: int) -> None:
        if getattr(services, "in_restart", False):
            return
        database = services.database
        entry = database.catalog.entry_by_id(payload["relation_id"])
        field = entry.handle.descriptor.attachment_field(
            self.attachment.type_id)
        if field is None:
            return
        instance = field["instances"].get(payload["instance"])
        if instance is None:
            return
        tree = BTree(services.buffer, instance["tree"])
        if payload["op"] == "add":
            tree.delete(tuple(payload["key"]), payload["value"])
        elif payload["op"] == "remove":
            tree.insert(tuple(payload["key"]), payload["value"])
        elif payload["op"] == "add_many":
            for key, value in reversed(payload["entries"]):
                tree.delete(tuple(key), value)
        elif payload["op"] == "remove_many":
            for key, value in reversed(payload["entries"]):
                tree.insert(tuple(key), value)
        else:
            raise StorageError(f"unique cannot undo {payload['op']!r}")

    def redo(self, services, lsn: int, payload: dict) -> None:
        """No redo: the enforcement structure is rebuilt after restart."""


class UniqueConstraintAttachment(AttachmentType):
    """Vetoes modifications that would duplicate the constrained columns."""

    name = "unique"
    is_access_path = False
    recoverable = True

    # -- DDL -------------------------------------------------------------------
    def validate_attributes(self, schema, attributes):
        attributes = dict(attributes)
        columns = attributes.pop("columns", None)
        if attributes:
            raise StorageError(
                f"unique: unknown attributes {sorted(attributes)}")
        if not columns:
            raise StorageError("unique requires a 'columns' attribute")
        for column in columns:
            if not schema.orderable(column):
                raise StorageError(
                    f"unique column {column!r} has unorderable type "
                    f"{schema.field(column).type_code}")
        return {"columns": list(columns)}

    def create_instance(self, ctx, handle, instance_name, attributes) -> dict:
        key_fields = list(handle.schema.indexes_of(attributes["columns"]))
        instance = {"name": instance_name,
                    "columns": list(attributes["columns"]),
                    "key_fields": key_fields, "tree": {}}
        BTree.create(ctx.buffer, instance["tree"])
        self._build(ctx, handle, instance)
        return instance

    def destroy_instance(self, ctx, handle, instance_name, instance) -> None:
        tree = BTree(ctx.buffer, instance["tree"])
        try:
            tree.destroy()
        except PageError:
            pass

    def recovery_handler(self) -> ResourceHandler:
        return _UniqueHandler(self)

    def _build(self, ctx, handle, instance) -> None:
        tree = BTree(ctx.buffer, instance["tree"])
        method = ctx.database.registry.storage_method(
            handle.descriptor.storage_method_id)
        scan = method.open_scan(ctx, handle)
        try:
            while True:
                item = scan.next()
                if item is None:
                    break
                record_key, record = item
                key = self._key_of(instance, record)
                if key is None:
                    continue
                if tree.search(key):
                    raise UniqueViolation(
                        self.name,
                        f"existing records duplicate {instance['columns']} "
                        f"= {key!r}")
                tree.insert(key, record_key)
        finally:
            scan.close()
            ctx.services.scans.unregister(scan)

    def rebuild(self, ctx, handle, field) -> None:
        for instance in field["instances"].values():
            tree = BTree(ctx.buffer, instance["tree"])
            try:
                tree.reset()
            except PageError:
                instance["tree"].clear()
                BTree.create(ctx.buffer, instance["tree"])
            self._build(ctx, handle, instance)
        ctx.stats.bump("unique.rebuilds")

    # -- attached procedures -------------------------------------------------------------
    @staticmethod
    def _key_of(instance: dict, record) -> Optional[tuple]:
        key = tuple(record[i] for i in instance["key_fields"])
        if any(v is None for v in key):
            return None  # NULLs are exempt from uniqueness
        return key

    def on_insert(self, ctx, handle, field, key, new_record) -> None:
        for instance in field["instances"].values():
            unique_key = self._key_of(instance, new_record)
            if unique_key is None:
                continue
            tree = BTree(ctx.buffer, instance["tree"])
            if tree.search(unique_key):
                raise UniqueViolation(
                    instance["name"],
                    f"duplicate value {unique_key!r} for UNIQUE "
                    f"({', '.join(instance['columns'])})")
            tree.insert(unique_key, key)
            ctx.log(self.resource, {
                "op": "add", "relation_id": handle.relation_id,
                "instance": instance["name"], "key": list(unique_key),
                "value": key})
            ctx.stats.bump("unique.maintenance_ops")

    def on_insert_batch(self, ctx, handle, field, keys, new_records) -> None:
        """Batch existence probes: one tree per instance, the whole set
        checked (against stored keys *and* within the batch) before any
        entry is added, and one log record per instance."""
        for instance in field["instances"].values():
            entries = []
            for index, (key, record) in enumerate(zip(keys, new_records)):
                unique_key = self._key_of(instance, record)
                if unique_key is not None:
                    entries.append((unique_key, key, index))
            if not entries:
                continue
            tree = BTree(ctx.buffer, instance["tree"])
            seen = set()
            for unique_key, __, index in entries:
                if unique_key in seen or tree.search(unique_key):
                    raise UniqueViolation(
                        instance["name"],
                        f"duplicate value {unique_key!r} for UNIQUE "
                        f"({', '.join(instance['columns'])})",
                        batch_index=index)
                seen.add(unique_key)
            for unique_key, value, __ in entries:
                tree.insert(unique_key, value)
            ctx.log(self.resource, {
                "op": "add_many", "relation_id": handle.relation_id,
                "instance": instance["name"],
                "entries": [[list(k), v] for k, v, __ in entries]})
            ctx.stats.bump("unique.maintenance_ops", len(entries))

    def on_delete_batch(self, ctx, handle, field, items) -> None:
        for instance in field["instances"].values():
            entries = []
            for key, old in items:
                unique_key = self._key_of(instance, old)
                if unique_key is not None:
                    entries.append((unique_key, key))
            if not entries:
                continue
            tree = BTree(ctx.buffer, instance["tree"])
            for unique_key, value in entries:
                tree.delete(unique_key, value)
            ctx.log(self.resource, {
                "op": "remove_many", "relation_id": handle.relation_id,
                "instance": instance["name"],
                "entries": [[list(k), v] for k, v in entries]})
            ctx.stats.bump("unique.maintenance_ops", len(entries))

    def on_update(self, ctx, handle, field, old_key, new_key, old_record,
                  new_record) -> None:
        for instance in field["instances"].values():
            old_unique = self._key_of(instance, old_record)
            new_unique = self._key_of(instance, new_record)
            if old_unique == new_unique and old_key == new_key:
                ctx.stats.bump("unique.update_skips")
                continue
            tree = BTree(ctx.buffer, instance["tree"])
            if new_unique is not None and new_unique != old_unique \
                    and tree.search(new_unique):
                raise UniqueViolation(
                    instance["name"],
                    f"duplicate value {new_unique!r} for UNIQUE "
                    f"({', '.join(instance['columns'])})")
            if old_unique is not None:
                tree.delete(old_unique, old_key)
                ctx.log(self.resource, {
                    "op": "remove", "relation_id": handle.relation_id,
                    "instance": instance["name"], "key": list(old_unique),
                    "value": old_key})
            if new_unique is not None:
                tree.insert(new_unique, new_key)
                ctx.log(self.resource, {
                    "op": "add", "relation_id": handle.relation_id,
                    "instance": instance["name"], "key": list(new_unique),
                    "value": new_key})
            ctx.stats.bump("unique.maintenance_ops")

    def on_delete(self, ctx, handle, field, key, old_record) -> None:
        for instance in field["instances"].values():
            unique_key = self._key_of(instance, old_record)
            if unique_key is None:
                continue
            tree = BTree(ctx.buffer, instance["tree"])
            tree.delete(unique_key, key)
            ctx.log(self.resource, {
                "op": "remove", "relation_id": handle.relation_id,
                "instance": instance["name"], "key": list(unique_key),
                "value": key})
            ctx.stats.bump("unique.maintenance_ops")
