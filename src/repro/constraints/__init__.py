"""Integrity constraint and trigger attachment extensions."""

from __future__ import annotations

from .check import CheckConstraintAttachment
from .referential import ReferentialIntegrityAttachment
from .trigger import (TriggerAttachment, TriggerEvent,
                      register_trigger_routine)
from .unique import UniqueConstraintAttachment

__all__ = ["CheckConstraintAttachment", "ReferentialIntegrityAttachment",
           "TriggerAttachment", "TriggerEvent", "register_trigger_routine",
           "UniqueConstraintAttachment"]
