"""Referential integrity attachment.

The paper's example of cascaded modifications through attached procedures:

  "the referential integrity attachment to a 'parent' relation would
  perform record delete operations on the 'child' relation when a
  'parent' record is deleted.  If the 'child' relation also has a
  referential integrity attachment, it would perform record delete
  operations on its 'child' relation.  Thus, cascaded deletes can be
  supported.  On insert, the same attachment type on the 'child' relation
  would test the 'parent' relation for a record with matching referential
  integrity fields."

The instance is created on the **child** relation; creation installs a
mirror instance on the parent's descriptor (the paper's "embedded
references to descriptors for other relations"), so parent-side deletes
and key updates drive the child-side actions:

* child insert / foreign-key update → parent-existence check (veto with
  :class:`~repro.errors.ReferentialViolation` when missing, or deferred to
  commit when the constraint is deferred);
* parent delete → ``restrict`` vetoes while matching children exist;
  ``cascade`` deletes the children *through the full dispatch layer*, so
  grand-child constraints fire recursively and everything is undone
  together if anything vetoes;
* parent key update → restrict while matching children exist.

DDL attributes: ``parent`` (relation name), ``columns`` (child FK
columns), ``parent_columns`` (referenced columns), ``on_delete``
("restrict" | "cascade", default restrict), ``deferred`` (bool).
"""

from __future__ import annotations

from typing import List, Optional

from ..core.attachment import AttachmentType
from ..errors import ReferentialViolation, StorageError
from ..services import events as ev

__all__ = ["ReferentialIntegrityAttachment"]

_ACTIONS = ("restrict", "cascade")


class ReferentialIntegrityAttachment(AttachmentType):
    """Parent/child consistency with restrict or cascade delete rules."""

    name = "referential"
    is_access_path = False
    recoverable = False   # no own storage; cascades log via their own ops

    # -- DDL -------------------------------------------------------------------
    def validate_attributes(self, schema, attributes):
        attributes = dict(attributes)
        parent = attributes.pop("parent", None)
        columns = attributes.pop("columns", None)
        parent_columns = attributes.pop("parent_columns", None)
        on_delete = attributes.pop("on_delete", "restrict")
        deferred = attributes.pop("deferred", False)
        if attributes:
            raise StorageError(
                f"referential: unknown attributes {sorted(attributes)}")
        if not parent or not columns or not parent_columns:
            raise StorageError(
                "referential requires 'parent', 'columns', and "
                "'parent_columns' attributes")
        if len(columns) != len(parent_columns):
            raise StorageError(
                "referential: 'columns' and 'parent_columns' must have the "
                "same length")
        for column in columns:
            schema.field(column)
        if on_delete not in _ACTIONS:
            raise StorageError(
                f"referential: on_delete must be one of {_ACTIONS}, got "
                f"{on_delete!r}")
        return {"parent": parent.lower(), "columns": list(columns),
                "parent_columns": list(parent_columns),
                "on_delete": on_delete, "deferred": bool(deferred)}

    def create_instance(self, ctx, handle, instance_name, attributes) -> dict:
        database = ctx.database
        parent_handle = database.catalog.handle(attributes["parent"])
        for column in attributes["parent_columns"]:
            parent_handle.schema.field(column)
        instance = {
            "name": instance_name, "role": "child",
            "child": handle.name, "parent": parent_handle.name,
            "columns": list(attributes["columns"]),
            "parent_columns": list(attributes["parent_columns"]),
            "child_fields": list(handle.schema.indexes_of(
                attributes["columns"])),
            "parent_fields": list(parent_handle.schema.indexes_of(
                attributes["parent_columns"])),
            "on_delete": attributes["on_delete"],
            "deferred": attributes["deferred"],
        }
        # Existing children must already satisfy the constraint.
        for __, record in self._scan_all(ctx, handle):
            values = self._values(record, instance["child_fields"])
            if values is not None and not self._parent_exists(
                    ctx, instance, values):
                raise ReferentialViolation(
                    instance_name,
                    f"existing record references missing parent {values!r}")
        mirror = dict(instance, role="parent",
                      name=instance_name + "@parent")
        parent_field = parent_handle.descriptor.attachment_field(self.type_id)
        if parent_field is None:
            parent_field = self.new_field_descriptor()
            parent_handle.descriptor.set_attachment_field(self.type_id,
                                                          parent_field)
        parent_field["instances"][mirror["name"]] = mirror
        return instance

    def destroy_instance(self, ctx, handle, instance_name, instance) -> None:
        if instance["role"] != "child":
            return
        database = ctx.database
        try:
            parent_handle = database.catalog.handle(instance["parent"])
        except Exception:
            return
        parent_field = parent_handle.descriptor.attachment_field(self.type_id)
        if parent_field is not None:
            parent_field["instances"].pop(instance["name"] + "@parent", None)
            if not parent_field["instances"]:
                parent_handle.descriptor.set_attachment_field(self.type_id,
                                                              None)

    # -- attached procedures -------------------------------------------------------------
    def on_insert(self, ctx, handle, field, key, new_record) -> None:
        for instance in field["instances"].values():
            if instance["role"] != "child":
                continue
            self._check_child(ctx, instance, new_record)
            ctx.stats.bump("referential.child_checks")

    def on_update(self, ctx, handle, field, old_key, new_key, old_record,
                  new_record) -> None:
        for instance in field["instances"].values():
            if instance["role"] == "child":
                old_values = self._values(old_record,
                                          instance["child_fields"])
                new_values = self._values(new_record,
                                          instance["child_fields"])
                if old_values != new_values:
                    self._check_child(ctx, instance, new_record)
                    ctx.stats.bump("referential.child_checks")
            else:
                old_values = self._values(old_record,
                                          instance["parent_fields"])
                new_values = self._values(new_record,
                                          instance["parent_fields"])
                if old_values != new_values and old_values is not None:
                    children = self._matching_children(ctx, instance,
                                                       old_values)
                    if children:
                        raise ReferentialViolation(
                            instance["name"],
                            f"cannot change referenced key {old_values!r}: "
                            f"{len(children)} child record(s) reference it")
                ctx.stats.bump("referential.parent_checks")

    def on_delete(self, ctx, handle, field, key, old_record) -> None:
        for instance in field["instances"].values():
            if instance["role"] != "parent":
                continue
            values = self._values(old_record, instance["parent_fields"])
            if values is None:
                continue
            children = self._matching_children(ctx, instance, values)
            if not children:
                continue
            if instance["on_delete"] == "restrict":
                raise ReferentialViolation(
                    instance["name"],
                    f"cannot delete parent {values!r}: {len(children)} "
                    f"child record(s) reference it")
            # Cascade: delete children through the dispatch layer so their
            # own attachments (including further referential instances)
            # fire — "modifications may cascade in the database".
            database = ctx.database
            child_handle = database.catalog.handle(instance["child"])
            for child_key in children:
                database.data.delete(ctx, child_handle, child_key)
                ctx.stats.bump("referential.cascaded_deletes")

    # -- set-at-a-time attached procedures ---------------------------------------
    def on_insert_batch(self, ctx, handle, field, keys, new_records) -> None:
        """One parent-existence probe per *distinct* foreign-key value and,
        for deferred constraints, one deferred-queue entry carrying the
        whole distinct value set (not one entry per record)."""
        for instance in field["instances"].values():
            if instance["role"] != "child":
                continue
            # value -> first batch index carrying it (for veto reporting)
            distinct = {}
            for index, record in enumerate(new_records):
                values = self._values(record, instance["child_fields"])
                if values is not None and values not in distinct:
                    distinct[values] = index
            if instance["deferred"]:
                if distinct:
                    self._defer_check_many(ctx, instance, list(distinct))
            else:
                for values, index in distinct.items():
                    if not self._parent_exists(ctx, instance, values):
                        raise ReferentialViolation(
                            instance["name"],
                            f"no parent record in {instance['parent']!r} "
                            f"with "
                            f"{list(zip(instance['parent_columns'], values))}",
                            batch_index=index)
            ctx.stats.bump("referential.child_checks", len(new_records))

    def on_delete_batch(self, ctx, handle, field, items) -> None:
        """Restrict vetoes on the first referenced value; cascade collects
        every matching child and deletes them in one batch operation, so
        the cascade itself runs set-at-a-time."""
        for instance in field["instances"].values():
            if instance["role"] != "parent":
                continue
            # value -> first batch index carrying it (for veto reporting)
            distinct = {}
            for index, (__, old) in enumerate(items):
                values = self._values(old, instance["parent_fields"])
                if values is not None and values not in distinct:
                    distinct[values] = index
            all_children: list = []
            for values, index in distinct.items():
                children = self._matching_children(ctx, instance, values)
                if not children:
                    continue
                if instance["on_delete"] == "restrict":
                    raise ReferentialViolation(
                        instance["name"],
                        f"cannot delete parent {values!r}: {len(children)} "
                        f"child record(s) reference it",
                        batch_index=index)
                all_children.extend(children)
            if all_children:
                database = ctx.database
                child_handle = database.catalog.handle(instance["child"])
                database.data.delete_batch(ctx, child_handle,
                                           list(dict.fromkeys(all_children)))
                ctx.stats.bump("referential.cascaded_deletes",
                               len(all_children))

    # -- checking helpers ---------------------------------------------------------------
    @staticmethod
    def _values(record, fields: List[int]) -> Optional[tuple]:
        values = tuple(record[i] for i in fields)
        if any(v is None for v in values):
            return None  # NULL FK values are exempt (SQL MATCH SIMPLE)
        return values

    def _check_child(self, ctx, instance: dict, record) -> None:
        values = self._values(record, instance["child_fields"])
        if values is None:
            return
        if instance["deferred"]:
            self._defer_check(ctx, instance, values)
            return
        if not self._parent_exists(ctx, instance, values):
            raise ReferentialViolation(
                instance["name"],
                f"no parent record in {instance['parent']!r} with "
                f"{list(zip(instance['parent_columns'], values))}")

    def _defer_check(self, ctx, instance: dict, values: tuple) -> None:
        """Queue the parent-existence test for just before prepare."""
        database = ctx.database
        instance_name = instance["name"]
        child_name = instance["child"]

        def recheck(txn_id: int, data) -> None:
            entry = database.catalog.entry(child_name)
            inner_field = entry.handle.descriptor.attachment_field(
                self.type_id)
            if inner_field is None:
                return
            inner = inner_field["instances"].get(instance_name)
            if inner is None:
                return
            txn = database.services.transactions.get(txn_id)
            from ..core.context import ExecutionContext
            inner_ctx = ExecutionContext(txn, database.services, database)
            if not self._parent_exists(inner_ctx, inner, data):
                raise ReferentialViolation(
                    instance_name,
                    f"deferred check failed: no parent record in "
                    f"{inner['parent']!r} with "
                    f"{list(zip(inner['parent_columns'], data))}")
            database.services.stats.bump("referential.deferred_checks")

        ctx.defer(ev.BEFORE_PREPARE, recheck, values)

    def _defer_check_many(self, ctx, instance: dict,
                          values_list: list) -> None:
        """One deferred-queue entry testing a whole set of FK values."""
        database = ctx.database
        instance_name = instance["name"]
        child_name = instance["child"]

        def recheck(txn_id: int, data) -> None:
            entry = database.catalog.entry(child_name)
            inner_field = entry.handle.descriptor.attachment_field(
                self.type_id)
            if inner_field is None:
                return
            inner = inner_field["instances"].get(instance_name)
            if inner is None:
                return
            txn = database.services.transactions.get(txn_id)
            from ..core.context import ExecutionContext
            inner_ctx = ExecutionContext(txn, database.services, database)
            for values in data:
                if not self._parent_exists(inner_ctx, inner, values):
                    raise ReferentialViolation(
                        instance_name,
                        f"deferred check failed: no parent record in "
                        f"{inner['parent']!r} with "
                        f"{list(zip(inner['parent_columns'], values))}")
                database.services.stats.bump("referential.deferred_checks")

        ctx.defer(ev.BEFORE_PREPARE, recheck, values_list)

    def _parent_exists(self, ctx, instance: dict, values: tuple) -> bool:
        """Test the parent relation, via an index when one exists."""
        database = ctx.database
        parent_handle = database.catalog.handle(instance["parent"])
        keys = self._index_probe(ctx, parent_handle,
                                 instance["parent_fields"], values)
        if keys is not None:
            return bool(keys)
        for __, record in self._scan_all(ctx, parent_handle):
            if tuple(record[i] for i in instance["parent_fields"]) == values:
                return True
        return False

    def _matching_children(self, ctx, instance: dict, values: tuple) -> List:
        database = ctx.database
        child_handle = database.catalog.handle(instance["child"])
        keys = self._index_probe(ctx, child_handle,
                                 instance["child_fields"], values)
        if keys is not None:
            return keys
        return [key for key, record in self._scan_all(ctx, child_handle)
                if tuple(record[i]
                         for i in instance["child_fields"]) == values]

    @staticmethod
    def _index_probe(ctx, handle, fields: List[int], values: tuple
                     ) -> Optional[List]:
        """Use a B-tree or hash access path on exactly these fields, if any."""
        database = ctx.database
        for type_name in ("btree_index", "hash_index"):
            attachment = database.registry.attachment_type_by_name(type_name)
            field = handle.descriptor.attachment_field(attachment.type_id)
            if field is None:
                continue
            for instance in field["instances"].values():
                if list(instance["key_fields"]) == list(fields):
                    return attachment.fetch(ctx, handle, instance,
                                            tuple(values))
        return None

    @staticmethod
    def _scan_all(ctx, handle):
        database = ctx.database
        method = database.registry.storage_method(
            handle.descriptor.storage_method_id)
        scan = method.open_scan(ctx, handle)
        try:
            while True:
                item = scan.next()
                if item is None:
                    break
                yield item
        finally:
            scan.close()
            ctx.services.scans.unregister(scan)
