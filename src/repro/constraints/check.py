"""Single-record (intra-record) integrity constraint attachment.

Figure 1's EMPLOYEE relation carries an "intra-record consistency
constraint" attachment.  The instance descriptor contains "a (common
service) encoding of the predicate to be tested when records of the
relation are inserted or updated" — here the predicate text compiled
through the common predicate evaluator.

SQL semantics: the constraint is violated only when the predicate
evaluates to FALSE; TRUE and unknown (NULL) pass.  A violation raises
:class:`~repro.errors.CheckViolation`, vetoing the relation modification
(the dispatch layer then drives the partial rollback).

A constraint may be **deferred** ("certain integrity constraints cannot be
evaluated when a single modification occurs but must be evaluated after
all of the modifications have been made in the transaction"): instead of
checking immediately, the attachment places an entry on the deferred
action queue for the "before transaction enters prepared state" event;
the queued routine re-fetches the record and tests it at commit.

DDL attributes: ``predicate`` (expression text, required),
``deferred`` (bool, default False).
"""

from __future__ import annotations


from ..core.attachment import AttachmentType
from ..errors import CheckViolation, StorageError
from ..services import events as ev
from ..services.predicate import Predicate

__all__ = ["CheckConstraintAttachment"]


class CheckConstraintAttachment(AttachmentType):
    """Predicate checks on insert and update, immediate or deferred."""

    name = "check"
    is_access_path = False
    recoverable = False   # pure checks: nothing to log or rebuild

    # -- DDL -------------------------------------------------------------------
    def validate_attributes(self, schema, attributes):
        attributes = dict(attributes)
        text = attributes.pop("predicate", None)
        deferred = attributes.pop("deferred", False)
        if attributes:
            raise StorageError(
                f"check: unknown attributes {sorted(attributes)}")
        if not text or not isinstance(text, str):
            raise StorageError("check requires a 'predicate' attribute")
        Predicate.parse(text, schema)  # validate at DDL time
        return {"predicate": text, "deferred": bool(deferred)}

    def create_instance(self, ctx, handle, instance_name, attributes) -> dict:
        instance = {"name": instance_name,
                    "predicate": attributes["predicate"],
                    "deferred": attributes["deferred"]}
        # Existing records must already satisfy an immediate constraint.
        predicate = self._compiled(handle, instance)
        method = ctx.database.registry.storage_method(
            handle.descriptor.storage_method_id)
        scan = method.open_scan(ctx, handle)
        try:
            while True:
                item = scan.next()
                if item is None:
                    break
                __, record = item
                self._test(instance, predicate, record)
        finally:
            scan.close()
            ctx.services.scans.unregister(scan)
        return instance

    def destroy_instance(self, ctx, handle, instance_name, instance) -> None:
        instance.pop("_compiled", None)

    @staticmethod
    def _compiled(handle, instance: dict) -> Predicate:
        predicate = instance.get("_compiled")
        if predicate is None:
            predicate = Predicate.parse(instance["predicate"], handle.schema)
            instance["_compiled"] = predicate
        return predicate

    def _test(self, instance: dict, predicate: Predicate, record) -> None:
        from ..core.records import RecordView
        view = RecordView.from_record(record)
        result = predicate.expr.eval(view, predicate.params)
        if result is False:
            raise CheckViolation(
                instance["name"],
                f"record {record!r} violates CHECK ({instance['predicate']})")

    # -- attached procedures -------------------------------------------------------------
    def on_insert(self, ctx, handle, field, key, new_record) -> None:
        for instance in field["instances"].values():
            if instance["deferred"]:
                self._defer(ctx, handle, instance, key)
            else:
                self._test(instance, self._compiled(handle, instance),
                           new_record)
            ctx.stats.bump("check.evaluations")

    def on_update(self, ctx, handle, field, old_key, new_key, old_record,
                  new_record) -> None:
        for instance in field["instances"].values():
            if instance["deferred"]:
                self._defer(ctx, handle, instance, new_key)
            else:
                self._test(instance, self._compiled(handle, instance),
                           new_record)
            ctx.stats.bump("check.evaluations")

    # Deletes cannot violate an intra-record constraint.

    def _defer(self, ctx, handle, instance, key) -> None:
        """Queue the re-check for "before transaction enters prepared
        state"; the entry carries the routine and its data, per the paper."""
        database = ctx.database

        def recheck(txn_id: int, data) -> None:
            relation_name, record_key, instance_name = data
            entry = database.catalog.entry(relation_name)
            inner_field = entry.handle.descriptor.attachment_field(
                self.type_id)
            if inner_field is None:
                return
            inner = inner_field["instances"].get(instance_name)
            if inner is None:
                return  # constraint dropped later in the transaction
            method = database.registry.storage_method(
                entry.handle.descriptor.storage_method_id)
            txn = database.services.transactions.get(txn_id)
            from ..core.context import ExecutionContext
            inner_ctx = ExecutionContext(txn, database.services, database)
            record = method.fetch(inner_ctx, entry.handle, record_key)
            if record is None:
                return  # the record was deleted again before commit
            self._test(inner, self._compiled(entry.handle, inner), record)
            database.services.stats.bump("check.deferred_evaluations")

        ctx.defer(ev.BEFORE_PREPARE, recheck,
                  (handle.name, key, instance["name"]))
