"""Trigger attachment.

The paper: attachments can "trigger relation updates which establish or
maintain the desired data consistency" and "trigger additional actions
within the database or even outside of the database system".

A trigger instance names the events it fires on, a routine, and a timing:

* **immediate** — the routine runs inside the attached procedure, so it
  can perform further relation modifications through the dispatch layer
  (which then cascade) or veto the operation by raising
  :class:`~repro.errors.VetoError`;
* **deferred** — the routine is queued on the at-commit deferred-action
  queue (the paper's mechanism for actions that must wait for transaction
  events), typically used for actions *outside* the database such as
  notifications, which must not fire for aborted transactions.

Trigger routines receive a :class:`TriggerEvent`.  Routines are passed
either as a Python callable or as the name of a routine registered with
:func:`register_trigger_routine` ("made at the factory", like every
extension).

DDL attributes: ``on`` (subset of insert/update/delete), ``routine``
(callable or registered name), ``timing`` ("immediate" | "deferred").
"""

from __future__ import annotations

from typing import Callable, Dict

from ..core.attachment import AttachmentType
from ..errors import StorageError
from ..services import events as ev

__all__ = ["TriggerAttachment", "TriggerEvent", "register_trigger_routine"]

_ROUTINES: Dict[str, Callable] = {}

_EVENTS = ("insert", "update", "delete")
_TIMINGS = ("immediate", "deferred")


def register_trigger_routine(name: str, routine: Callable) -> None:
    """Register a named trigger routine (linked in 'at the factory')."""
    _ROUTINES[name.lower()] = routine


class TriggerEvent:
    """What a trigger routine sees: the modification and its context."""

    __slots__ = ("ctx", "relation", "operation", "key", "old", "new")

    def __init__(self, ctx, relation: str, operation: str, key, old, new):
        self.ctx = ctx
        self.relation = relation
        self.operation = operation
        self.key = key
        self.old = old
        self.new = new

    @property
    def database(self):
        return self.ctx.database

    def __repr__(self) -> str:
        return (f"TriggerEvent({self.operation} on {self.relation!r}, "
                f"key={self.key!r})")


class TriggerAttachment(AttachmentType):
    """User routines fired as side effects of relation modifications."""

    name = "trigger"
    is_access_path = False
    recoverable = False   # actions log through the operations they perform

    # -- DDL -------------------------------------------------------------------
    def validate_attributes(self, schema, attributes):
        attributes = dict(attributes)
        on = attributes.pop("on", None)
        routine = attributes.pop("routine", None)
        timing = attributes.pop("timing", "immediate")
        if attributes:
            raise StorageError(
                f"trigger: unknown attributes {sorted(attributes)}")
        if isinstance(on, str):
            on = [on]
        if not on or not set(on) <= set(_EVENTS):
            raise StorageError(
                f"trigger: 'on' must be a non-empty subset of {_EVENTS}, "
                f"got {on!r}")
        if routine is None:
            raise StorageError("trigger requires a 'routine' attribute")
        if isinstance(routine, str):
            if routine.lower() not in _ROUTINES:
                raise StorageError(
                    f"trigger routine {routine!r} is not registered "
                    f"(available: {sorted(_ROUTINES)})")
        elif not callable(routine):
            raise StorageError(
                f"trigger routine must be callable or a registered name, "
                f"got {type(routine).__name__}")
        if timing not in _TIMINGS:
            raise StorageError(
                f"trigger: timing must be one of {_TIMINGS}, got {timing!r}")
        return {"on": sorted(set(on)), "routine": routine, "timing": timing}

    def create_instance(self, ctx, handle, instance_name, attributes) -> dict:
        return {"name": instance_name, "on": attributes["on"],
                "routine": attributes["routine"],
                "timing": attributes["timing"], "fired": 0}

    def destroy_instance(self, ctx, handle, instance_name, instance) -> None:
        """Triggers hold no storage."""

    @staticmethod
    def _resolve(instance: dict) -> Callable:
        routine = instance["routine"]
        if isinstance(routine, str):
            return _ROUTINES[routine.lower()]
        return routine

    def _fire(self, ctx, handle, instance: dict, operation: str, key, old,
              new) -> None:
        if operation not in instance["on"]:
            return
        event = TriggerEvent(ctx, handle.name, operation, key, old, new)
        routine = self._resolve(instance)
        if instance["timing"] == "immediate":
            instance["fired"] += 1
            routine(event)
        else:
            def deferred_fire(txn_id: int, data) -> None:
                instance["fired"] += 1
                routine(data)
            ctx.defer(ev.AT_COMMIT, deferred_fire, event)
        ctx.stats.bump("trigger.firings")

    # -- attached procedures -------------------------------------------------------------
    def on_insert(self, ctx, handle, field, key, new_record) -> None:
        for instance in field["instances"].values():
            self._fire(ctx, handle, instance, "insert", key, None, new_record)

    def on_update(self, ctx, handle, field, old_key, new_key, old_record,
                  new_record) -> None:
        for instance in field["instances"].values():
            self._fire(ctx, handle, instance, "update", new_key, old_record,
                       new_record)

    def on_delete(self, ctx, handle, field, key, old_record) -> None:
        for instance in field["instances"].values():
            self._fire(ctx, handle, instance, "delete", key, old_record, None)
