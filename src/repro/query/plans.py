"""Bound plans and the plan cache.

The paper: "In order to provide good performance for production
databases, it is important to retain the translations of queries into
query execution plans that directly invoke the relation and access path
operations, and to use the saved query execution plans whenever the
queries are subsequently executed.  This query binding approach avoids
the non-trivial costs of accessing the relation descriptions and
optimizing the query at query execution time ...  Invalidated execution
plans are automatically re-translated, by the common system, the next
time the query is invoked."

A :class:`BoundPlan` embeds the relation handles (descriptors) captured at
translation time, so execution touches no catalogs.  The dependency
tracker invalidates plans whose relations or access paths change; the
cache re-translates lazily on the next execution.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional, Set, Tuple

from ..services.predicate import Predicate

__all__ = ["BoundPlan", "CompiledPredicateCache", "PlanCache"]


class CompiledPredicateCache:
    """Per-plan cache of one compiled filter :class:`Predicate`.

    ``Predicate.from_bound`` walks the bound expression tree to collect the
    fields it references; doing that on every execution taxes each
    statement with work that only depends on the *plan*.  Plan objects own
    one of these caches per filter site, so the walk happens once per plan
    and parameterised executions get an O(1) clone carrying the new
    parameter values.  The cache lives inside the bound plan's payload, so
    the dependency tracker's invalidation (which discards the payload)
    discards the compiled predicate with it.
    """

    __slots__ = ("_compiled",)

    def __init__(self):
        self._compiled: Optional[Predicate] = None

    def get(self, expr, schema, params: Optional[dict],
            stats=None) -> Optional[Predicate]:
        """The compiled predicate for ``expr`` carrying ``params``."""
        if expr is None:
            return None
        compiled = self._compiled
        if compiled is None:
            compiled = Predicate.from_bound(expr, schema, None)
            self._compiled = compiled
            if stats is not None:
                stats.bump("executor.predicate_compilations")
        elif stats is not None:
            stats.bump("executor.predicate_cache_hits")
        if params:
            return compiled.with_params(params)
        return compiled


class BoundPlan:
    """One translated statement: kind, payload, and dependency tokens.

    ``versions`` records each referenced relation's descriptor version at
    translation time.  The cache re-validates them on every hit, so a
    descriptor change that slipped past token-based invalidation (or a
    plan shared across sessions racing a DDL) still forces re-translation
    instead of executing against a stale descriptor.
    """

    __slots__ = ("text", "kind", "payload", "dependencies", "valid",
                 "versions")

    def __init__(self, text: str, kind: str, payload,
                 dependencies: Set[str],
                 versions: Optional[Dict[str, int]] = None):
        self.text = text
        self.kind = kind
        self.payload = payload
        self.dependencies = set(dependencies)
        self.versions = dict(versions or {})
        self.valid = True

    def invalidate(self) -> None:
        self.valid = False

    def __repr__(self) -> str:
        flag = "valid" if self.valid else "INVALIDATED"
        return f"BoundPlan({self.kind}, {flag}, {self.text[:40]!r})"


class PlanCache:
    """Statement text → bound plan, with automatic re-translation."""

    def __init__(self, database):
        self.database = database
        self._plans: Dict[str, BoundPlan] = {}

    def execute(self, text: str,
                translate: Callable[[], Tuple[str, object, Set[str]]]
                ) -> BoundPlan:
        """Return a valid bound plan, translating (or re-translating) as
        needed."""
        stats = self.database.services.stats
        plan = self._plans.get(text)
        if plan is not None and plan.valid \
                and not self._versions_stale(plan, stats):
            stats.bump("plan_cache.hits")
            return plan
        if plan is not None:
            stats.bump("plan_cache.retranslations")
            self.database.dependencies.unregister(plan)
        kind, payload, dependencies = translate()
        plan = BoundPlan(text, kind, payload, dependencies,
                         self._capture_versions(dependencies))
        self.database.dependencies.register(plan, dependencies)
        self._plans[text] = plan
        stats.bump("plan_cache.translations")
        return plan

    def _capture_versions(self, dependencies: Set[str]) -> Dict[str, int]:
        """Descriptor versions of every relation the plan depends on."""
        versions: Dict[str, int] = {}
        catalog = self.database.catalog
        for token in dependencies:
            kind, __, name = token.partition(":")
            if kind != "relation":
                continue
            try:
                handle = catalog.handle(name)
            except Exception:
                continue  # dropped mid-translation; token invalidation rules
            versions[name] = handle.descriptor.version
        return versions

    def _versions_stale(self, plan: BoundPlan, stats) -> bool:
        """Whether a referenced descriptor changed since translation."""
        catalog = self.database.catalog
        for name, version in plan.versions.items():
            try:
                current = catalog.handle(name).descriptor.version
            except Exception:
                current = None  # relation dropped
            if current != version:
                stats.bump("plan_cache.version_mismatches")
                plan.invalidate()
                return True
        return False

    def forget(self, text: str) -> None:
        plan = self._plans.pop(text, None)
        if plan is not None:
            self.database.dependencies.unregister(plan)

    def clear(self) -> None:
        for plan in self._plans.values():
            self.database.dependencies.unregister(plan)
        self._plans.clear()

    def cached(self, text: str) -> Optional[BoundPlan]:
        return self._plans.get(text)

    def __len__(self) -> int:
        return len(self._plans)
