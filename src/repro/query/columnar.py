"""Columnar batch representation for set-at-a-time query processing.

The paper's cost-estimation interface has extensions reason about "the
I/O and CPU costs to return the record fields or keys that satisfy the
predicates"; this module attacks the CPU half.  Above the scan boundary,
rows arrive in blocks (``next_batch``) but were historically *processed*
one Python object at a time — a tree-walking predicate evaluation, a
``RecordView`` construction, and several ``expr.eval`` calls per row.  A
:class:`ColumnBatch` pivots one scan batch into columns exactly once, so
the kernel library (:mod:`.kernels`) can touch each *column* with a
constant number of Python-level operations per batch and let the
C-implemented primitives (``zip``, ``sum``, ``min``, comprehension
bytecode, ``array``) do the per-row work.

Three ingredients of the representation:

* **typed columns** — each column is materialised by one ``zip``
  transpose; INT/FLOAT columns can additionally be packed into
  ``array.array`` typed storage on request (dense numeric kernels);
* **null bitmaps** — per-column null masks computed once per batch, so
  SQL's NULL semantics cost one pass instead of one branch per operator
  per row;
* **selection vectors** — filters produce sorted lists of qualifying row
  ordinals instead of copying rows; materialisation happens late, only
  for the rows that survive every kernel (:meth:`ColumnBatch.take`).
"""

from __future__ import annotations

from array import array
from typing import Dict, List, Optional, Sequence, Tuple

__all__ = ["ColumnBatch"]

#: ``array`` typecodes for the schema types that pack into typed storage.
_TYPED_CODES = {"INT": "q", "FLOAT": "d"}


class ColumnBatch:
    """One scan batch pivoted into columns.

    ``rows`` is the batch in arrival order (tuples); columns, null
    bitmaps, and typed arrays are derived lazily and cached, so a kernel
    pipeline that only touches two columns never pays for the rest.
    """

    __slots__ = ("rows", "width", "_columns", "_nulls", "_typed")

    def __init__(self, rows: Sequence[Tuple], width: int):
        self.rows = rows
        self.width = width
        self._columns: Optional[List[tuple]] = None
        self._nulls: Dict[int, Optional[bytearray]] = {}
        self._typed: Dict[int, Optional[array]] = {}

    @classmethod
    def from_rows(cls, rows: Sequence[Tuple], schema=None) -> "ColumnBatch":
        """Wrap one batch of record tuples (no copying, no transpose yet)."""
        if schema is not None:
            width = len(schema)
        elif rows:
            width = len(rows[0])
        else:
            width = 0
        return cls(rows, width)

    def __len__(self) -> int:
        return len(self.rows)

    # -- columns ---------------------------------------------------------------
    def column(self, index: int) -> tuple:
        """Column ``index`` as a tuple (transposed once per batch)."""
        columns = self._columns
        if columns is None:
            if self.rows:
                # One C-level transpose materialises every column.
                columns = list(zip(*self.rows))
            else:
                columns = [()] * self.width
            self._columns = columns
        return columns[index]

    def null_mask(self, index: int) -> Optional[bytearray]:
        """Per-row null bitmap for one column, or ``None`` when the column
        holds no NULLs (the common case pays one membership test)."""
        try:
            return self._nulls[index]
        except KeyError:
            pass
        column = self.column(index)
        if None in column:
            mask = bytearray(v is None for v in column)
        else:
            mask = None
        self._nulls[index] = mask
        return mask

    def typed_column(self, index: int, type_code: str) -> Optional[array]:
        """The column packed into ``array.array`` typed storage, or ``None``
        when the type does not pack (strings, NULLs present, mixed)."""
        try:
            return self._typed[index]
        except KeyError:
            pass
        typed: Optional[array] = None
        code = _TYPED_CODES.get(type_code)
        if code is not None and self.null_mask(index) is None:
            try:
                typed = array(code, self.column(index))
            except (TypeError, OverflowError):
                typed = None
        self._typed[index] = typed
        return typed

    # -- late materialisation -------------------------------------------------
    def take(self, selection: Sequence[int]) -> List[Tuple]:
        """Materialise the selected rows (in selection order)."""
        rows = self.rows
        return [rows[i] for i in selection]

    def gather(self, selection: Optional[Sequence[int]],
               index: int) -> list:
        """Values of one column restricted to a selection vector."""
        column = self.column(index)
        if selection is None:
            return list(column)
        return [column[i] for i in selection]

    def __repr__(self) -> str:
        return f"ColumnBatch({len(self.rows)} rows x {self.width} cols)"
