"""Pluggable kernel backends for the columnar operator IR.

The IR (:mod:`.ir`) describes *what* column-level work a plan performs;
a backend decides *how* each vector primitive runs.  The contract is
deliberately narrow — lists of Python values in, lists of Python values
out, ``None`` meaning SQL NULL throughout — so a backend can be swapped
behind the same compiled program with zero planner changes and
bit-identical results.

Two backends ship:

* :class:`PythonBackend` — the default.  Per-row work stays inside
  C-implemented primitives (comprehension bytecode, ``zip``, ``sorted``,
  ``dict``), exactly like the PR-5 kernel library.
* :class:`NumpyBackend` — optional (``pip install repro[numpy]``).  It
  packs homogeneous columns into ``ndarray`` storage per call and runs
  comparisons, float arithmetic, stable sorts, and the hash-join
  bucketize step through NumPy, falling back to the Python primitive
  whenever a column does not pack or the operation's SQL semantics
  (NULL propagation, exact int arithmetic, division errors) cannot be
  reproduced exactly.  Results are bit-identical by construction: every
  value crossing the boundary round-trips through ``ndarray.tolist()``,
  aggregate folds reuse the shared sequential-order kernels, and any
  case NumPy would answer differently (int overflow, division by zero,
  mixed-type columns) is delegated to the Python primitive instead.

Backend selection: ``Database(kernel_backend=...)`` accepts ``"python"``,
``"numpy"``, a backend instance, or ``None`` for auto-detection (NumPy
when importable, unless ``REPRO_DISABLE_NUMPY`` is set — the CI leg that
proves the pure-Python fallback sets it).
"""

from __future__ import annotations

import os
from typing import Dict, List, Optional, Sequence, Tuple

from ..errors import PredicateError

__all__ = ["KernelBackend", "PythonBackend", "NumpyBackend",
           "numpy_available", "resolve"]

#: Environment switch: pretend NumPy is absent (CI fallback leg, tests).
_DISABLE_ENV = "REPRO_DISABLE_NUMPY"


def numpy_available() -> bool:
    """Whether the NumPy backend can be used in this process."""
    if os.environ.get(_DISABLE_ENV):
        return False
    try:
        import numpy  # noqa: F401
    except Exception:
        return False
    return True


def resolve(spec=None) -> "KernelBackend":
    """Resolve a ``Database(kernel_backend=...)`` argument to a backend.

    ``None`` auto-detects (NumPy when available), strings name a backend,
    and instances pass through unchanged.
    """
    if spec is None:
        return NumpyBackend() if numpy_available() else PythonBackend()
    if isinstance(spec, KernelBackend):
        return spec
    if isinstance(spec, str):
        name = spec.lower()
        if name == "python":
            return PythonBackend()
        if name == "numpy":
            if not numpy_available():
                raise PredicateError(
                    "kernel_backend='numpy' requested but NumPy is not "
                    "importable (install repro[numpy])")
            return NumpyBackend()
        raise PredicateError(f"unknown kernel backend {spec!r}")
    raise PredicateError(f"cannot resolve kernel backend from {spec!r}")


class KernelBackend:
    """The vector-primitive protocol the IR programs against.

    Every method takes and returns plain Python sequences; ``None``
    elements are SQL NULL.  Truth vectors hold ``True``/``False``/``None``
    (three-valued logic).  Selection vectors are sorted lists of row
    ordinals.
    """

    name = "abstract"

    # -- scalar expression primitives ----------------------------------
    def arith(self, op: str, left, right) -> list:
        raise NotImplementedError

    def neg(self, values) -> list:
        raise NotImplementedError

    def compare(self, op: str, left, right) -> list:
        raise NotImplementedError

    def logical_not(self, values) -> list:
        raise NotImplementedError

    def logical_and(self, vectors: Sequence[list]) -> list:
        raise NotImplementedError

    def logical_or(self, vectors: Sequence[list]) -> list:
        raise NotImplementedError

    def is_null(self, values, negated: bool) -> list:
        raise NotImplementedError

    def between(self, values, lo, hi) -> list:
        raise NotImplementedError

    def in_list(self, values, members: set, has_null: bool) -> list:
        raise NotImplementedError

    def like(self, values, regex) -> list:
        raise NotImplementedError

    def apply(self, name: str, fn, arg_vectors: Sequence[list]) -> list:
        raise NotImplementedError

    # -- selection / materialisation -----------------------------------
    def select_true(self, values) -> List[int]:
        raise NotImplementedError

    def gather(self, values, selection: Sequence[int]) -> list:
        raise NotImplementedError

    # -- join / group primitives ---------------------------------------
    def hash_build(self, keys) -> Dict[object, List[int]]:
        raise NotImplementedError

    def hash_probe(self, table: Dict[object, List[int]], keys
                   ) -> Tuple[List[int], List[int]]:
        raise NotImplementedError

    def merge_pairs(self, left_keys, right_keys
                    ) -> Tuple[List[int], List[int]]:
        raise NotImplementedError

    def group_runs(self, keys) -> Tuple[List[int], List[int]]:
        raise NotImplementedError


def _broadcast(value, n: int) -> list:
    return [value] * n


class PythonBackend(KernelBackend):
    """Pure-Python vector primitives (the default backend).

    Each method is one Python-level dispatch per batch; the per-row work
    runs inside C-implemented primitives.  This is the reference
    implementation every other backend must match bit-for-bit.
    """

    name = "python"

    # -- scalar expression primitives ----------------------------------
    def arith(self, op: str, left, right) -> list:
        try:
            if op == "+":
                return [None if a is None or b is None else a + b
                        for a, b in zip(left, right)]
            if op == "-":
                return [None if a is None or b is None else a - b
                        for a, b in zip(left, right)]
            if op == "*":
                return [None if a is None or b is None else a * b
                        for a, b in zip(left, right)]
            if op == "/":
                return [None if a is None or b is None else a / b
                        for a, b in zip(left, right)]
            if op == "%":
                return [None if a is None or b is None else a % b
                        for a, b in zip(left, right)]
        except (TypeError, ZeroDivisionError) as exc:
            raise PredicateError(f"cannot evaluate vector {op}: {exc}") \
                from exc
        raise PredicateError(f"unknown arithmetic operator {op!r}")

    def neg(self, values) -> list:
        try:
            return [None if v is None else -v for v in values]
        except TypeError as exc:
            raise PredicateError(f"cannot negate: {exc}") from exc

    def compare(self, op: str, left, right) -> list:
        try:
            if op == "=":
                return [None if a is None or b is None else a == b
                        for a, b in zip(left, right)]
            if op == "!=":
                return [None if a is None or b is None else a != b
                        for a, b in zip(left, right)]
            if op == "<":
                return [None if a is None or b is None else a < b
                        for a, b in zip(left, right)]
            if op == "<=":
                return [None if a is None or b is None else a <= b
                        for a, b in zip(left, right)]
            if op == ">":
                return [None if a is None or b is None else a > b
                        for a, b in zip(left, right)]
            if op == ">=":
                return [None if a is None or b is None else a >= b
                        for a, b in zip(left, right)]
        except TypeError as exc:
            raise PredicateError(f"cannot compare vector {op}: {exc}") \
                from exc
        raise PredicateError(f"unknown comparison operator {op!r}")

    def logical_not(self, values) -> list:
        return [None if v is None else not v for v in values]

    def logical_and(self, vectors: Sequence[list]) -> list:
        # SQL three-valued AND: False dominates, then unknown.
        out = list(vectors[0])
        for vector in vectors[1:]:
            out = [False if a is False or b is False
                   else (None if a is None or b is None else True)
                   for a, b in zip(out, vector)]
        return out

    def logical_or(self, vectors: Sequence[list]) -> list:
        out = list(vectors[0])
        for vector in vectors[1:]:
            out = [True if a is True or b is True
                   else (None if a is None or b is None else False)
                   for a, b in zip(out, vector)]
        return out

    def is_null(self, values, negated: bool) -> list:
        if negated:
            return [v is not None for v in values]
        return [v is None for v in values]

    def between(self, values, lo, hi) -> list:
        try:
            return [None if v is None or a is None or b is None
                    else a <= v <= b
                    for v, a, b in zip(values, lo, hi)]
        except TypeError as exc:
            raise PredicateError(f"cannot range-compare: {exc}") from exc

    def in_list(self, values, members: set, has_null: bool) -> list:
        if has_null:
            # ``x IN (..., NULL)``: a match is True, a miss is unknown.
            return [None if v is None else (True if v in members else None)
                    for v in values]
        return [None if v is None else v in members for v in values]

    def like(self, values, regex) -> list:
        out = []
        match = regex.match
        for v in values:
            if v is None:
                out.append(None)
            elif not isinstance(v, str):
                raise PredicateError(f"LIKE needs a string, got {v!r}")
            else:
                out.append(match(v) is not None)
        return out

    def apply(self, name: str, fn, arg_vectors: Sequence[list]) -> list:
        out = []
        for args in zip(*arg_vectors):
            if any(a is None for a in args):
                out.append(None)
                continue
            try:
                out.append(fn(*args))
            except PredicateError:
                raise
            except Exception as exc:
                raise PredicateError(
                    f"function {name}({list(args)!r}) failed: {exc}") \
                    from exc
        return out

    # -- selection / materialisation -----------------------------------
    def select_true(self, values) -> List[int]:
        return [i for i, v in enumerate(values) if v is True]

    def gather(self, values, selection: Sequence[int]) -> list:
        return [values[i] for i in selection]

    # -- join / group primitives ---------------------------------------
    def hash_build(self, keys) -> Dict[object, List[int]]:
        """Key → build-side ordinals (insertion order); NULL keys never
        join, so they are left out of the table."""
        table: Dict[object, List[int]] = {}
        setdefault = table.setdefault
        for ordinal, key in enumerate(keys):
            if key is not None:
                setdefault(key, []).append(ordinal)
        return table

    def hash_probe(self, table: Dict[object, List[int]], keys
                   ) -> Tuple[List[int], List[int]]:
        """Parallel (probe ordinal, build ordinal) match lists, probe-major
        with build matches in insertion order."""
        probe_out: List[int] = []
        build_out: List[int] = []
        get = table.get
        for ordinal, key in enumerate(keys):
            if key is None:
                continue
            bucket = get(key)
            if bucket:
                probe_out.extend([ordinal] * len(bucket))
                build_out.extend(bucket)
        return probe_out, build_out

    def merge_pairs(self, left_keys, right_keys
                    ) -> Tuple[List[int], List[int]]:
        """Equi-join two key vectors that already arrive sorted ascending:
        detect runs of equal keys on each side and emit the cross product
        of matching runs, left-major."""
        left_out: List[int] = []
        right_out: List[int] = []
        i = j = 0
        nl, nr = len(left_keys), len(right_keys)
        while i < nl and j < nr:
            lk = left_keys[i]
            if lk is None:
                i += 1
                continue
            rk = right_keys[j]
            if rk is None:
                j += 1
                continue
            if lk < rk:
                i += 1
            elif rk < lk:
                j += 1
            else:
                i_end = i + 1
                while i_end < nl and left_keys[i_end] == lk:
                    i_end += 1
                j_end = j + 1
                while j_end < nr and right_keys[j_end] == rk:
                    j_end += 1
                span = j_end - j
                for li in range(i, i_end):
                    left_out.extend([li] * span)
                    right_out.extend(range(j, j_end))
                i, j = i_end, j_end
        return left_out, right_out

    def group_runs(self, keys) -> Tuple[List[int], List[int]]:
        """Sort-based grouping: a stable order over the key vector plus
        the start offset of each run of equal keys.

        The sort key is ``repr`` so mixed-type and NULL keys order
        deterministically; stability preserves arrival order within each
        group, which keeps float folds bit-identical to the row path.
        """
        n = len(keys)
        reprs = list(map(repr, keys))
        order = sorted(range(n), key=reprs.__getitem__)
        ordered = [keys[i] for i in order]
        starts = [0] if n else []
        starts.extend(i for i in range(1, n)
                      if ordered[i] != ordered[i - 1])
        return order, starts


class NumpyBackend(PythonBackend):
    """NumPy-accelerated primitives behind the same IR.

    Falls back to the Python primitive per call whenever a column does
    not pack into a homogeneous ``ndarray`` or NumPy's semantics would
    diverge from SQL's (int overflow wraps, ``/0`` yields ``inf``), so
    swapping this backend in can change only the speed of an answer.
    """

    name = "numpy"

    def __init__(self):
        import numpy
        self._np = numpy

    # -- packing -------------------------------------------------------
    def _pack(self, values, numeric_only: bool = False):
        """``values`` as a homogeneous ndarray, or ``None``.

        Only exact-typed columns pack: all-int (int64 range), all-float,
        or — unless ``numeric_only`` — all-str.  Mixed int/float columns
        are refused because packing would turn exact int arithmetic into
        float arithmetic and break bit-identity with the row path.
        """
        np = self._np
        if isinstance(values, np.ndarray):
            return values
        if not values:
            return None
        first_type = type(values[0])
        if first_type is int:
            if any(type(v) is not int for v in values):
                return None
            try:
                return np.asarray(values, dtype=np.int64)
            except OverflowError:
                return None
        if first_type is float:
            if any(type(v) is not float for v in values):
                return None
            return np.asarray(values, dtype=np.float64)
        if first_type is str and not numeric_only:
            if any(type(v) is not str for v in values):
                return None
            return np.asarray(values)
        return None

    # -- scalar expression primitives ----------------------------------
    def arith(self, op: str, left, right) -> list:
        np = self._np
        lhs = self._pack(left, numeric_only=True)
        rhs = self._pack(right, numeric_only=True) if lhs is not None \
            else None
        # Exact-int arithmetic must stay in Python (int64 overflow wraps
        # silently); float results are IEEE-754 either way.
        if lhs is None or rhs is None \
                or (lhs.dtype.kind != "f" and rhs.dtype.kind != "f"):
            return super().arith(op, left, right)
        if op == "+":
            return (lhs + rhs).tolist()
        if op == "-":
            return (lhs - rhs).tolist()
        if op == "*":
            return (lhs * rhs).tolist()
        if op in ("/", "%"):
            if bool((rhs == 0).any()):
                # The row path raises through ZeroDivisionError; NumPy
                # would answer inf/nan.  Delegate for identical errors.
                return super().arith(op, left, right)
            divided = lhs / rhs if op == "/" else np.mod(lhs, rhs)
            return divided.tolist()
        return super().arith(op, left, right)

    def compare(self, op: str, left, right) -> list:
        lhs = self._pack(left)
        rhs = self._pack(right) if lhs is not None else None
        # Mixed kinds fall back: int64 vs float64 comparison would route
        # through lossy float conversion (Python compares exactly).
        if lhs is None or rhs is None or lhs.dtype.kind != rhs.dtype.kind:
            return super().compare(op, left, right)
        if op == "=":
            return (lhs == rhs).tolist()
        if op == "!=":
            return (lhs != rhs).tolist()
        if op == "<":
            return (lhs < rhs).tolist()
        if op == "<=":
            return (lhs <= rhs).tolist()
        if op == ">":
            return (lhs > rhs).tolist()
        if op == ">=":
            return (lhs >= rhs).tolist()
        return super().compare(op, left, right)

    # -- selection / materialisation -----------------------------------
    def select_true(self, values) -> List[int]:
        np = self._np
        if values and all(type(v) is bool for v in values):
            return np.nonzero(np.asarray(values, dtype=bool))[0].tolist()
        return super().select_true(values)

    def gather(self, values, selection: Sequence[int]) -> list:
        packed = self._pack(values)
        if packed is None or not selection:
            return super().gather(values, selection)
        np = self._np
        return packed[np.asarray(selection, dtype=np.intp)].tolist()

    # -- join / group primitives ---------------------------------------
    def hash_probe(self, table: Dict[object, List[int]], keys
                   ) -> Tuple[List[int], List[int]]:
        """Sort + bucketize (TQP-style): binary-search each probe key in
        the sorted build-key vector and expand the hit ranges to pairs —
        four NumPy calls replace the per-row dict probes."""
        np = self._np
        probe = self._pack(keys)
        if probe is None or not table:
            return super().hash_probe(table, keys)
        build_keys = list(table.keys())
        packed_build = self._pack(build_keys)
        if packed_build is None \
                or packed_build.dtype.kind != probe.dtype.kind:
            return super().hash_probe(table, keys)
        order = np.argsort(packed_build, kind="stable")
        sorted_build = packed_build[order]
        lo = np.searchsorted(sorted_build, probe, side="left")
        hi = np.searchsorted(sorted_build, probe, side="right")
        counts = hi - lo
        if not int(counts.sum()):
            return [], []
        probe_idx = np.repeat(np.arange(len(keys)), counts)
        # Offsets of each match inside its probe row's [lo, hi) range.
        total = int(counts.sum())
        step = np.arange(total) - np.repeat(
            np.concatenate(([0], np.cumsum(counts)[:-1])), counts)
        bucket_pos = np.repeat(lo, counts) + step
        bucket_keys = order[bucket_pos]
        # Expand each matched *distinct key* to its build ordinals, in
        # insertion order (the table's buckets), probe-major.
        probe_out: List[int] = []
        build_out: List[int] = []
        for p, b in zip(probe_idx.tolist(), bucket_keys.tolist()):
            bucket = table[build_keys[b]]
            probe_out.extend([p] * len(bucket))
            build_out.extend(bucket)
        return probe_out, build_out

    def group_runs(self, keys) -> Tuple[List[int], List[int]]:
        np = self._np
        packed = self._pack(keys)
        if packed is None:
            return super().group_runs(keys)
        order = np.argsort(packed, kind="stable")
        ordered = packed[order]
        if len(ordered):
            starts = [0]
            starts.extend(
                (np.nonzero(ordered[1:] != ordered[:-1])[0] + 1).tolist())
        else:
            starts = []
        return order.tolist(), starts
