"""Query AST.

The statement forms accepted by the mini-SQL front end.  Expressions reuse
the common predicate evaluator's :mod:`repro.services.predicate` AST, so
the same expression nodes flow from the parser through planning into
storage-level filtering.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from ..services.predicate import Expr

__all__ = ["SelectItem", "JoinClause", "SelectStmt", "InsertStmt",
           "UpdateStmt", "DeleteStmt", "CreateTableStmt", "DropTableStmt",
           "CreateIndexStmt", "DropIndexStmt", "Statement"]


class Statement:
    """Base class for parsed statements."""


class SelectItem:
    """One output column: an expression plus an optional alias.

    ``aggregate`` is set ("count" | "sum" | "min" | "max") when the item is
    an aggregate call; ``expr`` is then the argument (None for COUNT(*)).
    """

    __slots__ = ("expr", "alias", "aggregate")

    def __init__(self, expr: Optional[Expr], alias: Optional[str] = None,
                 aggregate: Optional[str] = None):
        self.expr = expr
        self.alias = alias
        self.aggregate = aggregate

    def __repr__(self) -> str:
        if self.aggregate:
            inner = self.expr.to_text() if self.expr is not None else "*"
            return f"SelectItem({self.aggregate}({inner}))"
        return f"SelectItem({self.expr.to_text()})"


class JoinClause:
    """``JOIN <table> [AS alias] ON <left col> = <right col>``."""

    __slots__ = ("table", "alias", "left_column", "right_column")

    def __init__(self, table: str, alias: Optional[str],
                 left_column: str, right_column: str):
        self.table = table
        self.alias = alias or table
        self.left_column = left_column
        self.right_column = right_column

    def __repr__(self) -> str:
        return (f"JoinClause({self.table} ON {self.left_column} = "
                f"{self.right_column})")


class SelectStmt(Statement):
    __slots__ = ("items", "star", "table", "alias", "join", "where",
                 "order_by", "limit", "group_by")

    def __init__(self, items: Sequence[SelectItem], star: bool, table: str,
                 alias: Optional[str] = None,
                 join: Optional[JoinClause] = None,
                 where: Optional[Expr] = None,
                 order_by: Optional[List[Tuple[str, bool]]] = None,
                 limit: Optional[int] = None,
                 group_by: Optional[str] = None):
        self.items = list(items)
        self.star = star
        self.table = table
        self.alias = alias or table
        self.join = join
        self.where = where
        self.order_by = order_by or []
        self.limit = limit
        self.group_by = group_by


class InsertStmt(Statement):
    __slots__ = ("table", "columns", "rows")

    def __init__(self, table: str, columns: Optional[List[str]],
                 rows: List[List[Expr]]):
        self.table = table
        self.columns = columns
        self.rows = rows


class UpdateStmt(Statement):
    __slots__ = ("table", "assignments", "where")

    def __init__(self, table: str, assignments: Dict[str, Expr],
                 where: Optional[Expr]):
        self.table = table
        self.assignments = assignments
        self.where = where


class DeleteStmt(Statement):
    __slots__ = ("table", "where")

    def __init__(self, table: str, where: Optional[Expr]):
        self.table = table
        self.where = where


class CreateTableStmt(Statement):
    __slots__ = ("name", "columns", "storage_method", "attributes")

    def __init__(self, name: str, columns: List[Tuple[str, str, bool]],
                 storage_method: str = "heap",
                 attributes: Optional[dict] = None):
        self.name = name
        self.columns = columns
        self.storage_method = storage_method
        self.attributes = attributes or {}


class DropTableStmt(Statement):
    __slots__ = ("name",)

    def __init__(self, name: str):
        self.name = name


class CreateIndexStmt(Statement):
    __slots__ = ("name", "table", "columns", "unique", "kind")

    def __init__(self, name: str, table: str, columns: List[str],
                 unique: bool = False, kind: str = "btree_index"):
        self.name = name
        self.table = table
        self.columns = columns
        self.unique = unique
        self.kind = kind


class DropIndexStmt(Statement):
    __slots__ = ("name",)

    def __init__(self, name: str):
        self.name = name
