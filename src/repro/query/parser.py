"""Mini-SQL statement parser.

Grammar (case-insensitive keywords)::

    SELECT {* | item [, item ...]} FROM table [alias]
        [JOIN table [alias] ON qual.col = qual.col]
        [WHERE predicate] [GROUP BY column]
        [ORDER BY column [ASC|DESC] [, ...]] [LIMIT n]
    item        := expr [AS alias] | COUNT(*) | COUNT(expr) | SUM(expr)
                   | MIN(expr) | MAX(expr)
    INSERT INTO table [(col, ...)] VALUES (expr, ...) [, (expr, ...) ...]
    UPDATE table SET col = expr [, ...] [WHERE predicate]
    DELETE FROM table [WHERE predicate]
    CREATE TABLE name (col TYPE [NOT NULL], ...) [USING method]
    DROP TABLE name
    CREATE [UNIQUE] INDEX name ON table (col, ...) [USING kind]
    DROP INDEX name

Expressions (WHERE, SET values, select items) are parsed by the common
predicate evaluator's parser, so the same syntax works in DDL check
constraints, `Relation.scan(where=...)`, and queries.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from ..errors import QueryError
from ..services.predicate import Expr, _Tokens, _parse_or
from .ast import (CreateIndexStmt, CreateTableStmt, DeleteStmt,
                  DropIndexStmt, DropTableStmt, InsertStmt, JoinClause,
                  SelectItem, SelectStmt, Statement, UpdateStmt)

__all__ = ["parse_statement"]

_AGGREGATES = ("count", "sum", "min", "max", "avg")
_TYPES = ("INT", "FLOAT", "STRING", "BOOL", "BYTES", "BOX")


def parse_statement(text: str) -> Statement:
    """Parse one statement (an optional trailing ';' is accepted)."""
    tokens = _Tokens(text)
    statement = _dispatch(tokens)
    tokens.accept("op", ";")
    kind, value = tokens.peek()
    if kind != "eof":
        raise QueryError(f"trailing input {value!r} in {text!r}")
    return statement


def _dispatch(tokens: _Tokens) -> Statement:
    kind, value = tokens.peek()
    if kind != "name":
        raise QueryError(f"expected a statement keyword, got {value!r}")
    head = value.lower()
    if head == "select":
        return _parse_select(tokens)
    if head == "insert":
        return _parse_insert(tokens)
    if head == "update":
        return _parse_update(tokens)
    if head == "delete":
        return _parse_delete(tokens)
    if head == "create":
        return _parse_create(tokens)
    if head == "drop":
        return _parse_drop(tokens)
    raise QueryError(f"unknown statement {value!r}")


# ---------------------------------------------------------------------------
# helpers over the shared token stream
# ---------------------------------------------------------------------------

def _keyword(tokens: _Tokens, word: str) -> None:
    kind, value = tokens.next()
    if kind not in ("name", "kw") or value.lower() != word:
        raise QueryError(f"expected {word.upper()!r}, got {value!r}")


def _accept_keyword(tokens: _Tokens, word: str) -> bool:
    kind, value = tokens.peek()
    if kind in ("name", "kw") and value.lower() == word:
        tokens.next()
        return True
    return False


def _peek_keyword(tokens: _Tokens) -> Optional[str]:
    kind, value = tokens.peek()
    if kind in ("name", "kw"):
        return value.lower()
    return None


def _identifier(tokens: _Tokens) -> str:
    kind, value = tokens.next()
    if kind != "name":
        raise QueryError(f"expected an identifier, got {value!r}")
    return value.lower()


def _qualified(tokens: _Tokens) -> str:
    name = _identifier(tokens)
    if tokens.accept("op", "."):
        return f"{name}.{_identifier(tokens)}"
    return name


def _expression(tokens: _Tokens) -> Expr:
    return _parse_or(tokens)


# ---------------------------------------------------------------------------
# SELECT
# ---------------------------------------------------------------------------

_CLAUSE_WORDS = {"from", "where", "group", "order", "limit", "join", "on",
                 "as", "asc", "desc", "by", "using", "values", "set"}


def _parse_select(tokens: _Tokens) -> SelectStmt:
    _keyword(tokens, "select")
    star = False
    items: List[SelectItem] = []
    if tokens.accept("op", "*"):
        star = True
    else:
        items.append(_parse_select_item(tokens))
        while tokens.accept("op", ","):
            items.append(_parse_select_item(tokens))
    _keyword(tokens, "from")
    table = _identifier(tokens)
    alias = None
    if _peek_keyword(tokens) not in _CLAUSE_WORDS \
            and tokens.peek()[0] == "name":
        alias = _identifier(tokens)
    join = None
    if _accept_keyword(tokens, "join"):
        join_table = _identifier(tokens)
        join_alias = None
        if _peek_keyword(tokens) not in _CLAUSE_WORDS \
                and tokens.peek()[0] == "name":
            join_alias = _identifier(tokens)
        _keyword(tokens, "on")
        left = _qualified(tokens)
        tokens.expect("op", "=")
        right = _qualified(tokens)
        join = JoinClause(join_table, join_alias, left, right)
    where = None
    if _accept_keyword(tokens, "where"):
        where = _expression(tokens)
    group_by = None
    if _accept_keyword(tokens, "group"):
        _keyword(tokens, "by")
        group_by = _qualified(tokens)
    order_by: List[Tuple[str, bool]] = []
    if _accept_keyword(tokens, "order"):
        _keyword(tokens, "by")
        while True:
            column = _qualified(tokens)
            ascending = True
            if _accept_keyword(tokens, "desc"):
                ascending = False
            else:
                _accept_keyword(tokens, "asc")
            order_by.append((column, ascending))
            if not tokens.accept("op", ","):
                break
    limit = None
    if _accept_keyword(tokens, "limit"):
        kind, value = tokens.next()
        if kind != "number" or "." in value:
            raise QueryError(f"LIMIT expects an integer, got {value!r}")
        limit = int(value)
    return SelectStmt(items, star, table, alias, join, where, order_by,
                      limit, group_by)


def _parse_select_item(tokens: _Tokens) -> SelectItem:
    kind, value = tokens.peek()
    if kind == "name" and value.lower() in _AGGREGATES:
        # Look ahead for '(' to distinguish an aggregate from a column that
        # happens to be called e.g. "count".
        save = tokens.pos
        aggregate = value.lower()
        tokens.next()
        if tokens.accept("op", "("):
            if aggregate == "count" and tokens.accept("op", "*"):
                tokens.expect("op", ")")
                expr = None
            else:
                expr = _expression(tokens)
                tokens.expect("op", ")")
            alias = None
            if _accept_keyword(tokens, "as"):
                alias = _identifier(tokens)
            return SelectItem(expr, alias, aggregate)
        tokens.pos = save
    expr = _expression(tokens)
    alias = None
    if _accept_keyword(tokens, "as"):
        alias = _identifier(tokens)
    return SelectItem(expr, alias)


# ---------------------------------------------------------------------------
# INSERT / UPDATE / DELETE
# ---------------------------------------------------------------------------

def _parse_insert(tokens: _Tokens) -> InsertStmt:
    _keyword(tokens, "insert")
    _keyword(tokens, "into")
    table = _identifier(tokens)
    columns = None
    if tokens.accept("op", "("):
        columns = [_identifier(tokens)]
        while tokens.accept("op", ","):
            columns.append(_identifier(tokens))
        tokens.expect("op", ")")
    _keyword(tokens, "values")
    rows = [_parse_value_row(tokens)]
    while tokens.accept("op", ","):
        rows.append(_parse_value_row(tokens))
    return InsertStmt(table, columns, rows)


def _parse_value_row(tokens: _Tokens) -> List[Expr]:
    tokens.expect("op", "(")
    row = [_expression(tokens)]
    while tokens.accept("op", ","):
        row.append(_expression(tokens))
    tokens.expect("op", ")")
    return row


def _parse_update(tokens: _Tokens) -> UpdateStmt:
    _keyword(tokens, "update")
    table = _identifier(tokens)
    _keyword(tokens, "set")
    assignments = {}
    while True:
        column = _identifier(tokens)
        tokens.expect("op", "=")
        assignments[column] = _expression(tokens)
        if not tokens.accept("op", ","):
            break
    where = None
    if _accept_keyword(tokens, "where"):
        where = _expression(tokens)
    return UpdateStmt(table, assignments, where)


def _parse_delete(tokens: _Tokens) -> DeleteStmt:
    _keyword(tokens, "delete")
    _keyword(tokens, "from")
    table = _identifier(tokens)
    where = None
    if _accept_keyword(tokens, "where"):
        where = _expression(tokens)
    return DeleteStmt(table, where)


# ---------------------------------------------------------------------------
# DDL
# ---------------------------------------------------------------------------

def _parse_create(tokens: _Tokens) -> Statement:
    _keyword(tokens, "create")
    unique = _accept_keyword(tokens, "unique")
    word = _peek_keyword(tokens)
    if word == "table":
        if unique:
            raise QueryError("UNIQUE applies to indexes, not tables")
        return _parse_create_table(tokens)
    if word == "index":
        return _parse_create_index(tokens, unique)
    raise QueryError(f"expected TABLE or INDEX after CREATE, got {word!r}")


def _parse_create_table(tokens: _Tokens) -> CreateTableStmt:
    _keyword(tokens, "table")
    name = _identifier(tokens)
    tokens.expect("op", "(")
    columns = []
    while True:
        column = _identifier(tokens)
        kind, type_word = tokens.next()
        if kind != "name" or type_word.upper() not in _TYPES:
            raise QueryError(
                f"unknown column type {type_word!r} (expected one of "
                f"{_TYPES})")
        nullable = True
        if _accept_keyword(tokens, "not"):
            _keyword(tokens, "null")
            nullable = False
        columns.append((column, type_word.upper(), nullable))
        if not tokens.accept("op", ","):
            break
    tokens.expect("op", ")")
    storage_method = "heap"
    if _accept_keyword(tokens, "using"):
        storage_method = _identifier(tokens)
    return CreateTableStmt(name, columns, storage_method)


def _parse_create_index(tokens: _Tokens, unique: bool) -> CreateIndexStmt:
    _keyword(tokens, "index")
    name = _identifier(tokens)
    _keyword(tokens, "on")
    table = _identifier(tokens)
    tokens.expect("op", "(")
    columns = [_identifier(tokens)]
    while tokens.accept("op", ","):
        columns.append(_identifier(tokens))
    tokens.expect("op", ")")
    kind = "btree_index"
    if _accept_keyword(tokens, "using"):
        kind = _identifier(tokens)
    return CreateIndexStmt(name, table, columns, unique, kind)


def _parse_drop(tokens: _Tokens) -> Statement:
    _keyword(tokens, "drop")
    word = _peek_keyword(tokens)
    if word == "table":
        tokens.next()
        return DropTableStmt(_identifier(tokens))
    if word == "index":
        tokens.next()
        return DropIndexStmt(_identifier(tokens))
    raise QueryError(f"expected TABLE or INDEX after DROP, got {word!r}")
