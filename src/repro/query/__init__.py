"""Query layer: cost-based access path selection and cached bound plans."""

from __future__ import annotations

from .cost import AccessCost, EligiblePredicate

__all__ = ["AccessCost", "EligiblePredicate"]
