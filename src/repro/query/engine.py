"""The query engine: parse → (cached) bind → execute.

Ties together the mini-SQL parser, the cost-based planner, the plan
cache with dependency-driven invalidation, and the tuple-at-a-time
executor.  DDL statements run immediately through the data definition
layer (they are never cached); DML statements are translated once and
re-executed from their bound plans.
"""

from __future__ import annotations

from typing import List, Optional, Set, Tuple

from ..core.authorization import DELETE, INSERT, SELECT, UPDATE
from ..core.dependency import attachment_token, relation_token
from ..errors import QueryError
from .ast import (CreateIndexStmt, CreateTableStmt, DeleteStmt,
                  DropIndexStmt, DropTableStmt, InsertStmt, SelectStmt,
                  UpdateStmt)
from .executor import Executor
from .parser import parse_statement
from .planner import SelectPlan, plan_select, plan_table_access
from .plans import PlanCache

__all__ = ["QueryEngine"]


class QueryEngine:
    """One per database; owns the plan cache and the executor."""

    def __init__(self, database):
        self.database = database
        self.cache = PlanCache(database)
        self.executor = Executor(database)

    # ------------------------------------------------------------------
    # Entry points
    # ------------------------------------------------------------------
    def execute(self, text: str, params: Optional[dict] = None,
                scope=None):
        """Run a statement.  ``scope`` is the caller's transaction and
        principal scope — a Session, or the database itself (the default);
        the plan cache is shared across all scopes."""
        statement_text = text.strip()
        head = statement_text.split(None, 1)[0].lower() if statement_text \
            else ""
        if head in ("create", "drop"):
            return self._execute_ddl(statement_text)
        if head == "select":
            return self._execute_select(statement_text, params, scope)
        if head == "insert":
            return self._execute_insert(statement_text, params, scope)
        if head == "update":
            return self._execute_update(statement_text, params, scope)
        if head == "delete":
            return self._execute_delete(statement_text, params, scope)
        raise QueryError(f"unsupported statement: {statement_text[:40]!r}")

    def explain(self, text: str, scope=None) -> dict:
        """Plan (through the cache) and describe the chosen routes."""
        statement_text = text.strip()
        db = scope if scope is not None else self.database
        with db.autocommit() as ctx:
            plan = self.cache.execute(
                statement_text,
                lambda: self._translate_select(ctx, statement_text))
            if plan.kind != "select":
                raise QueryError("EXPLAIN supports SELECT statements")
            return plan.payload.explain()

    # ------------------------------------------------------------------
    # SELECT
    # ------------------------------------------------------------------
    def _execute_select(self, text: str, params, scope=None) -> List[Tuple]:
        db = scope if scope is not None else self.database
        with db.autocommit() as ctx:
            plan = self.cache.execute(
                text, lambda: self._translate_select(ctx, text))
            payload: SelectPlan = plan.payload
            for alias, handle in payload.handles.items():
                db.authorization.check(db.principal, handle.name, SELECT)
            return self.executor.run_select(ctx, payload, params)

    def _translate_select(self, ctx, text: str):
        statement = parse_statement(text)
        if not isinstance(statement, SelectStmt):
            raise QueryError(f"expected a SELECT statement: {text[:40]!r}")
        plan = plan_select(ctx, statement, text)
        dependencies: Set[str] = {relation_token(h.name)
                                  for h in plan.handles.values()}
        if not plan.access.is_storage:
            dependencies.add(attachment_token(plan.access.access[2]))
        if plan.join is not None:
            if plan.join.join_index_instance:
                dependencies.add(
                    attachment_token(plan.join.join_index_instance))
            if plan.join.right_access is not None \
                    and not plan.join.right_access.is_storage:
                dependencies.add(
                    attachment_token(plan.join.right_access.access[2]))
        return "select", plan, dependencies

    # ------------------------------------------------------------------
    # INSERT / UPDATE / DELETE
    # ------------------------------------------------------------------
    def _execute_insert(self, text: str, params, scope=None) -> int:
        db = scope if scope is not None else self.database
        with db.autocommit() as ctx:
            plan = self.cache.execute(
                text, lambda: self._translate_insert(ctx, text))
            handle, columns, rows = plan.payload
            db.authorization.check(db.principal, handle.name, INSERT)
            return self.executor.run_insert(ctx, handle, columns, rows,
                                            params)

    def _translate_insert(self, ctx, text: str):
        statement = parse_statement(text)
        if not isinstance(statement, InsertStmt):
            raise QueryError(f"expected INSERT: {text[:40]!r}")
        handle = self.database.catalog.handle(statement.table)
        payload = (handle, statement.columns, statement.rows)
        return "insert", payload, {relation_token(handle.name)}

    def _execute_update(self, text: str, params, scope=None) -> int:
        db = scope if scope is not None else self.database
        with db.autocommit() as ctx:
            plan = self.cache.execute(
                text, lambda: self._translate_update(ctx, text))
            handle, access, assignments = plan.payload
            db.authorization.check(db.principal, handle.name, UPDATE)
            return self.executor.run_update(ctx, handle, access, assignments,
                                            params)

    def _translate_update(self, ctx, text: str):
        statement = parse_statement(text)
        if not isinstance(statement, UpdateStmt):
            raise QueryError(f"expected UPDATE: {text[:40]!r}")
        handle = self.database.catalog.handle(statement.table)
        where = (statement.where.bind(handle.schema)
                 if statement.where else None)
        access = plan_table_access(ctx, handle, where, statement.table)
        assignments = {
            handle.schema.field_index(name): expr.bind(handle.schema)
            for name, expr in statement.assignments.items()}
        dependencies = {relation_token(handle.name)}
        if not access.is_storage:
            dependencies.add(attachment_token(access.access[2]))
        return "update", (handle, access, assignments), dependencies

    def _execute_delete(self, text: str, params, scope=None) -> int:
        db = scope if scope is not None else self.database
        with db.autocommit() as ctx:
            plan = self.cache.execute(
                text, lambda: self._translate_delete(ctx, text))
            handle, access = plan.payload
            db.authorization.check(db.principal, handle.name, DELETE)
            return self.executor.run_delete(ctx, handle, access, params)

    def _translate_delete(self, ctx, text: str):
        statement = parse_statement(text)
        if not isinstance(statement, DeleteStmt):
            raise QueryError(f"expected DELETE: {text[:40]!r}")
        handle = self.database.catalog.handle(statement.table)
        where = (statement.where.bind(handle.schema)
                 if statement.where else None)
        access = plan_table_access(ctx, handle, where, statement.table)
        dependencies = {relation_token(handle.name)}
        if not access.is_storage:
            dependencies.add(attachment_token(access.access[2]))
        return "delete", (handle, access), dependencies

    # ------------------------------------------------------------------
    # DDL (immediate; never cached)
    # ------------------------------------------------------------------
    def _execute_ddl(self, text: str):
        statement = parse_statement(text)
        db = self.database
        if isinstance(statement, CreateTableStmt):
            return db.create_table(statement.name, statement.columns,
                                   statement.storage_method,
                                   statement.attributes or None)
        if isinstance(statement, DropTableStmt):
            db.drop_table(statement.name)
            return None
        if isinstance(statement, CreateIndexStmt):
            attributes = {"columns": statement.columns}
            if statement.kind == "btree_index" and statement.unique:
                attributes["unique"] = True
            return db.create_attachment(statement.table, statement.kind,
                                        statement.name, attributes)
        if isinstance(statement, DropIndexStmt):
            db.drop_attachment(statement.name)
            return None
        raise QueryError(f"unsupported DDL: {text[:40]!r}")
