"""Cost model types shared by storage methods, attachments, and the planner.

The paper: "Given a list of 'eligible' predicates supplied by the query
planner, the storage method or access attachment can determine the
'relevance' of the predicates to the access path instance and then estimate
the I/O and CPU costs to return the record fields or keys that satisfy the
predicates."

This module deliberately has no dependencies on the rest of the library so
that every extension can import it.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

__all__ = ["AccessCost", "EligiblePredicate", "DEFAULT_SELECTIVITY"]

#: Selectivity guesses per comparison operator, used when an extension has
#: no better information (classic System R constants).
DEFAULT_SELECTIVITY = {
    "=": 0.05,
    "!=": 0.95,
    "<": 0.33,
    "<=": 0.33,
    ">": 0.33,
    ">=": 0.33,
    "ENCLOSES": 0.02,
    "ENCLOSED_BY": 0.02,
    "OVERLAPS": 0.05,
}


class EligiblePredicate:
    """One conjunct offered to an extension for relevance testing.

    ``field_index``/``op``/``operand`` are filled for simple
    column-vs-constant comparisons (the form access paths can exploit);
    ``expr`` always carries the full bound expression so extensions can do
    deeper analysis if they wish.
    """

    __slots__ = ("expr", "field_index", "op", "operand")

    def __init__(self, expr, field_index=None, op=None, operand=None):
        self.expr = expr
        self.field_index = field_index
        self.op = op
        self.operand = operand

    @property
    def is_simple(self) -> bool:
        return self.field_index is not None

    def __repr__(self) -> str:
        if self.is_simple:
            return f"EligiblePredicate(col{self.field_index} {self.op} ...)"
        return f"EligiblePredicate({self.expr!r})"


class AccessCost:
    """An extension's estimate for one access route.

    * ``io_pages`` — page reads expected;
    * ``cpu_tuples`` — tuples or entries touched (CPU work);
    * ``expected_tuples`` — result cardinality estimate;
    * ``relevant`` — the eligible predicates this route will apply itself
      (the planner re-checks the rest as residual filters);
    * ``ordered_by`` — field indexes the output is ordered by, or None;
    * ``route`` — opaque extension data the executor hands back when the
      route is chosen (e.g. which B-tree instance, key range bounds).
    """

    __slots__ = ("io_pages", "cpu_tuples", "expected_tuples", "relevant",
                 "ordered_by", "route")

    def __init__(self, io_pages: float, cpu_tuples: float,
                 expected_tuples: float,
                 relevant: Sequence[EligiblePredicate] = (),
                 ordered_by: Optional[Tuple[int, ...]] = None,
                 route=None):
        self.io_pages = float(io_pages)
        self.cpu_tuples = float(cpu_tuples)
        self.expected_tuples = float(expected_tuples)
        self.relevant = tuple(relevant)
        self.ordered_by = ordered_by
        self.route = route

    #: Relative weight of a page read versus touching one tuple.
    IO_WEIGHT = 10.0

    @property
    def total(self) -> float:
        """Scalar cost used for comparisons: weighted I/O plus CPU."""
        return self.IO_WEIGHT * self.io_pages + self.cpu_tuples

    def __lt__(self, other: "AccessCost") -> bool:
        return self.total < other.total

    def __repr__(self) -> str:
        return (f"AccessCost(io={self.io_pages:.1f}, cpu={self.cpu_tuples:.1f}, "
                f"rows={self.expected_tuples:.1f}, total={self.total:.1f})")
