"""Cross-shard query pushdown: fragment plans and the merge program.

The coordinator's pull-up path ships every qualifying row back through
the gateway before the executor aggregates — an 8-shard COUNT ships
O(rows) over the wire and visits shards one at a time.  This module
splits a bound single-table ``SelectPlan`` at the scan boundary into

* a **shard-local fragment** — filters, projections and *partial*
  aggregates (COUNT/SUM/MIN/MAX; AVG as SUM+COUNT; GROUP BY as
  per-shard partial group states) that runs entirely inside each child
  database as one remote call, and
* a **coordinator merge program** — partial-state combine for
  aggregates, hash-merge for grouped partials, and a k-way ordered
  merge with top-k recombination for ORDER BY + LIMIT.

The split is only attempted for shapes whose merge provably reproduces
the pull-up answer bit-for-bit:

* SUM/AVG pushdown is restricted to plain INT/BOOL columns, where
  partial sums re-associate exactly (float addition does not);
* plain items inside aggregates ("first row" semantics) ride on a
  hidden per-shard row count so empty shards contribute nothing;
* ordered children (key-merged sharded scans) are gated off by the
  storage method, because per-shard fragments cannot reproduce the
  interleaved tie order of the global stream.

Everything else returns ``None`` from :func:`plan_fragment` and the
query stays on the pull-up path.
"""

from __future__ import annotations

import heapq
from typing import List, Optional, Tuple

from ..core.records import RecordView
from ..services.predicate import Col, conjuncts
from .ir import OrderKey
from .planner import QualifiedSchema, SelectPlan, TableAccess, make_eligible

__all__ = ["FragmentFallback", "FragmentPlan", "plan_fragment",
           "fragment_for", "build_child_plan", "run_fragment_on",
           "merge_fragment_results", "pushdown_estimate",
           "projection_narrows"]

#: Column types whose SUM re-associates exactly under regrouping.  The
#: schema validators admit only true ints for these, so partial sums
#: merged across shards equal the single global sum bit-for-bit.
_EXACT_SUM_TYPES = ("INT", "BOOL")


class FragmentFallback(Exception):
    """A fragment could not produce the answer; the caller must re-run
    the query on the pull-up path (fail closed, never a partial
    answer)."""


class FragmentPlan:
    """One shard-local fragment plus its coordinator merge program.

    ``kind`` is ``"aggregate"`` (one partial row per shard),
    ``"group"`` (partial group states keyed by ``key_slot``) or
    ``"rows"`` (plain rows, optionally child-side top-k).  The
    ``child_*`` fields describe the plan each shard executes; the
    unprefixed fields keep the original query shape for the merge (and
    for :func:`build_child_plan` with ``final=True``, which pushes the
    *whole* query to a single remote database — the foreign method's
    one-message path).
    """

    __slots__ = ("kind", "alias", "where",
                 "child_items", "child_star", "child_order_by",
                 "child_needs_sort", "child_limit", "child_group_index",
                 "merge_specs", "key_slot", "rows_slot",
                 "items", "star", "order_by", "limit", "group_index",
                 "child_plans")

    def __init__(self):
        for name in self.__slots__:
            setattr(self, name, None)
        self.child_plans = {}


def fragment_for(plan: SelectPlan) -> Optional[FragmentPlan]:
    """The plan's fragment split, computed once and cached on the plan
    (``False`` caches ineligibility)."""
    fragment = getattr(plan, "fragment", None)
    if fragment is None:
        fragment = plan_fragment(plan) or False
        plan.fragment = fragment
    return fragment or None


def plan_fragment(plan: SelectPlan) -> Optional[FragmentPlan]:
    """Split ``plan`` at the scan boundary, or ``None`` if no split
    reproduces the pull-up answer exactly."""
    if plan.join is not None or getattr(plan, "covering", False):
        return None
    if not plan.access.is_storage:
        return None
    fragment = FragmentPlan()
    fragment.alias = plan.alias
    fragment.where = plan.access.predicate
    fragment.items = plan.items
    fragment.star = plan.star
    fragment.order_by = plan.order_by
    fragment.limit = plan.limit
    fragment.group_index = plan.group_index
    if any(aggregate for __, __, aggregate in plan.items):
        # The row path ignores ORDER BY/LIMIT on aggregate queries;
        # keep the shapes we push identical to the shapes we merge.
        if plan.order_by or plan.limit is not None:
            return None
        return _plan_aggregate_fragment(plan, fragment)
    return _plan_rows_fragment(plan, fragment)


def _plan_aggregate_fragment(plan, fragment) -> Optional[FragmentPlan]:
    schema = plan.combined_schema
    partial: List[Tuple] = []
    specs: List[Tuple] = []
    for expr, __, aggregate in plan.items:
        if aggregate is None:
            partial.append((expr, None, None))
            specs.append(("first", len(partial) - 1))
        elif aggregate == "count":
            partial.append((expr, None, "count"))
            specs.append(("count", len(partial) - 1))
        elif aggregate in ("min", "max"):
            partial.append((expr, None, aggregate))
            specs.append((aggregate, len(partial) - 1))
        elif aggregate in ("sum", "avg"):
            if not _exact_sum_column(expr, schema):
                return None  # float sums do not re-associate exactly
            if aggregate == "sum":
                partial.append((expr, None, "sum"))
                specs.append(("sum", len(partial) - 1))
            else:
                partial.append((expr, None, "sum"))
                partial.append((expr, None, "count"))
                specs.append(("avg", len(partial) - 2, len(partial) - 1))
        else:
            return None
    fragment.merge_specs = specs
    if plan.group_index is None:
        fragment.kind = "aggregate"
        # Hidden per-shard row count: 'first' items must skip shards
        # whose filtered stream was empty (reuse a COUNT(*) slot when
        # the query already computes one).
        rows_slot = next((slot for slot, (expr, __, agg)
                          in enumerate(partial)
                          if agg == "count" and expr is None), None)
        if rows_slot is None:
            partial.append((None, None, "count"))
            rows_slot = len(partial) - 1
        fragment.rows_slot = rows_slot
    else:
        fragment.kind = "group"
        name = schema.fields[plan.group_index].name
        partial.append((Col(name, plan.group_index), None, None))
        fragment.key_slot = len(partial) - 1
    fragment.child_items = partial
    fragment.child_star = False
    fragment.child_order_by = []
    fragment.child_needs_sort = False
    fragment.child_limit = None
    fragment.child_group_index = plan.group_index
    return fragment


def _plan_rows_fragment(plan, fragment) -> Optional[FragmentPlan]:
    fragment.kind = "rows"
    fragment.child_group_index = None
    if plan.order_by and plan.needs_sort:
        # Child-side top-k on full rows; the coordinator k-way merges
        # by OrderKey (ties broken by shard index = global stream
        # order) and projects after the limit, exactly as the pull-up
        # path sorts-then-projects.
        fragment.child_items = []
        fragment.child_star = True
        fragment.child_order_by = plan.order_by
        fragment.child_needs_sort = True
        fragment.child_limit = plan.limit
        return fragment
    if plan.order_by:
        # The planner cleared the sort because the chosen access path
        # is already ordered; per-shard fragments cannot reproduce
        # that interleaving.
        return None
    fragment.child_items = plan.items
    fragment.child_star = plan.star
    fragment.child_order_by = []
    fragment.child_needs_sort = False
    fragment.child_limit = plan.limit
    return fragment


def _exact_sum_column(expr, schema) -> bool:
    if not isinstance(expr, Col) or expr.index is None:
        return False
    return schema.fields[expr.index].type_code in _EXACT_SUM_TYPES


# ---------------------------------------------------------------------------
# Child plan construction and execution
# ---------------------------------------------------------------------------

def build_child_plan(database, ctx, relation: str, fragment: FragmentPlan,
                     final: bool = False) -> SelectPlan:
    """A bound plan executing ``fragment`` against ``relation`` inside
    ``database``.

    The storage route (access path zero) is pinned rather than
    cost-selected: the row stream order — and with it tie order under
    stable sorts and 'first' semantics — must match the order the
    coordinator's pull-up scan would have produced.  ``final=True``
    builds the *original* query shape instead of the partial one (the
    single-remote case, where the remote database computes the whole
    answer).
    """
    handle = database.catalog.entry(relation).handle
    where = fragment.where
    eligible = make_eligible(conjuncts(where)) if where is not None else []
    method = database.registry.storage_method(
        handle.descriptor.storage_method_id)
    cost = method.estimate_cost(ctx, handle, eligible)
    access = TableAccess(relation, ("storage",), cost, (), where)
    alias = fragment.alias
    if final:
        items, star = fragment.items, fragment.star
        order_by = fragment.order_by
        needs_sort = bool(fragment.order_by)
        limit, group_index = fragment.limit, fragment.group_index
    else:
        items, star = fragment.child_items, fragment.child_star
        order_by = fragment.child_order_by
        needs_sort = fragment.child_needs_sort
        limit, group_index = fragment.child_limit, fragment.child_group_index
    return SelectPlan(
        statement_text=f"<fragment:{relation}>",
        table=relation, alias=alias, access=access, join=None,
        combined_schema=QualifiedSchema.combine([(alias, handle.schema)]),
        items=items, star=star, where=None, order_by=order_by,
        needs_sort=needs_sort, limit=limit, group_index=group_index,
        handles={alias: handle}, covering=False)


def run_fragment_on(database, ctx, relation: str, fragment: FragmentPlan,
                    params: dict, final: bool = False,
                    cache_key=None) -> List[Tuple]:
    """Execute the fragment's child plan through ``database``'s own
    executor (filters, partial aggregates and top-k all run where the
    data lives).  Plans are cached per ``(final, cache_key)`` so
    repeated queries re-bind nothing."""
    key = (final, cache_key)
    plan = fragment.child_plans.get(key) if cache_key is not None else None
    if plan is None:
        plan = build_child_plan(database, ctx, relation, fragment, final)
        if cache_key is not None:
            fragment.child_plans[key] = plan
    return database.query_engine.executor.run_select(ctx, plan, params)


# ---------------------------------------------------------------------------
# The coordinator merge program
# ---------------------------------------------------------------------------

def merge_fragment_results(fragment: FragmentPlan,
                           sources: List[List[Tuple]],
                           params: dict) -> List[Tuple]:
    """Combine per-shard fragment results into the final answer.

    ``sources`` must be in shard order — tie order under ordered
    merges and 'first' semantics depend on it.
    """
    if fragment.kind == "aggregate":
        partials = [rows[0] for rows in sources if rows]
        return [_merge_partials(fragment, partials)]
    if fragment.kind == "group":
        groups = {}
        for rows in sources:
            for row in rows:
                groups.setdefault(row[fragment.key_slot], []).append(row)
        return [_merge_partials(fragment, groups[key])
                for key in sorted(groups, key=repr)]
    if fragment.child_needs_sort:
        merged = _merge_ordered(sources, fragment.order_by, fragment.limit)
        if fragment.star:
            return merged
        projected = []
        for row in merged:
            view = RecordView.from_record(row)
            projected.append(tuple(expr.eval(view, params)
                                   for expr, __, __agg in fragment.items))
        return projected
    out = [row for rows in sources for row in rows]
    if fragment.limit is not None:
        out = out[:fragment.limit]
    return out


def _merge_partials(fragment: FragmentPlan,
                    rows: List[Tuple]) -> Tuple:
    """Combine partial aggregate states (one row per shard, or one row
    per shard per group) into one result row."""
    out = []
    for spec in fragment.merge_specs:
        op = spec[0]
        if op == "count":
            out.append(sum(row[spec[1]] for row in rows))
        elif op in ("sum", "min", "max"):
            values = [row[spec[1]] for row in rows
                      if row[spec[1]] is not None]
            if not values:
                out.append(None)
            elif op == "sum":
                out.append(sum(values))
            elif op == "min":
                out.append(min(values))
            else:
                out.append(max(values))
        elif op == "avg":
            total = sum(row[spec[2]] for row in rows)
            if not total:
                out.append(None)
            else:
                out.append(sum(row[spec[1]] for row in rows
                               if row[spec[1]] is not None) / total)
        else:  # "first": the value from the first shard that saw a row
            if fragment.rows_slot is not None:
                out.append(next((row[spec[1]] for row in rows
                                 if row[fragment.rows_slot]), None))
            else:
                out.append(rows[0][spec[1]] if rows else None)
    return tuple(out)


def _merge_ordered(sources: List[List[Tuple]], order_by,
                   limit: Optional[int]) -> List[Tuple]:
    """K-way merge of per-shard ordered runs.  Heap entries break ties
    by (shard index, position), reproducing the stable order a single
    global sort of the shard-major stream would produce."""
    heap = []
    for index, rows in enumerate(sources):
        if rows:
            heap.append((OrderKey(rows[0], order_by), index, 0))
    heapq.heapify(heap)
    out: List[Tuple] = []
    while heap and (limit is None or len(out) < limit):
        __, index, position = heapq.heappop(heap)
        out.append(sources[index][position])
        position += 1
        if position < len(sources[index]):
            heapq.heappush(
                heap, (OrderKey(sources[index][position], order_by),
                       index, position))
    return out


# ---------------------------------------------------------------------------
# Gating estimates (shared by the sharded and foreign methods)
# ---------------------------------------------------------------------------

def pushdown_estimate(fragment: FragmentPlan, shards: int,
                      expected: float,
                      distinct: Optional[float] = None
                      ) -> Tuple[float, float]:
    """``(pushdown_rows, pullup_rows)`` expected over the wire."""
    expected = max(expected or 0.0, 0.0)
    if fragment.kind == "aggregate":
        return (float(shards), expected)
    if fragment.kind == "group":
        if distinct is None:
            # No statistics: assume sqrt(n) groups rather than pulling
            # everything back on a guess.
            distinct = max(1.0, expected ** 0.5)
        return (shards * min(float(distinct), expected), expected)
    if fragment.child_limit is not None:
        return (min(expected, float(shards * fragment.child_limit)),
                expected)
    return (expected, expected)


def projection_narrows(fragment: FragmentPlan, field_count: int) -> bool:
    """True when a rows-kind fragment ships projected items narrower
    than the full record — fewer bytes even at equal row counts."""
    return (fragment.kind == "rows" and not fragment.child_star
            and len(fragment.child_items) < field_count)
