"""Set-at-a-time plan execution.

The executor drives bound plans through the dispatch layer's direct
generic operations: storage scans with pushed-down filter predicates,
access-path probes that map input keys to record keys followed by
direct-by-key fetches ("first the access path is accessed to obtain a
record key, which is then used to access the relation record in the
storage method"), and the three join methods.

Rows move through the pipeline in blocks: scans are consumed with
``next_batch`` (one dispatch call and one page pin amortised over many
tuples), index-probe routes translate a batch of record keys into one
``fetch_many`` call, LIMIT stops pulling batches as soon as enough rows
arrived, and ORDER BY + LIMIT keeps only the top-k rows in a bounded
heap instead of sorting everything.  Filter predicates are compiled once
per plan (see :class:`~.plans.CompiledPredicateCache`) rather than per
execution.
"""

from __future__ import annotations

import heapq
from collections import OrderedDict
from itertools import islice
from typing import Dict, Iterator, List, Optional, Tuple

from ..core.records import RecordView
from ..errors import QueryError
from . import fragments, ir
from .cost import EligiblePredicate
from .ir import KernelFallback as _ColumnarFallback
from .ir import OrderKey as _OrderKey
from .planner import JoinStep, SelectPlan, TableAccess

__all__ = ["Executor"]

_EMPTY_VIEW = RecordView({})

#: First ``next_batch`` request; doubles per batch up to the cap, so a
#: LIMIT that stops early never paid for a deep scan.
_BATCH_MIN = 32
_BATCH_MAX = 512


class Executor:
    """Executes bound plans against one database."""

    def __init__(self, database):
        self.database = database
        #: Route vectorizable plans down the columnar path (benchmarks
        #: and equivalence tests toggle this to measure the row path).
        self.columnar_enabled = True
        #: Offer eligible single-table plans to the storage method as
        #: pushed-down query fragments (sharded: parallel per-shard
        #: partial aggregation; foreign: the whole query in one remote
        #: message).  Results are bit-identical to the pull-up path —
        #: equivalence tests and benchmarks toggle this to compare.
        self.pushdown_enabled = True
        #: Below this (statistics-attested) table size the columnar
        #: path's per-batch setup outweighs its per-row savings; plans
        #: on smaller relations stay row-at-a-time.  Only applies when a
        #: statistics attachment is installed — without one the executor
        #: has no row count to consult.
        self.columnar_min_rows = 32
        #: Cap (distinct inner keys) on the join-index right-record memo;
        #: least-recently-used entries are evicted past this, bounding a
        #: large join's memory by a constant instead of the inner table.
        self.join_memo_capacity = 1024

    # ------------------------------------------------------------------
    # SELECT
    # ------------------------------------------------------------------
    def run_select(self, ctx, plan: SelectPlan,
                   params: Optional[dict]) -> List[Tuple]:
        params = params or {}
        fast = self._aggregate_fast_path(ctx, plan)
        if fast is not None:
            return fast
        pushed = self._try_pushdown(ctx, plan, params)
        if pushed is not None:
            return pushed
        program = (self._columnar_program(plan)
                   if self.columnar_enabled else None)
        if program is not None and program.join is not None \
                and program.prefer_row_join and ctx.txn.snapshot is None:
            # The keyed join route (index nested-loop / join index)
            # undercuts a scan-both-sides hash join here.  Snapshot
            # readers still vectorize: their row path downgrades index
            # routes anyway, so the keyed advantage disappears.
            ctx.stats.bump("executor.columnar.ir.row_path_selected")
            program = None
        if program is not None and self.columnar_enabled \
                and self._columnar_worthwhile(ctx, plan):
            try:
                return self._run_columnar(ctx, plan, params, program)
            except _ColumnarFallback:
                # Kernel failure degrades to the row pipeline — the
                # columnar path costs performance, never answers.
                ctx.stats.bump("executor.columnar.fallbacks")
        return self._run_rows(ctx, plan, params)

    def _try_pushdown(self, ctx, plan: SelectPlan,
                      params: dict) -> Optional[List[Tuple]]:
        """Offer the plan to the storage method as a pushed-down
        fragment; ``None`` means "not attempted" (the caller continues
        on the local paths — a fragment that *ran* returns its rows,
        even an empty list).

        Snapshot readers never push down: a fragment reads the remote
        side's current state, not the local transaction's snapshot.
        """
        if not self.pushdown_enabled or ctx.txn.snapshot is not None:
            return None
        if plan.join is not None or getattr(plan, "covering", False) \
                or not plan.access.is_storage:
            return None
        handle = plan.handles[plan.alias]
        method = self.database.registry.storage_method(
            handle.descriptor.storage_method_id)
        run_fragment = getattr(method, "run_fragment", None)
        if run_fragment is None:
            return None
        fragment = fragments.fragment_for(plan)
        if fragment is None:
            return None
        if not method.fragment_worthwhile(ctx, handle, plan, fragment):
            return None
        try:
            return run_fragment(ctx, handle, fragment, params)
        except fragments.FragmentFallback:
            # Fail closed: the pull-up path recomputes the whole answer
            # (and applies its own degraded-read semantics).
            ctx.stats.bump("executor.pushdown.fallbacks")
            return None

    def _run_rows(self, ctx, plan: SelectPlan, params: dict) -> List[Tuple]:
        left_handle = plan.handles[plan.alias]
        rows: Iterator[Tuple]
        if plan.join is None:
            # Covering-index reads answer from index entries alone, which
            # are not versioned — snapshot readers fall back to the
            # (patched) storage route instead.
            if getattr(plan, "covering", False) \
                    and ctx.txn.snapshot is None:
                rows = self._covering_rows(ctx, left_handle, plan, params)
            else:
                rows = (record for __, record in
                        self._access_rows(ctx, left_handle, plan.access,
                                          params, plan.limit))
        else:
            rows = self._join_rows(ctx, plan, params)
        if plan.where is not None and plan.join is not None:
            cross = plan.where_cache.get(plan.where, plan.combined_schema,
                                         params, ctx.stats)
            rows = self._cross_filter_rows(ctx, rows, cross)
        if any(aggregate for __, __, aggregate in plan.items):
            return self._aggregate(ctx, plan, list(rows), params)
        if plan.order_by and plan.needs_sort:
            if plan.limit is not None:
                # Top-k: a bounded heap sees every row but keeps only
                # ``limit`` of them; nothing else is ever sorted.
                materialised = heapq.nsmallest(
                    plan.limit, rows,
                    key=lambda row: _OrderKey(row, plan.order_by))
                ctx.stats.bump("executor.topk")
            else:
                materialised = list(rows)
                for index, ascending in reversed(plan.order_by):
                    materialised.sort(key=lambda row: row[index],
                                      reverse=not ascending)
                ctx.stats.bump("executor.sorts")
        elif plan.limit is not None:
            # Rows arrive in final order: stop pulling batches as soon
            # as the limit is satisfied and shut the pipeline down.
            materialised = list(islice(rows, plan.limit))
            close = getattr(rows, "close", None)
            if close is not None:
                close()
            ctx.stats.bump("executor.limit_short_circuits")
        else:
            materialised = list(rows)
        if plan.limit is not None:
            materialised = materialised[:plan.limit]
        if plan.star:
            return materialised
        if materialised:
            ctx.stats.bump_many({"executor.row_ops":
                                 len(materialised) * len(plan.items)})
        projected = []
        for row in materialised:
            view = RecordView.from_record(row)
            projected.append(tuple(expr.eval(view, params)
                                   for expr, __, __ in plan.items))
        return projected

    @staticmethod
    def _cross_filter_rows(ctx, rows, cross) -> Iterator[Tuple]:
        """Residual cross-table filter, tuple-at-a-time (one row op per
        row examined — flushed when the pipeline closes)."""
        examined = 0
        try:
            for row in rows:
                examined += 1
                if cross.matches(row):
                    yield row
        finally:
            if examined:
                ctx.stats.bump("executor.row_ops", examined)

    # ------------------------------------------------------------------
    # Columnar path
    # ------------------------------------------------------------------
    @staticmethod
    def _columnar_program(plan: SelectPlan) -> Optional[ir.Program]:
        """The plan's compiled columnar program, or ``None`` (cached on
        the bound plan; the plan cache's descriptor-version revalidation
        discards the whole plan — and with it this program — whenever a
        referenced relation changes shape)."""
        program = plan.columnar
        if program is None:
            program = ir.lower_select(plan) or False
            plan.columnar = program
        return program or None

    def _columnar_worthwhile(self, ctx, plan: SelectPlan) -> bool:
        """Path selection from precomputed statistics: tiny relations
        (attested by an installed statistics attachment) stay on the row
        path, where per-batch setup cannot be amortised."""
        if self.columnar_min_rows <= 0:
            return True
        from ..access.statistics import statistics_for
        table_stats = statistics_for(ctx, plan.handles[plan.alias])
        if table_stats is None or table_stats.row_count is None:
            return True
        if table_stats.row_count >= self.columnar_min_rows:
            return True
        ctx.stats.bump("executor.columnar.row_path_selected")
        return False

    def _run_columnar(self, ctx, plan: SelectPlan, params: dict,
                      program: ir.Program) -> List[Tuple]:
        ctx.stats.bump_many({"executor.columnar.plans": 1,
                             "executor.columnar.ir.programs": 1})
        left_handle = plan.handles[plan.alias]
        if getattr(plan, "covering", False) and ctx.txn.snapshot is None \
                and plan.join is None:
            left_batches = self._covering_batches(ctx, left_handle, plan,
                                                  params)
        else:
            left_batches = (
                [record for __, record in batch] for batch in
                self._access_key_batches(
                    ctx, left_handle, plan.access, params,
                    plan.limit if plan.join is None else None))
        right_batches = None
        if plan.join is not None:
            right_handle = next(handle for alias, handle
                                in plan.handles.items()
                                if alias != plan.alias)
            right_batches = (
                [record for __, record in batch] for batch in
                self._access_key_batches(ctx, right_handle,
                                         plan.join.right_access, params,
                                         None))
        rt = ir.Runtime(ctx.stats, getattr(ctx.services, "faults", None),
                        params, self.database.kernel_backend,
                        plan.combined_schema.fields, left_batches,
                        right_batches)
        try:
            return program.run(rt)
        finally:
            for source in (left_batches, right_batches):
                close = getattr(source, "close", None)
                if close is not None:
                    close()

    # ------------------------------------------------------------------
    # Access routes
    # ------------------------------------------------------------------
    def _access_rows(self, ctx, handle, access: TableAccess,
                     params: dict, limit: Optional[int] = None
                     ) -> Iterator[Tuple[object, Tuple]]:
        """Yield (record key, full record) through the chosen route."""
        for batch in self._access_key_batches(ctx, handle, access, params,
                                              limit):
            yield from batch

    def _access_key_batches(self, ctx, handle, access: TableAccess,
                            params: dict, limit: Optional[int]
                            ) -> Iterator[List[Tuple[object, Tuple]]]:
        """Yield batches of (record key, full record) through the chosen
        route — the shared pump under both the row and columnar paths,
        so batch schedules (and the ``executor.scan_batches``,
        ``dispatch.*`` and ``buffer.*`` counters) are identical by
        construction."""
        database = self.database
        predicate = access.compiled_predicate(handle.schema, params,
                                              ctx.stats)
        if ctx.txn.snapshot is not None:
            # Snapshot readers always take the storage route through the
            # dispatch layer, which patches each record to its snapshot
            # image.  Index routes are not snapshot-aware (entries added
            # or removed after the snapshot would leak through), and the
            # access's compiled predicate is the *full* residual filter,
            # so the storage downgrade returns exactly the same rows.
            if not access.is_storage:
                ctx.stats.bump("mvcc.route_downgrades")
            scan = database.data.open_scan(ctx, handle, None, predicate)
            try:
                size = self._start_batch_size(ctx, access, limit)
                while True:
                    batch = scan.next_batch(size)
                    ctx.stats.bump("executor.scan_batches")
                    if not batch:
                        return
                    yield batch
                    if size < _BATCH_MAX:
                        size *= 2
            finally:
                scan.close()
                ctx.services.scans.unregister(scan)
            return
        if access.is_storage:
            method = database.registry.storage_method(
                handle.descriptor.storage_method_id)
            scan = method.open_scan(ctx, handle, None, predicate)
            try:
                size = self._start_batch_size(ctx, access, limit)
                while True:
                    batch = scan.next_batch(size)
                    ctx.stats.bump("executor.scan_batches")
                    if not batch:
                        return
                    yield batch
                    if size < _BATCH_MAX:
                        size *= 2
            finally:
                scan.close()
                ctx.services.scans.unregister(scan)
            return
        __, type_id, instance_name, type_name = access.access
        attachment = database.registry.attachment_type(type_id)
        field = handle.descriptor.attachment_field(type_id)
        if field is None:
            raise QueryError(
                f"plan refers to dropped attachments on {handle.name!r}")
        instance = attachment.instance(field, instance_name)
        method = database.registry.storage_method(
            handle.descriptor.storage_method_id)
        if type_name == "hash_index":
            probe = self._hash_probe_key(instance, access.relevant, params)
            keys = list(attachment.fetch(ctx, handle, instance, probe))
            if keys:
                yield list(method.fetch_many(ctx, handle, keys, None,
                                             predicate))
            return
        route = None
        if type_name == "btree_index":
            route = self._btree_route(access.relevant, params)
        elif type_name == "rtree":
            route = self._rtree_route(access.relevant, params)
        scan = attachment.open_scan(ctx, handle, instance, predicate, route)
        try:
            size = self._start_batch_size(ctx, access, limit)
            while True:
                batch = scan.next_batch(size)
                ctx.stats.bump("executor.scan_batches")
                if not batch:
                    return
                # The access path returned record keys; fetch the whole
                # batch of records via the storage method in one call,
                # filtering in the buffer pool.
                keys = [record_key for record_key, __ in batch]
                yield list(method.fetch_many(ctx, handle, keys, None,
                                             predicate))
                if size < _BATCH_MAX:
                    size *= 2
        finally:
            scan.close()
            ctx.services.scans.unregister(scan)

    @staticmethod
    def _start_batch_size(ctx, access: TableAccess,
                          limit: Optional[int]) -> int:
        """First ``next_batch`` request size.

        With no LIMIT to stop early for, the cost estimate's expected
        cardinality — grounded in precomputed statistics when a
        statistics attachment is installed — sizes the first batch, so a
        scan expected to return thousands of rows skips the 32-row
        warm-up doublings.  Both execution paths share this hint (the
        batch schedule is part of the counter contract between them).
        """
        if limit is not None:
            return _BATCH_MIN
        expected = getattr(access.cost, "expected_tuples", 0.0) or 0.0
        if expected <= _BATCH_MIN:
            return _BATCH_MIN
        size = _BATCH_MIN
        while size < _BATCH_MAX and size < expected:
            size *= 2
        ctx.stats.bump("executor.batch_size_hints")
        return size

    def _covering_rows(self, ctx, handle, plan: SelectPlan,
                       params: dict) -> Iterator[Tuple]:
        for batch in self._covering_batches(ctx, handle, plan, params):
            yield from batch

    def _covering_batches(self, ctx, handle, plan: SelectPlan,
                          params: dict) -> Iterator[List[Tuple]]:
        """Answer entirely from a B-tree index: the access path returns the
        record fields present in its key; the base relation is never
        touched."""
        database = self.database
        access = plan.access
        __, type_id, instance_name, __name = access.access
        attachment = database.registry.attachment_type(type_id)
        field = handle.descriptor.attachment_field(type_id)
        if field is None:
            raise QueryError(
                f"plan refers to dropped attachments on {handle.name!r}")
        instance = attachment.instance(field, instance_name)
        predicate = access.compiled_predicate(handle.schema, params,
                                              ctx.stats)
        route = self._btree_route(access.relevant, params)
        width = len(handle.schema)
        key_fields = instance["key_fields"]
        ctx.stats.bump("executor.covering_scans")
        scan = attachment.open_scan(ctx, handle, instance, predicate, route)
        try:
            size = self._start_batch_size(ctx, access, plan.limit)
            while True:
                batch = scan.next_batch(size)
                ctx.stats.bump("executor.scan_batches")
                if not batch:
                    return
                rows = []
                for __, view in batch:
                    row = [None] * width
                    for index in key_fields:
                        row[index] = view[index]
                    rows.append(tuple(row))
                yield rows
                if size < _BATCH_MAX:
                    size *= 2
        finally:
            scan.close()
            ctx.services.scans.unregister(scan)

    @staticmethod
    def _operand_value(pred: EligiblePredicate, params: dict):
        return pred.operand.eval(_EMPTY_VIEW, params)

    def _btree_route(self, relevant, params: dict):
        low = high = None
        low_inclusive = high_inclusive = True
        for pred in relevant:
            value = self._operand_value(pred, params)
            if pred.op == "=":
                low = high = (value,)
                low_inclusive = high_inclusive = True
            elif pred.op in (">", ">="):
                if low is None or (value,) > low:
                    low = (value,)
                    low_inclusive = pred.op == ">="
            elif pred.op in ("<", "<="):
                if high is None or (value,) < high:
                    high = (value,)
                    high_inclusive = pred.op == "<="
        return ("btree_range", low, high, low_inclusive, high_inclusive)

    def _hash_probe_key(self, instance: dict, relevant, params: dict
                        ) -> tuple:
        by_field = {pred.field_index: self._operand_value(pred, params)
                    for pred in relevant if pred.op == "="}
        try:
            return tuple(by_field[i] for i in instance["key_fields"])
        except KeyError:
            raise QueryError(
                "hash probe plan lost its equality predicates") from None

    def _rtree_route(self, relevant, params: dict):
        pred = relevant[0]
        box = self._operand_value(pred, params)
        return ("rtree_search", pred.op, box)

    # ------------------------------------------------------------------
    # Joins
    # ------------------------------------------------------------------
    def _fetch_many(self, ctx, handle, method, keys, predicate):
        """Batch record fetch, snapshot-aware.

        Writers fetch straight from the storage method; snapshot readers
        go through the dispatch layer, which patches each record to its
        snapshot image (keys an index probe missed because the record was
        deleted after the snapshot are the documented index-route
        anomaly — see DESIGN.md).
        """
        if ctx.txn.snapshot is not None:
            return self.database.data.fetch_many(ctx, handle, keys, None,
                                                 predicate)
        return method.fetch_many(ctx, handle, keys, None, predicate)

    def _join_rows(self, ctx, plan: SelectPlan,
                   params: dict) -> Iterator[Tuple]:
        join: JoinStep = plan.join
        left_handle = plan.handles[plan.alias]
        right_handle = None
        for alias, handle in plan.handles.items():
            if alias != plan.alias:
                right_handle = handle
        if right_handle is None:
            raise QueryError("join plan lost its right relation")
        if join.method == "join_index":
            yield from self._join_via_index(ctx, plan, join, left_handle,
                                            right_handle, params)
            return
        if join.method == "index_nl":
            yield from self._join_index_nl(ctx, plan, join, left_handle,
                                           right_handle, params)
            return
        yield from self._join_nested_loop(ctx, plan, join, left_handle,
                                          right_handle, params)

    def _join_via_index(self, ctx, plan, join, left_handle, right_handle,
                        params):
        database = self.database
        attachment = database.registry.attachment_type_by_name("join_index")
        field = left_handle.descriptor.attachment_field(attachment.type_id)
        instance = attachment.instance(field, join.join_index_instance)
        left_method = database.registry.storage_method(
            left_handle.descriptor.storage_method_id)
        right_method = database.registry.storage_method(
            right_handle.descriptor.storage_method_id)
        left_predicate = plan.access.compiled_predicate(
            left_handle.schema, params, ctx.stats)
        right_predicate = join.right_access.compiled_predicate(
            right_handle.schema, params, ctx.stats)
        ctx.stats.bump("executor.join_index_joins")
        # Many pairs share one inner record (foreign-key joins); memoise
        # right-side fetches for the duration of the operation (the locks
        # taken by the first fetch protect the cached copy).  The memo is
        # LRU-bounded: past ``join_memo_capacity`` distinct keys the
        # coldest entries are dropped and refetched on the next touch,
        # so a huge inner relation costs repeat fetches, not memory.
        capacity = self.join_memo_capacity
        right_cache: "OrderedDict[object, Optional[Tuple]]" = OrderedDict()
        pairs = iter(attachment.pairs(instance))
        while True:
            chunk = list(islice(pairs, _BATCH_MAX))
            if not chunk:
                return
            ctx.stats.bump("executor.row_ops", len(chunk))
            left_keys = list(dict.fromkeys(lk for lk, __ in chunk))
            left_found = dict(self._fetch_many(
                ctx, left_handle, left_method, left_keys, left_predicate))
            right_keys = []
            for __, right_key in chunk:
                if right_key in right_cache:
                    right_cache.move_to_end(right_key)
                elif right_key not in right_keys:
                    right_keys.append(right_key)
            if right_keys:
                right_found = dict(self._fetch_many(
                    ctx, right_handle, right_method, right_keys,
                    right_predicate))
                for right_key in right_keys:
                    right_cache[right_key] = right_found.get(right_key)
            for left_key, right_key in chunk:
                left_record = left_found.get(left_key)
                if left_record is None:
                    continue
                right_record = right_cache[right_key]
                if right_record is None:
                    continue
                yield tuple(left_record) + tuple(right_record)
            # Trim after the chunk is emitted — every key the chunk
            # needed is still present while it is being joined.
            if capacity and len(right_cache) > capacity:
                evicted = 0
                while len(right_cache) > capacity:
                    right_cache.popitem(last=False)
                    evicted += 1
                ctx.stats.bump("executor.join_memo_evictions", evicted)

    def _join_index_nl(self, ctx, plan, join, left_handle, right_handle,
                       params):
        database = self.database
        right_method = database.registry.storage_method(
            right_handle.descriptor.storage_method_id)
        right_predicate = join.right_access.compiled_predicate(
            right_handle.schema, params, ctx.stats)
        probe = self._resolve_probe(right_handle, join.right_index)
        ctx.stats.bump("executor.index_nl_joins")
        # Probe the inner index per outer row, but resolve the resulting
        # record keys a block of outer rows at a time: one fetch_many
        # call covers every inner record the block needs.
        block: List[Tuple[Tuple, List]] = []
        probe_ops = 0  # one op per outer-row index probe
        try:
            for __, left_record in self._access_rows(ctx, left_handle,
                                                     plan.access, params):
                value = left_record[join.left_index]
                if value is None:
                    continue
                probe_ops += 1
                right_keys = list(probe(ctx, value))
                if right_keys:
                    block.append((left_record, right_keys))
                if len(block) >= _BATCH_MIN:
                    yield from self._emit_index_nl(ctx, right_handle,
                                                   right_method,
                                                   right_predicate, block)
                    block = []
            if block:
                yield from self._emit_index_nl(ctx, right_handle,
                                               right_method,
                                               right_predicate, block)
        finally:
            if probe_ops:
                ctx.stats.bump("executor.row_ops", probe_ops)

    def _emit_index_nl(self, ctx, right_handle, right_method,
                       right_predicate, block):
        keys = list(dict.fromkeys(
            key for __, right_keys in block for key in right_keys))
        found = dict(self._fetch_many(ctx, right_handle, right_method, keys,
                                      right_predicate))
        for left_record, right_keys in block:
            for right_key in right_keys:
                right_record = found.get(right_key)
                if right_record is not None:
                    yield tuple(left_record) + tuple(right_record)

    def _resolve_probe(self, right_handle, right_index: int):
        """A callable mapping a join value to inner record keys."""
        database = self.database
        for type_name in ("hash_index", "btree_index"):
            attachment = database.registry.attachment_type_by_name(type_name)
            field = right_handle.descriptor.attachment_field(
                attachment.type_id)
            if field is None:
                continue
            for instance in field["instances"].values():
                if list(instance["key_fields"]) == [right_index]:
                    def probe(ctx, value, attachment=attachment,
                              instance=instance):
                        return attachment.fetch(ctx, right_handle, instance,
                                                (value,))
                    return probe
        method = database.registry.storage_method(
            right_handle.descriptor.storage_method_id)
        if tuple(method.key_fields(right_handle)) == (right_index,):
            def probe(ctx, value):
                record = method.fetch(ctx, right_handle, (value,))
                return [(value,)] if record is not None else []
            return probe
        raise QueryError("index nested-loop plan lost its inner access path")

    def _join_nested_loop(self, ctx, plan, join, left_handle, right_handle,
                          params):
        ctx.stats.bump("executor.nested_loop_joins")
        right_rows = [record for __, record in
                      self._access_rows(ctx, right_handle, join.right_access,
                                        params)]
        inner_ops = 0  # one op per inner comparison — flushed at close
        try:
            for __, left_record in self._access_rows(ctx, left_handle,
                                                     plan.access, params):
                value = left_record[join.left_index]
                if value is None:
                    continue
                inner_ops += len(right_rows)
                for right_record in right_rows:
                    if right_record[join.right_index] == value:
                        yield tuple(left_record) + tuple(right_record)
        finally:
            if inner_ops:
                ctx.stats.bump("executor.row_ops", inner_ops)

    # ------------------------------------------------------------------
    # Aggregation
    # ------------------------------------------------------------------
    def _aggregate_fast_path(self, ctx, plan: SelectPlan) -> Optional[List]:
        """Answer ``SELECT COUNT(*)`` from a precomputed aggregate
        attachment when one exists (no scan at all)."""
        if ctx.txn.snapshot is not None:
            # Precomputed aggregates track *current* state; a snapshot
            # reader must count through the patched scan instead.
            ctx.stats.bump("mvcc.fast_path_bypasses")
            return None
        if (plan.join is not None or plan.where is not None
                or plan.group_index is not None or plan.star
                or len(plan.items) != 1):
            return None
        expr, __, aggregate = plan.items[0]
        if aggregate != "count" or expr is not None:
            return None
        handle = plan.handles[plan.alias]
        attachment = self.database.registry.attachment_type_by_name(
            "aggregate")
        field = handle.descriptor.attachment_field(attachment.type_id)
        if field is None:
            return None
        for instance in field["instances"].values():
            if instance["function"] == "count":
                ctx.stats.bump("executor.aggregate_fast_paths")
                return [(attachment.value(ctx, handle, instance),)]
        return None

    def _aggregate(self, ctx, plan: SelectPlan, rows: List[Tuple],
                   params: dict) -> List[Tuple]:
        if plan.group_index is None:
            self._count_row_ops(ctx, plan.items, len(rows))
            return [self._fold(plan.items, rows, params)]
        groups: Dict[object, List[Tuple]] = {}
        for row in rows:
            groups.setdefault(row[plan.group_index], []).append(row)
        out = []
        for value in sorted(groups, key=repr):
            self._count_row_ops(ctx, plan.items, len(groups[value]))
            out.append(self._fold(plan.items, groups[value], params))
        return out

    @staticmethod
    def _count_row_ops(ctx, items, nrows: int) -> None:
        """Account the fold's per-row expression evaluations (the work
        the columnar path replaces with per-batch kernels)."""
        ops = 0
        for expr, __, aggregate in items:
            if aggregate is None:
                ops += 1 if nrows else 0
            elif expr is not None:
                ops += nrows
        if ops:
            ctx.stats.bump_many({"executor.row_ops": ops})

    @staticmethod
    def _fold(items, rows: List[Tuple], params: dict) -> Tuple:
        result = []
        for expr, __, aggregate in items:
            if aggregate is None:
                # A plain item inside an aggregate query: its value from
                # the first row (the grouping column in GROUP BY queries).
                view = RecordView.from_record(rows[0]) if rows else None
                result.append(expr.eval(view, params) if view else None)
                continue
            if aggregate == "count" and expr is None:
                result.append(len(rows))
                continue
            values = []
            for row in rows:
                value = expr.eval(RecordView.from_record(row), params)
                if value is not None:
                    values.append(value)
            if aggregate == "count":
                result.append(len(values))
            elif not values:
                result.append(None)
            elif aggregate == "sum":
                result.append(sum(values))
            elif aggregate == "min":
                result.append(min(values))
            elif aggregate == "max":
                result.append(max(values))
            elif aggregate == "avg":
                result.append(sum(values) / len(values))
        return tuple(result)

    # ------------------------------------------------------------------
    # Modification statements
    # ------------------------------------------------------------------
    def run_insert(self, ctx, handle, columns: Optional[List[str]],
                   rows: List[List], params: Optional[dict]) -> int:
        params = params or {}
        schema = handle.schema
        records = []
        for row_exprs in rows:
            values = [expr.eval(_EMPTY_VIEW, params) for expr in row_exprs]
            if columns is None:
                record = values
                if len(record) != len(schema.fields):
                    raise QueryError(
                        f"INSERT supplies {len(record)} values for "
                        f"{len(schema.fields)} columns")
            else:
                if len(columns) != len(values):
                    raise QueryError(
                        "INSERT column list and VALUES arity differ")
                record = [None] * len(schema.fields)
                for name, value in zip(columns, values):
                    record[schema.field_index(name)] = value
            records.append(tuple(record))
        self.database.data.insert_batch(ctx, handle, records)
        return len(records)

    def run_update(self, ctx, handle, access: TableAccess,
                   assignments: Dict[int, object],
                   params: Optional[dict]) -> int:
        params = params or {}
        items = []
        for key, record in self._access_rows(ctx, handle, access, params):
            view = RecordView.from_record(record)
            values = list(record)
            for index, expr in assignments.items():
                values[index] = expr.eval(view, params)
            items.append((key, tuple(values)))
        self.database.data.update_batch(ctx, handle, items)
        return len(items)

    def run_delete(self, ctx, handle, access: TableAccess,
                   params: Optional[dict]) -> int:
        params = params or {}
        victims = [key for key, __ in
                   self._access_rows(ctx, handle, access, params)]
        self.database.data.delete_batch(ctx, handle, victims)
        return len(victims)
