"""Column-at-a-time operator kernels.

Each kernel performs one logical operation for a whole
:class:`~.columnar.ColumnBatch` with O(1) Python-level dispatch per
batch: the per-row work happens inside C-implemented primitives
(comprehension loops over one column, ``zip``, ``sum``/``min``/``max``,
set membership).  Compare that with the row pipeline, which pays a
tree-walking ``expr.eval`` plus a ``RecordView`` per row per operator.

The filter side compiles a bound predicate expression into a kernel
tree (:func:`compile_filter`).  Kernels produce **selection vectors** —
sorted lists of qualifying row ordinals — and combine under AND by
narrowing the selection (each conjunct only examines survivors) and
under OR by set union, exactly mirroring SQL's three-valued logic:
a row is selected iff the predicate is *true* (unknown rows are
rejected, as in :meth:`Predicate.matches`).

Expressions outside that structural whitelist no longer fall back to
row-at-a-time evaluation: :func:`compile_expression` maps *any* bound
scalar expression tree — arithmetic, comparisons, boolean connectives
with three-valued logic, ``IS NULL`` / ``IN`` / ``BETWEEN`` / ``LIKE``,
scalar functions, spatial operators — recursively onto composed
:class:`ValueKernel` nodes whose per-batch work runs through a pluggable
:mod:`.backends` backend, and :func:`compile_filter` wraps the compiled
truth vector in a generic filter kernel.  NULL propagation matches
:meth:`Expr.eval` exactly; only the dispatch count changes.
"""

from __future__ import annotations

import operator
from contextlib import contextmanager
from typing import List, Optional, Sequence

from ..core.records import Box, RecordView
from ..errors import PredicateError
from ..services import predicate as _predicate
from ..services.predicate import (And, Arith, Between, Cmp, Col, Const,
                                  Func, InList, IsNull, Like, Neg, Not, Or,
                                  Param, SPATIAL_OPS, simple_comparison)
from .columnar import ColumnBatch

__all__ = ["compile_filter", "compile_expression", "ValueKernel",
           "collect_nonnull", "project_rows", "fold_aggregate",
           "vector_filter_enabled", "vector_filtering"]

_EMPTY_VIEW = RecordView({})

_OPS = {"=": operator.eq, "!=": operator.ne, "<": operator.lt,
        "<=": operator.le, ">": operator.gt, ">=": operator.ge}

#: Negated comparison for compiling ``NOT (col op const)`` — NULL
#: operands stay unknown (rejected) under both forms.
_NEGATED = {"=": "!=", "!=": "=", "<": ">=", "<=": ">", ">": "<=", ">=": "<"}


# ---------------------------------------------------------------------------
# Global toggle (benchmark baseline: measure the row pipeline untouched)
# ---------------------------------------------------------------------------

_VECTOR_FILTER = True


def vector_filter_enabled() -> bool:
    return _VECTOR_FILTER


@contextmanager
def vector_filtering(enabled: bool):
    """Temporarily enable/disable vectorized filter evaluation (the
    benchmark harness disables it to measure the row-at-a-time baseline)."""
    global _VECTOR_FILTER
    previous = _VECTOR_FILTER
    _VECTOR_FILTER = bool(enabled)
    try:
        yield
    finally:
        _VECTOR_FILTER = previous


# ---------------------------------------------------------------------------
# Filter kernels → selection vectors
# ---------------------------------------------------------------------------

class FilterKernel:
    """Base: ``select`` returns the sorted ordinals where the predicate is
    true, restricted to ``selection`` (``None`` = every row)."""

    __slots__ = ()

    def select(self, batch: ColumnBatch, params: Optional[dict],
               selection: Optional[Sequence[int]]) -> List[int]:
        raise NotImplementedError


class _Compare(FilterKernel):
    __slots__ = ("index", "op", "fn", "operand")

    def __init__(self, index: int, op: str, operand):
        self.index = index
        self.op = op
        self.fn = _OPS[op]
        self.operand = operand

    def select(self, batch, params, selection):
        value = self.operand.eval(_EMPTY_VIEW, params)
        if value is None:
            return []  # comparison with NULL is unknown for every row
        column = batch.column(self.index)
        fn = self.fn
        try:
            if selection is None:
                return [i for i, v in enumerate(column)
                        if v is not None and fn(v, value)]
            return [i for i in selection
                    if column[i] is not None and fn(column[i], value)]
        except TypeError as exc:
            raise PredicateError(
                f"cannot compare column {self.index} {self.op} "
                f"{value!r}") from exc


class _IsNull(FilterKernel):
    __slots__ = ("index", "negated")

    def __init__(self, index: int, negated: bool):
        self.index = index
        self.negated = negated

    def select(self, batch, params, selection):
        mask = batch.null_mask(self.index)
        if mask is None:
            if self.negated:
                return (list(range(len(batch))) if selection is None
                        else list(selection))
            return []
        want = not self.negated
        if selection is None:
            return [i for i, is_null in enumerate(mask)
                    if bool(is_null) is want]
        return [i for i in selection if bool(mask[i]) is want]


class _Between(FilterKernel):
    __slots__ = ("index", "lo", "hi", "negated")

    def __init__(self, index: int, lo, hi, negated: bool):
        self.index = index
        self.lo = lo
        self.hi = hi
        self.negated = negated

    def select(self, batch, params, selection):
        lo = self.lo.eval(_EMPTY_VIEW, params)
        hi = self.hi.eval(_EMPTY_VIEW, params)
        if lo is None or hi is None:
            return []  # unknown for every non-null row either way
        column = batch.column(self.index)
        base = range(len(column)) if selection is None else selection
        try:
            if self.negated:
                return [i for i in base if column[i] is not None
                        and not lo <= column[i] <= hi]
            return [i for i in base if column[i] is not None
                    and lo <= column[i] <= hi]
        except TypeError as exc:
            raise PredicateError(
                f"cannot range-compare column {self.index} against "
                f"{lo!r}..{hi!r}") from exc


class _InList(FilterKernel):
    __slots__ = ("index", "values", "negated")

    def __init__(self, index: int, values, negated: bool):
        self.index = index
        self.values = values
        self.negated = negated

    def select(self, batch, params, selection):
        candidates = [v.eval(_EMPTY_VIEW, params) for v in self.values]
        has_null = any(v is None for v in candidates)
        members = {v for v in candidates if v is not None}
        column = batch.column(self.index)
        base = range(len(column)) if selection is None else selection
        if self.negated:
            if has_null:
                # ``x NOT IN (..., NULL)`` is never true (match → false,
                # no match → unknown).
                return []
            return [i for i in base if column[i] is not None
                    and column[i] not in members]
        return [i for i in base if column[i] is not None
                and column[i] in members]


class _BoolColumn(FilterKernel):
    __slots__ = ("index",)

    def __init__(self, index: int):
        self.index = index

    def select(self, batch, params, selection):
        column = batch.column(self.index)
        if selection is None:
            return [i for i, v in enumerate(column) if v is True]
        return [i for i in selection if column[i] is True]


class _AndKernel(FilterKernel):
    __slots__ = ("children",)

    def __init__(self, children):
        self.children = tuple(children)

    def select(self, batch, params, selection):
        for child in self.children:
            selection = child.select(batch, params, selection)
            if not selection:
                return []
        return list(selection)


class _OrKernel(FilterKernel):
    __slots__ = ("children",)

    def __init__(self, children):
        self.children = tuple(children)

    def select(self, batch, params, selection):
        union = set()
        for child in self.children:
            union.update(child.select(batch, params, selection))
        return sorted(union)


def compile_filter(expr) -> Optional[FilterKernel]:
    """Compile a bound predicate expression into a filter-kernel tree.

    Structured shapes (column-vs-constant comparisons, IS NULL, BETWEEN,
    IN, boolean combinations of those) compile to the cheap
    selection-narrowing kernels above.  Anything else compiles through
    :func:`compile_expression` into a generic truth-vector filter, so
    every bound predicate vectorizes; ``None`` is returned only for
    expressions referencing unbound columns.
    """
    if expr is None:
        return None
    kernel = _compile_structured(expr)
    if kernel is not None:
        return kernel
    value = compile_expression(expr)
    if value is None:
        return None
    return _ExprFilter(value)


def _compile_structured(expr) -> Optional[FilterKernel]:
    if isinstance(expr, Cmp):
        simple = simple_comparison(expr)
        if simple is None:
            return None
        index, op, operand = simple
        if op in SPATIAL_OPS or op not in _OPS:
            return None
        return _Compare(index, op, operand)
    if isinstance(expr, IsNull):
        if isinstance(expr.item, Col) and expr.item.index is not None:
            return _IsNull(expr.item.index, expr.negated)
        return None
    if isinstance(expr, Between):
        return _compile_between(expr, negated=False)
    if isinstance(expr, InList):
        return _compile_in_list(expr, negated=False)
    if isinstance(expr, And):
        return _compile_children(expr.items, _AndKernel)
    if isinstance(expr, Or):
        return _compile_children(expr.items, _OrKernel)
    if isinstance(expr, Not):
        return _compile_not(expr.item)
    if isinstance(expr, Col) and expr.index is not None:
        return _BoolColumn(expr.index)  # bare boolean column
    return None


def _compile_children(items, combiner) -> Optional[FilterKernel]:
    children = [compile_filter(item) for item in items]
    if any(child is None for child in children):
        return None
    return combiner(children)


def _compile_between(expr: Between, negated: bool) -> Optional[FilterKernel]:
    if not isinstance(expr.item, Col) or expr.item.index is None:
        return None
    if expr.lo.column_names() or expr.hi.column_names():
        return None
    return _Between(expr.item.index, expr.lo, expr.hi, negated)


def _compile_in_list(expr: InList, negated: bool) -> Optional[FilterKernel]:
    if not isinstance(expr.item, Col) or expr.item.index is None:
        return None
    if any(v.column_names() for v in expr.values):
        return None
    return _InList(expr.item.index, expr.values, negated)


def _compile_not(inner) -> Optional[FilterKernel]:
    """``NOT`` distributes only over kernels with an exact negated form
    under three-valued logic (unknown stays unknown)."""
    if isinstance(inner, Not):
        return compile_filter(inner.item)
    if isinstance(inner, Cmp):
        simple = simple_comparison(inner)
        if simple is None:
            return None
        index, op, operand = simple
        negated_op = _NEGATED.get(op)
        if negated_op is None:
            return None
        return _Compare(index, negated_op, operand)
    if isinstance(inner, IsNull):
        if isinstance(inner.item, Col) and inner.item.index is not None:
            return _IsNull(inner.item.index, not inner.negated)
        return None
    if isinstance(inner, Between):
        return _compile_between(inner, negated=True)
    if isinstance(inner, InList):
        return _compile_in_list(inner, negated=True)
    return None


# ---------------------------------------------------------------------------
# Value kernels — arbitrary scalar expressions, column-at-a-time
# ---------------------------------------------------------------------------

#: Backend used by filters compiled through :func:`compile_filter` (the
#: storage-pushdown path, which has no per-database backend handle).  The
#: pure-Python backend keeps that path deterministic; the operator IR
#: passes the database's configured backend explicitly instead.
_EXPR_BACKEND = None


def _expr_backend():
    global _EXPR_BACKEND
    if _EXPR_BACKEND is None:
        from .backends import PythonBackend
        _EXPR_BACKEND = PythonBackend()
    return _EXPR_BACKEND


class ValueKernel:
    """Base: ``run`` returns the expression's value for each row of the
    batch restricted to ``selection`` (``None`` = every row), as a list
    with ``None`` for SQL NULL.  Composed nodes hand whole vectors to the
    backend, so dispatch cost is O(tree size) per batch, not per row."""

    __slots__ = ()

    def run(self, batch: ColumnBatch, params: Optional[dict], backend,
            selection: Optional[Sequence[int]]) -> list:
        raise NotImplementedError


def _domain_size(batch, selection):
    return len(batch) if selection is None else len(selection)


class _ConstValue(ValueKernel):
    __slots__ = ("value",)

    def __init__(self, value):
        self.value = value

    def run(self, batch, params, backend, selection):
        return [self.value] * _domain_size(batch, selection)


class _ParamValue(ValueKernel):
    __slots__ = ("name",)

    def __init__(self, name: str):
        self.name = name

    def run(self, batch, params, backend, selection):
        if not params or self.name not in params:
            raise PredicateError(f"parameter :{self.name} was not supplied")
        return [params[self.name]] * _domain_size(batch, selection)


class _ColumnValue(ValueKernel):
    __slots__ = ("index",)

    def __init__(self, index: int):
        self.index = index

    def run(self, batch, params, backend, selection):
        column = batch.column(self.index)
        if selection is None:
            return column
        return backend.gather(column, selection)


class _ArithValue(ValueKernel):
    __slots__ = ("op", "left", "right")

    def __init__(self, op, left, right):
        self.op = op
        self.left = left
        self.right = right

    def run(self, batch, params, backend, selection):
        return backend.arith(self.op,
                             self.left.run(batch, params, backend, selection),
                             self.right.run(batch, params, backend, selection))


class _NegValue(ValueKernel):
    __slots__ = ("item",)

    def __init__(self, item):
        self.item = item

    def run(self, batch, params, backend, selection):
        return backend.neg(self.item.run(batch, params, backend, selection))


class _CompareValue(ValueKernel):
    __slots__ = ("op", "left", "right")

    def __init__(self, op, left, right):
        self.op = op
        self.left = left
        self.right = right

    def run(self, batch, params, backend, selection):
        return backend.compare(
            self.op,
            self.left.run(batch, params, backend, selection),
            self.right.run(batch, params, backend, selection))


def _spatial_fn(op: str):
    def fn(lhs, rhs):
        if not isinstance(lhs, Box) or not isinstance(rhs, Box):
            raise PredicateError(
                f"{op} needs BOX operands, got "
                f"{type(lhs).__name__} and {type(rhs).__name__}")
        if op == "ENCLOSES":
            return lhs.encloses(rhs)
        if op == "ENCLOSED_BY":
            return lhs.enclosed_by(rhs)
        return lhs.overlaps(rhs)
    return fn


class _SpatialValue(ValueKernel):
    __slots__ = ("op", "fn", "left", "right")

    def __init__(self, op, left, right):
        self.op = op
        self.fn = _spatial_fn(op)
        self.left = left
        self.right = right

    def run(self, batch, params, backend, selection):
        return backend.apply(
            self.op, self.fn,
            [self.left.run(batch, params, backend, selection),
             self.right.run(batch, params, backend, selection)])


class _AndValue(ValueKernel):
    __slots__ = ("items",)

    def __init__(self, items):
        self.items = tuple(items)

    def run(self, batch, params, backend, selection):
        return backend.logical_and(
            [item.run(batch, params, backend, selection)
             for item in self.items])


class _OrValue(ValueKernel):
    __slots__ = ("items",)

    def __init__(self, items):
        self.items = tuple(items)

    def run(self, batch, params, backend, selection):
        return backend.logical_or(
            [item.run(batch, params, backend, selection)
             for item in self.items])


class _NotValue(ValueKernel):
    __slots__ = ("item",)

    def __init__(self, item):
        self.item = item

    def run(self, batch, params, backend, selection):
        return backend.logical_not(
            self.item.run(batch, params, backend, selection))


class _IsNullValue(ValueKernel):
    __slots__ = ("item", "negated")

    def __init__(self, item, negated: bool):
        self.item = item
        self.negated = negated

    def run(self, batch, params, backend, selection):
        return backend.is_null(
            self.item.run(batch, params, backend, selection), self.negated)


class _BetweenValue(ValueKernel):
    __slots__ = ("item", "lo", "hi")

    def __init__(self, item, lo, hi):
        self.item = item
        self.lo = lo
        self.hi = hi

    def run(self, batch, params, backend, selection):
        return backend.between(
            self.item.run(batch, params, backend, selection),
            self.lo.run(batch, params, backend, selection),
            self.hi.run(batch, params, backend, selection))


class _InListValue(ValueKernel):
    """``item IN (constants/params)`` — the candidate list is evaluated
    once per batch (no column references; column-referencing candidates
    compile to an OR of equality kernels instead)."""

    __slots__ = ("item", "values")

    def __init__(self, item, values):
        self.item = item
        self.values = tuple(values)

    def run(self, batch, params, backend, selection):
        candidates = [v.eval(_EMPTY_VIEW, params) for v in self.values]
        has_null = any(c is None for c in candidates)
        needles = self.item.run(batch, params, backend, selection)
        try:
            members = {c for c in candidates if c is not None}
        except TypeError:
            # Unhashable candidates (e.g. boxes): elementwise equality,
            # same three-valued result as ``InList.eval``.
            out = []
            for v in needles:
                if v is None:
                    out.append(None)
                    continue
                unknown = False
                hit = False
                for c in candidates:
                    if c is None:
                        unknown = True
                    elif c == v:
                        hit = True
                        break
                out.append(True if hit else (None if unknown else False))
            return out
        return backend.in_list(needles, members, has_null)


class _LikeValue(ValueKernel):
    __slots__ = ("item", "regex")

    def __init__(self, item, regex):
        self.item = item
        self.regex = regex

    def run(self, batch, params, backend, selection):
        return backend.like(
            self.item.run(batch, params, backend, selection), self.regex)


class _FuncValue(ValueKernel):
    __slots__ = ("name", "args")

    def __init__(self, name, args):
        self.name = name
        self.args = tuple(args)

    def run(self, batch, params, backend, selection):
        vectors = [a.run(batch, params, backend, selection)
                   for a in self.args]
        if self.name == "box":
            def fn(*values):
                if len(values) != 4:
                    raise PredicateError("box() takes four coordinates")
                return Box(*values)
        else:
            fn = _predicate._FUNCTIONS[self.name]
        return backend.apply(self.name, fn, vectors)


def compile_expression(expr) -> Optional[ValueKernel]:
    """Recursively map a bound scalar expression tree onto composed
    value kernels (TQP-style expression-to-vector-op lowering).

    Covers the whole :class:`~..services.predicate.Expr` AST with NULL
    propagation identical to ``Expr.eval``; returns ``None`` only when
    the tree references an unbound column.
    """
    if isinstance(expr, Const):
        return _ConstValue(expr.value)
    if isinstance(expr, Col):
        if expr.index is None:
            return None
        return _ColumnValue(expr.index)
    if isinstance(expr, Param):
        return _ParamValue(expr.name)
    if isinstance(expr, Cmp):
        left = compile_expression(expr.left)
        right = compile_expression(expr.right)
        if left is None or right is None:
            return None
        if expr.op in SPATIAL_OPS:
            return _SpatialValue(expr.op, left, right)
        return _CompareValue(expr.op, left, right)
    if isinstance(expr, Arith):
        left = compile_expression(expr.left)
        right = compile_expression(expr.right)
        if left is None or right is None:
            return None
        return _ArithValue(expr.op, left, right)
    if isinstance(expr, Neg):
        item = compile_expression(expr.item)
        return None if item is None else _NegValue(item)
    if isinstance(expr, And):
        items = [compile_expression(i) for i in expr.items]
        if any(i is None for i in items):
            return None
        return _AndValue(items)
    if isinstance(expr, Or):
        items = [compile_expression(i) for i in expr.items]
        if any(i is None for i in items):
            return None
        return _OrValue(items)
    if isinstance(expr, Not):
        item = compile_expression(expr.item)
        return None if item is None else _NotValue(item)
    if isinstance(expr, IsNull):
        item = compile_expression(expr.item)
        return None if item is None else _IsNullValue(item, expr.negated)
    if isinstance(expr, Between):
        parts = [compile_expression(e)
                 for e in (expr.item, expr.lo, expr.hi)]
        if any(p is None for p in parts):
            return None
        return _BetweenValue(*parts)
    if isinstance(expr, InList):
        item = compile_expression(expr.item)
        if item is None:
            return None
        if any(v.column_names() for v in expr.values):
            # Row-dependent candidates: x IN (a, b) ≡ x = a OR x = b
            # under three-valued logic, exactly as ``InList.eval``.
            equals = []
            for value in expr.values:
                candidate = compile_expression(value)
                if candidate is None:
                    return None
                equals.append(_CompareValue("=", item, candidate))
            return _OrValue(equals)
        return _InListValue(item, expr.values)
    if isinstance(expr, Like):
        item = compile_expression(expr.item)
        return None if item is None else _LikeValue(item, expr._regex)
    if isinstance(expr, Func):
        args = [compile_expression(a) for a in expr.args]
        if any(a is None for a in args):
            return None
        return _FuncValue(expr.name, args)
    return None


class _ExprFilter(FilterKernel):
    """Generic filter: evaluate the compiled expression's truth vector
    over the current selection and keep the rows where it is *true*
    (unknown rejected, as in ``Predicate.matches``)."""

    __slots__ = ("kernel",)

    def __init__(self, kernel: ValueKernel):
        self.kernel = kernel

    def select(self, batch, params, selection):
        truth = self.kernel.run(batch, params, _expr_backend(), selection)
        if selection is None:
            return [i for i, t in enumerate(truth) if t is True]
        return [i for i, t in zip(selection, truth) if t is True]


# ---------------------------------------------------------------------------
# Projection / aggregation kernels
# ---------------------------------------------------------------------------

def collect_nonnull(batch: ColumnBatch, index: int) -> list:
    """The column's non-NULL values in row order (SQL aggregates skip
    NULLs); one pass per batch."""
    column = batch.column(index)
    if batch.null_mask(index) is None:
        return list(column)
    return [v for v in column if v is not None]


def project_rows(rows: Sequence[tuple], indexes: Sequence[int]) -> list:
    """Project materialised rows onto ``indexes``: one transpose plus one
    zip for the whole result set instead of per-row expression evaluation."""
    if not rows:
        return []
    columns = list(zip(*rows))
    picked = [columns[i] for i in indexes]
    if len(picked) == 1:
        return [(value,) for value in picked[0]]
    return list(zip(*picked))


def fold_aggregate(kind: str, values: list, row_count: int):
    """Finish one aggregate from its accumulated non-NULL value list.

    Mirrors the row executor's fold exactly (same ``sum`` over the same
    value order) so results are bit-identical between the two paths.
    """
    if kind == "count_star":
        return row_count
    if kind == "count":
        return len(values)
    if not values:
        return None
    if kind == "sum":
        return sum(values)
    if kind == "min":
        return min(values)
    if kind == "max":
        return max(values)
    if kind == "avg":
        return sum(values) / len(values)
    raise PredicateError(f"unknown aggregate kernel {kind!r}")
