"""Column-at-a-time operator kernels.

Each kernel performs one logical operation for a whole
:class:`~.columnar.ColumnBatch` with O(1) Python-level dispatch per
batch: the per-row work happens inside C-implemented primitives
(comprehension loops over one column, ``zip``, ``sum``/``min``/``max``,
set membership).  Compare that with the row pipeline, which pays a
tree-walking ``expr.eval`` plus a ``RecordView`` per row per operator.

The filter side compiles a bound predicate expression into a kernel
tree (:func:`compile_filter`).  Kernels produce **selection vectors** —
sorted lists of qualifying row ordinals — and combine under AND by
narrowing the selection (each conjunct only examines survivors) and
under OR by set union, exactly mirroring SQL's three-valued logic:
a row is selected iff the predicate is *true* (unknown rows are
rejected, as in :meth:`Predicate.matches`).

Expressions outside the vectorizable subset (spatial operators, LIKE,
arithmetic over columns, scalar functions, correlated operands) compile
to ``None`` and the caller falls back to row-at-a-time evaluation —
results are identical either way, only the dispatch count changes.
"""

from __future__ import annotations

import operator
from contextlib import contextmanager
from typing import List, Optional, Sequence

from ..core.records import RecordView
from ..errors import PredicateError
from ..services.predicate import (And, Between, Cmp, Col, InList, IsNull,
                                  Not, Or, SPATIAL_OPS, simple_comparison)
from .columnar import ColumnBatch

__all__ = ["compile_filter", "collect_nonnull", "project_rows",
           "fold_aggregate", "vector_filter_enabled", "vector_filtering"]

_EMPTY_VIEW = RecordView({})

_OPS = {"=": operator.eq, "!=": operator.ne, "<": operator.lt,
        "<=": operator.le, ">": operator.gt, ">=": operator.ge}

#: Negated comparison for compiling ``NOT (col op const)`` — NULL
#: operands stay unknown (rejected) under both forms.
_NEGATED = {"=": "!=", "!=": "=", "<": ">=", "<=": ">", ">": "<=", ">=": "<"}


# ---------------------------------------------------------------------------
# Global toggle (benchmark baseline: measure the row pipeline untouched)
# ---------------------------------------------------------------------------

_VECTOR_FILTER = True


def vector_filter_enabled() -> bool:
    return _VECTOR_FILTER


@contextmanager
def vector_filtering(enabled: bool):
    """Temporarily enable/disable vectorized filter evaluation (the
    benchmark harness disables it to measure the row-at-a-time baseline)."""
    global _VECTOR_FILTER
    previous = _VECTOR_FILTER
    _VECTOR_FILTER = bool(enabled)
    try:
        yield
    finally:
        _VECTOR_FILTER = previous


# ---------------------------------------------------------------------------
# Filter kernels → selection vectors
# ---------------------------------------------------------------------------

class FilterKernel:
    """Base: ``select`` returns the sorted ordinals where the predicate is
    true, restricted to ``selection`` (``None`` = every row)."""

    __slots__ = ()

    def select(self, batch: ColumnBatch, params: Optional[dict],
               selection: Optional[Sequence[int]]) -> List[int]:
        raise NotImplementedError


class _Compare(FilterKernel):
    __slots__ = ("index", "op", "fn", "operand")

    def __init__(self, index: int, op: str, operand):
        self.index = index
        self.op = op
        self.fn = _OPS[op]
        self.operand = operand

    def select(self, batch, params, selection):
        value = self.operand.eval(_EMPTY_VIEW, params)
        if value is None:
            return []  # comparison with NULL is unknown for every row
        column = batch.column(self.index)
        fn = self.fn
        try:
            if selection is None:
                return [i for i, v in enumerate(column)
                        if v is not None and fn(v, value)]
            return [i for i in selection
                    if column[i] is not None and fn(column[i], value)]
        except TypeError as exc:
            raise PredicateError(
                f"cannot compare column {self.index} {self.op} "
                f"{value!r}") from exc


class _IsNull(FilterKernel):
    __slots__ = ("index", "negated")

    def __init__(self, index: int, negated: bool):
        self.index = index
        self.negated = negated

    def select(self, batch, params, selection):
        mask = batch.null_mask(self.index)
        if mask is None:
            if self.negated:
                return (list(range(len(batch))) if selection is None
                        else list(selection))
            return []
        want = not self.negated
        if selection is None:
            return [i for i, is_null in enumerate(mask)
                    if bool(is_null) is want]
        return [i for i in selection if bool(mask[i]) is want]


class _Between(FilterKernel):
    __slots__ = ("index", "lo", "hi", "negated")

    def __init__(self, index: int, lo, hi, negated: bool):
        self.index = index
        self.lo = lo
        self.hi = hi
        self.negated = negated

    def select(self, batch, params, selection):
        lo = self.lo.eval(_EMPTY_VIEW, params)
        hi = self.hi.eval(_EMPTY_VIEW, params)
        if lo is None or hi is None:
            return []  # unknown for every non-null row either way
        column = batch.column(self.index)
        base = range(len(column)) if selection is None else selection
        try:
            if self.negated:
                return [i for i in base if column[i] is not None
                        and not lo <= column[i] <= hi]
            return [i for i in base if column[i] is not None
                    and lo <= column[i] <= hi]
        except TypeError as exc:
            raise PredicateError(
                f"cannot range-compare column {self.index} against "
                f"{lo!r}..{hi!r}") from exc


class _InList(FilterKernel):
    __slots__ = ("index", "values", "negated")

    def __init__(self, index: int, values, negated: bool):
        self.index = index
        self.values = values
        self.negated = negated

    def select(self, batch, params, selection):
        candidates = [v.eval(_EMPTY_VIEW, params) for v in self.values]
        has_null = any(v is None for v in candidates)
        members = {v for v in candidates if v is not None}
        column = batch.column(self.index)
        base = range(len(column)) if selection is None else selection
        if self.negated:
            if has_null:
                # ``x NOT IN (..., NULL)`` is never true (match → false,
                # no match → unknown).
                return []
            return [i for i in base if column[i] is not None
                    and column[i] not in members]
        return [i for i in base if column[i] is not None
                and column[i] in members]


class _BoolColumn(FilterKernel):
    __slots__ = ("index",)

    def __init__(self, index: int):
        self.index = index

    def select(self, batch, params, selection):
        column = batch.column(self.index)
        if selection is None:
            return [i for i, v in enumerate(column) if v is True]
        return [i for i in selection if column[i] is True]


class _AndKernel(FilterKernel):
    __slots__ = ("children",)

    def __init__(self, children):
        self.children = tuple(children)

    def select(self, batch, params, selection):
        for child in self.children:
            selection = child.select(batch, params, selection)
            if not selection:
                return []
        return list(selection)


class _OrKernel(FilterKernel):
    __slots__ = ("children",)

    def __init__(self, children):
        self.children = tuple(children)

    def select(self, batch, params, selection):
        union = set()
        for child in self.children:
            union.update(child.select(batch, params, selection))
        return sorted(union)


def compile_filter(expr) -> Optional[FilterKernel]:
    """Compile a bound predicate expression into a kernel tree, or
    ``None`` when any part falls outside the vectorizable subset."""
    if expr is None:
        return None
    if isinstance(expr, Cmp):
        simple = simple_comparison(expr)
        if simple is None:
            return None
        index, op, operand = simple
        if op in SPATIAL_OPS or op not in _OPS:
            return None
        return _Compare(index, op, operand)
    if isinstance(expr, IsNull):
        if isinstance(expr.item, Col) and expr.item.index is not None:
            return _IsNull(expr.item.index, expr.negated)
        return None
    if isinstance(expr, Between):
        return _compile_between(expr, negated=False)
    if isinstance(expr, InList):
        return _compile_in_list(expr, negated=False)
    if isinstance(expr, And):
        return _compile_children(expr.items, _AndKernel)
    if isinstance(expr, Or):
        return _compile_children(expr.items, _OrKernel)
    if isinstance(expr, Not):
        return _compile_not(expr.item)
    if isinstance(expr, Col) and expr.index is not None:
        return _BoolColumn(expr.index)  # bare boolean column
    return None


def _compile_children(items, combiner) -> Optional[FilterKernel]:
    children = [compile_filter(item) for item in items]
    if any(child is None for child in children):
        return None
    return combiner(children)


def _compile_between(expr: Between, negated: bool) -> Optional[FilterKernel]:
    if not isinstance(expr.item, Col) or expr.item.index is None:
        return None
    if expr.lo.column_names() or expr.hi.column_names():
        return None
    return _Between(expr.item.index, expr.lo, expr.hi, negated)


def _compile_in_list(expr: InList, negated: bool) -> Optional[FilterKernel]:
    if not isinstance(expr.item, Col) or expr.item.index is None:
        return None
    if any(v.column_names() for v in expr.values):
        return None
    return _InList(expr.item.index, expr.values, negated)


def _compile_not(inner) -> Optional[FilterKernel]:
    """``NOT`` distributes only over kernels with an exact negated form
    under three-valued logic (unknown stays unknown)."""
    if isinstance(inner, Not):
        return compile_filter(inner.item)
    if isinstance(inner, Cmp):
        simple = simple_comparison(inner)
        if simple is None:
            return None
        index, op, operand = simple
        negated_op = _NEGATED.get(op)
        if negated_op is None:
            return None
        return _Compare(index, negated_op, operand)
    if isinstance(inner, IsNull):
        if isinstance(inner.item, Col) and inner.item.index is not None:
            return _IsNull(inner.item.index, not inner.negated)
        return None
    if isinstance(inner, Between):
        return _compile_between(inner, negated=True)
    if isinstance(inner, InList):
        return _compile_in_list(inner, negated=True)
    return None


# ---------------------------------------------------------------------------
# Projection / aggregation kernels
# ---------------------------------------------------------------------------

def collect_nonnull(batch: ColumnBatch, index: int) -> list:
    """The column's non-NULL values in row order (SQL aggregates skip
    NULLs); one pass per batch."""
    column = batch.column(index)
    if batch.null_mask(index) is None:
        return list(column)
    return [v for v in column if v is not None]


def project_rows(rows: Sequence[tuple], indexes: Sequence[int]) -> list:
    """Project materialised rows onto ``indexes``: one transpose plus one
    zip for the whole result set instead of per-row expression evaluation."""
    if not rows:
        return []
    columns = list(zip(*rows))
    picked = [columns[i] for i in indexes]
    if len(picked) == 1:
        return [(value,) for value in picked[0]]
    return list(zip(*picked))


def fold_aggregate(kind: str, values: list, row_count: int):
    """Finish one aggregate from its accumulated non-NULL value list.

    Mirrors the row executor's fold exactly (same ``sum`` over the same
    value order) so results are bit-identical between the two paths.
    """
    if kind == "count_star":
        return row_count
    if kind == "count":
        return len(values)
    if not values:
        return None
    if kind == "sum":
        return sum(values)
    if kind == "min":
        return min(values)
    if kind == "max":
        return max(values)
    if kind == "avg":
        return sum(values) / len(values)
    raise PredicateError(f"unknown aggregate kernel {kind!r}")
