"""Cost-based access path selection.

The paper's planning interface: the query planner hands each storage
method and access-path attachment a list of *eligible predicates*; the
extension decides their *relevance* and returns an I/O + CPU estimate; the
planner compares the estimates and picks the cheapest route.  "In a
similar manner, the query planner will be able to determine the cost of
using a storage method or attachment to scan a relation in a random order
or with the tuples ordered by particular record fields" — ordering
properties ride along on the cost objects and let the planner skip sorts.

Join planning considers three methods: a join index (when one exists for
the join predicate), index nested-loop (when the inner relation has a
keyed access path on the join column), and plain nested-loop.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from ..core.schema import Field, Schema
from ..errors import QueryError, SchemaError
from ..services.predicate import (And, Col, Expr, conjuncts,
                                  simple_comparison)
from .ast import SelectStmt
from .cost import AccessCost, EligiblePredicate
from .plans import CompiledPredicateCache

__all__ = ["QualifiedSchema", "TableAccess", "JoinStep", "SelectPlan",
           "plan_table_access", "plan_select", "bind_combined"]


class QualifiedSchema(Schema):
    """A schema whose fields are named ``alias.column``.

    Unqualified references resolve when they are unambiguous across the
    constituent relations, mirroring SQL name resolution.
    """

    def field_index(self, name: str) -> int:
        name = name.lower()
        try:
            return super().field_index(name)
        except SchemaError:
            matches = [i for i, f in enumerate(self.fields)
                       if f.name.split(".", 1)[-1] == name]
            if len(matches) == 1:
                return matches[0]
            if len(matches) > 1:
                raise SchemaError(
                    f"column {name!r} is ambiguous; qualify it") from None
            raise

    @classmethod
    def combine(cls, parts: Sequence[Tuple[str, Schema]]) -> "QualifiedSchema":
        fields = []
        for alias, schema in parts:
            for field in schema.fields:
                fields.append(Field(f"{alias}.{field.name}",
                                    field.type_code, field.nullable))
        return cls("+".join(alias for alias, __ in parts), fields)


class TableAccess:
    """The chosen route into one relation.

    ``access`` is ``("storage",)`` — the paper's access path zero — or
    ``("attachment", type_id, instance_name, type_name)``.
    """

    __slots__ = ("relation", "access", "cost", "relevant", "predicate",
                 "ordered_by", "candidates", "predicate_cache")

    def __init__(self, relation: str, access: tuple, cost: AccessCost,
                 relevant: Tuple[EligiblePredicate, ...],
                 predicate: Optional[Expr],
                 candidates: Optional[List[Tuple[tuple, AccessCost]]] = None):
        self.relation = relation
        self.access = access
        self.cost = cost
        self.relevant = relevant
        self.predicate = predicate  # full bound predicate (residual filter)
        self.ordered_by = cost.ordered_by
        self.candidates = candidates or []
        self.predicate_cache = CompiledPredicateCache()

    def compiled_predicate(self, schema, params, stats=None):
        """The residual filter compiled once per plan (cloned per params)."""
        return self.predicate_cache.get(self.predicate, schema, params, stats)

    @property
    def is_storage(self) -> bool:
        return self.access[0] == "storage"

    def explain(self) -> dict:
        if self.is_storage:
            route = "storage scan (access path zero)"
        else:
            __, type_id, instance, type_name = self.access
            route = f"{type_name} {instance!r} (type id {type_id})"
        return {"relation": self.relation, "route": route,
                "estimated_io": round(self.cost.io_pages, 2),
                "estimated_cpu": round(self.cost.cpu_tuples, 2),
                "estimated_rows": round(self.cost.expected_tuples, 2),
                "candidates_considered": len(self.candidates)}


class JoinStep:
    """How the right-hand relation joins onto the left rows."""

    __slots__ = ("method", "right", "left_index", "right_index",
                 "right_access", "join_index_instance", "cost")

    def __init__(self, method: str, right: str, left_index: int,
                 right_index: int, right_access: Optional[TableAccess],
                 join_index_instance: Optional[str], cost: float):
        self.method = method  # "join_index" | "index_nl" | "nested_loop"
        self.right = right
        self.left_index = left_index      # join column in the left schema
        self.right_index = right_index    # join column in the right schema
        self.right_access = right_access
        self.join_index_instance = join_index_instance
        self.cost = cost

    def explain(self) -> dict:
        return {"method": self.method, "right": self.right,
                "estimated_cost": round(self.cost, 2)}


class SelectPlan:
    """A fully bound SELECT plan, ready for repeated execution."""

    __slots__ = ("statement_text", "table", "alias", "access", "join",
                 "combined_schema", "items", "star", "where",
                 "order_by", "needs_sort", "limit", "group_index",
                 "handles", "covering", "where_cache", "columnar",
                 "fragment")

    def __init__(self, **kw):
        for name in self.__slots__:
            setattr(self, name, kw.get(name))
        if self.where_cache is None:
            self.where_cache = CompiledPredicateCache()

    def explain(self) -> dict:
        out = {"access": self.access.explain()}
        if getattr(self, "covering", False):
            out["covering"] = True  # answered from the index alone
        if self.join is not None:
            out["join"] = self.join.explain()
        if self.order_by:
            out["order_by"] = [(self.combined_schema.fields[i].name, asc)
                               for i, asc in self.order_by]
            out["needs_sort"] = self.needs_sort
        return out


# ---------------------------------------------------------------------------
# Access selection for one relation
# ---------------------------------------------------------------------------

def make_eligible(bound_conjuncts: Sequence[Expr]) -> List[EligiblePredicate]:
    eligible = []
    for expr in bound_conjuncts:
        simple = simple_comparison(expr)
        if simple is not None:
            index, op, operand = simple
            eligible.append(EligiblePredicate(expr, index, op, operand))
            continue
        bounds = _between_bounds(expr)
        if bounds is not None:
            eligible.extend(bounds)
            continue
        eligible.append(EligiblePredicate(expr))
    return eligible


def _between_bounds(expr: Expr) -> Optional[List[EligiblePredicate]]:
    """Decompose ``col BETWEEN lo AND hi`` into two range predicates that
    access paths can exploit (the full predicate is still re-applied as the
    residual filter)."""
    from ..services.predicate import Between, Cmp
    if not isinstance(expr, Between):
        return None
    if not isinstance(expr.item, Col) or expr.item.index is None:
        return None
    if expr.lo.column_names() or expr.hi.column_names():
        return None
    low = Cmp(">=", expr.item, expr.lo)
    high = Cmp("<=", expr.item, expr.hi)
    return [EligiblePredicate(low, expr.item.index, ">=", expr.lo),
            EligiblePredicate(high, expr.item.index, "<=", expr.hi)]


def plan_table_access(ctx, handle, where: Optional[Expr],
                      relation_name: Optional[str] = None) -> TableAccess:
    """Ask every route for a cost and keep the cheapest.

    ``where`` must already be bound to the relation's base schema.
    """
    database = ctx.database
    registry = database.registry
    bound_conjuncts = conjuncts(where)
    eligible = make_eligible(bound_conjuncts)

    method = registry.storage_method(handle.descriptor.storage_method_id)
    candidates: List[Tuple[tuple, AccessCost]] = [
        (("storage",), method.estimate_cost(ctx, handle, eligible))]
    for type_id, field in handle.descriptor.present_attachments():
        attachment = registry.attachment_type(type_id)
        if not attachment.is_access_path:
            continue
        for instance_name, instance in field["instances"].items():
            cost = attachment.estimate_cost(ctx, handle, instance_name,
                                            instance, eligible)
            if cost is not None:
                candidates.append(
                    (("attachment", type_id, instance_name, attachment.name),
                     cost))
    access, cost = min(candidates, key=lambda pair: pair[1].total)
    ctx.stats.bump("planner.access_selections")
    return TableAccess(relation_name or handle.name, access, cost,
                       tuple(cost.relevant), where, candidates)


# ---------------------------------------------------------------------------
# Predicate splitting for joins
# ---------------------------------------------------------------------------

def _split_conjuncts(where: Optional[Expr], left_width: int
                     ) -> Tuple[Optional[Expr], Optional[Expr],
                                Optional[Expr]]:
    """Split a combined-schema predicate into left-only / right-only /
    cross parts (expressed in combined-schema indexes)."""
    left_parts, right_parts, cross_parts = [], [], []
    for expr in conjuncts(where):
        columns = expr.columns()
        if columns and max(columns) < left_width:
            left_parts.append(expr)
        elif columns and min(columns) >= left_width:
            right_parts.append(expr)
        else:
            cross_parts.append(expr)

    def rejoin(parts):
        if not parts:
            return None
        return parts[0] if len(parts) == 1 else And(parts)

    return rejoin(left_parts), rejoin(right_parts), rejoin(cross_parts)


def _shift_expr(expr: Expr, delta: int) -> Expr:
    """Rewrite bound column indexes by ``delta`` (combined → base schema)."""
    if isinstance(expr, Col):
        return Col(expr.name.split(".", 1)[-1], expr.index + delta)
    clone = expr.__class__.__new__(expr.__class__)
    for slot in expr.__slots__:
        value = getattr(expr, slot)
        if isinstance(value, Expr):
            value = _shift_expr(value, delta)
        elif isinstance(value, tuple) and value \
                and all(isinstance(v, Expr) for v in value):
            value = tuple(_shift_expr(v, delta) for v in value)
        setattr(clone, slot, value)
    return clone


# ---------------------------------------------------------------------------
# SELECT planning
# ---------------------------------------------------------------------------

def plan_select(ctx, statement: SelectStmt, text: str) -> SelectPlan:
    database = ctx.database
    left_handle = database.catalog.handle(statement.table)
    handles = {statement.alias: left_handle}
    if statement.join is None:
        combined = QualifiedSchema.combine(
            [(statement.alias, left_handle.schema)])
        where = statement.where.bind(combined) if statement.where else None
        # Single table: combined indexes equal base indexes, so the bound
        # predicate works directly against storage-level records.
        access = plan_table_access(ctx, left_handle, where, statement.table)
        join_step = None
    else:
        right_handle = database.catalog.handle(statement.join.table)
        handles[statement.join.alias] = right_handle
        combined = QualifiedSchema.combine(
            [(statement.alias, left_handle.schema),
             (statement.join.alias, right_handle.schema)])
        where = statement.where.bind(combined) if statement.where else None
        left_width = len(left_handle.schema)
        left_only, right_only, cross = _split_conjuncts(where, left_width)
        left_where = _shift_expr(left_only, 0) if left_only else None
        right_where = (_shift_expr(right_only, -left_width)
                       if right_only else None)
        access = plan_table_access(ctx, left_handle, left_where,
                                   statement.table)
        join_step = _plan_join(ctx, statement, combined, left_handle,
                               right_handle, right_where)
        where = cross  # left/right parts are applied at their scans

    items, star = _bind_items(statement, combined)
    order_by = [(combined.field_index(name), asc)
                for name, asc in statement.order_by]
    needs_sort = bool(order_by)
    if order_by and statement.join is None and access.ordered_by:
        first_index, ascending = order_by[0]
        if (len(order_by) == 1 and ascending
                and access.ordered_by[0] == first_index):
            needs_sort = False
    group_index = (combined.field_index(statement.group_by)
                   if statement.group_by else None)
    covering = (statement.join is None
                and _covers_needed(ctx, left_handle, access, items, star,
                                   where, order_by, group_index))
    return SelectPlan(statement_text=text, table=statement.table,
                      alias=statement.alias, access=access, join=join_step,
                      combined_schema=combined, items=items,
                      star=star, where=where, order_by=order_by,
                      needs_sort=needs_sort, limit=statement.limit,
                      group_index=group_index, handles=handles,
                      covering=covering)


def _covers_needed(ctx, handle, access: TableAccess, items, star: bool,
                   where, order_by, group_index) -> bool:
    """True when a chosen B-tree index can answer the query by itself.

    The paper: "Some access path attachments may be able to return record
    fields when the access path key is a multi-field value" — when every
    field the query touches lives in the index key, the executor skips the
    base-relation fetch entirely.
    """
    if access.is_storage or star:
        return False
    __, type_id, instance_name, type_name = access.access
    if type_name != "btree_index":
        return False
    field = handle.descriptor.attachment_field(type_id)
    if field is None:
        return False
    instance = field["instances"].get(instance_name)
    if instance is None:
        return False
    key_fields = set(instance["key_fields"])
    needed = set()
    for expr, __, __agg in items:
        if expr is not None:
            needed |= expr.columns()
    if where is not None:
        needed |= where.columns()
    needed |= {index for index, __ in order_by}
    if group_index is not None:
        needed.add(group_index)
    return bool(needed) and needed <= key_fields


def _bind_items(statement: SelectStmt, combined: QualifiedSchema):
    if statement.star:
        return [], True
    items = []
    for item in statement.items:
        expr = item.expr.bind(combined) if item.expr is not None else None
        items.append((expr, item.alias, item.aggregate))
    return items, False


def _plan_join(ctx, statement: SelectStmt, combined: QualifiedSchema,
               left_handle, right_handle,
               right_where: Optional[Expr]) -> JoinStep:
    database = ctx.database
    registry = database.registry
    join = statement.join
    left_combined_index = combined.field_index(join.left_column)
    right_combined_index = combined.field_index(join.right_column)
    left_width = len(left_handle.schema)
    if left_combined_index >= left_width <= right_combined_index \
            or (left_combined_index < left_width
                and right_combined_index < left_width):
        raise QueryError(
            "the join condition must reference one column from each table")
    if left_combined_index > right_combined_index:
        left_combined_index, right_combined_index = (right_combined_index,
                                                     left_combined_index)
    left_index = left_combined_index
    right_index = right_combined_index - left_width

    left_method = registry.storage_method(
        left_handle.descriptor.storage_method_id)
    right_method = registry.storage_method(
        right_handle.descriptor.storage_method_id)
    left_rows = max(1, left_method.record_count(ctx, left_handle))
    right_rows = max(1, right_method.record_count(ctx, right_handle))
    right_pages = max(1, right_method.page_count(ctx, right_handle))

    options: List[Tuple[str, float, Optional[str], Optional[TableAccess]]] = []

    # 1. Join index: pairs precomputed for exactly this equi-join.
    join_attachment = registry.attachment_type_by_name("join_index")
    ji_field = left_handle.descriptor.attachment_field(
        join_attachment.type_id)
    if ji_field is not None:
        for instance_name, instance in ji_field["instances"].items():
            if instance["role"] != "left":
                continue
            matches_forward = (
                instance["other"] == right_handle.name
                and instance["field_index"] == left_index
                and instance["other_field_index"] == right_index)
            if matches_forward:
                cost = join_attachment.join_cost(instance)
                options.append(("join_index", cost.total, instance_name,
                                None))

    # 2. Index nested loop: keyed access path on the inner join column.
    probe_cost = _inner_probe_cost(ctx, right_handle, right_index)
    if probe_cost is not None:
        options.append(("index_nl", left_rows * probe_cost, None, None))

    # 3. Nested loop: rescan the inner relation per outer row.
    options.append(("nested_loop",
                    left_rows * (AccessCost.IO_WEIGHT * right_pages
                                 + right_rows), None, None))

    method, cost, instance_name, __ = min(options, key=lambda o: o[1])
    right_access = plan_table_access(ctx, right_handle, right_where,
                                     join.table)
    ctx.stats.bump("planner.join_selections")
    return JoinStep(method, join.table, left_index, right_index,
                    right_access, instance_name, cost)


def _inner_probe_cost(ctx, handle, field_index: int) -> Optional[float]:
    """Cost of one keyed probe on the inner relation, if a route exists."""
    database = ctx.database
    registry = database.registry
    for type_name in ("hash_index", "btree_index"):
        attachment = registry.attachment_type_by_name(type_name)
        field = handle.descriptor.attachment_field(attachment.type_id)
        if field is None:
            continue
        for instance in field["instances"].values():
            if list(instance["key_fields"]) == [field_index]:
                # probe (1-2 pages) + one base fetch
                return AccessCost.IO_WEIGHT * 3.0
    method = registry.storage_method(handle.descriptor.storage_method_id)
    if tuple(method.key_fields(handle)) == (field_index,):
        return AccessCost.IO_WEIGHT * 2.0  # keyed storage (btree_file)
    return None
