"""Columnar operator IR: whole plans compiled to column-level programs.

PR 5's columnar path stopped at single-table filter/project/aggregate
shapes recognised by a structural whitelist.  This module replaces the
whitelist with a real lowering step (TQP-style): a bound
:class:`~.planner.SelectPlan` compiles into a :class:`Program` — a small
pipeline of column-level operators (scan → join → filter →
group/aggregate → project → order/limit) — that executes batch-at-a-time
over :class:`~.columnar.ColumnBatch` with every vector primitive routed
through a pluggable :mod:`.backends` backend.

What lowering produces:

* **Scalar expressions** anywhere (filters, projections, aggregate
  arguments) compile through :func:`~.kernels.compile_expression` into
  composed value kernels, so computed projections and expression
  aggregates vectorize instead of falling back to tuple-at-a-time
  ``expr.eval``.
* **Equi-joins** lower to a hash join that builds a key → ordinal-list
  table on the smaller side (chosen from the statistics-grounded cost
  estimates attached at planning time) and probes with the larger, or to
  a sort-merge pairing when both inputs already arrive ordered on their
  join columns.  Join output order matches the row path's nested loop —
  outer arrival order, inner matches in inner arrival order — so results
  are bit-identical, not merely equal as sets.
* **Grouped aggregates** lower to sort-based grouping via run detection:
  one stable sort of the key vector, run boundaries found in one pass,
  folds over gathered value vectors.  Stability preserves arrival order
  inside each group, which keeps float folds bit-identical to the row
  path's hash grouping.
* **Late materialisation** throughout: joins carry selection-vector
  pairs plus key columns, cross filters evaluate over gathered columns,
  and payload columns are materialised only at emit (never at all for
  projection-only queries).

The compiled program is cached on ``SelectPlan.columnar``; the plan
cache discards the whole payload when a referenced descriptor version
changes, so the IR is invalidated exactly with the plan that produced
it.  Kernel failures raise :class:`KernelFallback`, which the executor
turns into a row-path rerun — the IR can cost performance, never
answers.  Scan and dispatch errors pass through untouched (batch pulls
happen outside the kernel try blocks), so storage faults fail
identically on both paths.
"""

from __future__ import annotations

import heapq
from typing import Dict, List, Optional, Sequence, Tuple

from ..services.predicate import Col
from . import kernels
from .columnar import ColumnBatch
from .kernels import ValueKernel, compile_expression

__all__ = ["Program", "Runtime", "KernelFallback", "OrderKey",
           "lower_select"]

#: Aggregates the fold kernel implements (everything the parser accepts).
VECTOR_AGGREGATES = frozenset({"count", "sum", "min", "max", "avg"})


class KernelFallback(Exception):
    """A columnar kernel failed; the executor reruns the plan
    row-at-a-time.  Raised only for errors inside the columnar machinery
    itself — scan and dispatch errors pass through untouched."""


class OrderKey:
    """Sort key honouring per-column ASC/DESC for one ORDER BY spec.

    ``heapq.nsmallest`` compares decorated ``(key, index, row)`` tuples,
    and tuple comparison probes ``==`` before ``<`` — both must be
    defined.  Ties fall through to the decoration index, which keeps the
    top-k selection stable, like the full sort it replaces.
    """

    __slots__ = ("row", "order_by")

    def __init__(self, row, order_by):
        self.row = row
        self.order_by = order_by

    def __lt__(self, other):
        for index, ascending in self.order_by:
            mine, theirs = self.row[index], other.row[index]
            if mine == theirs:
                continue
            return (mine < theirs) if ascending else (theirs < mine)
        return False

    def __eq__(self, other):
        return all(self.row[index] == other.row[index]
                   for index, __ in self.order_by)


class Runtime:
    """What one program execution needs from the executor: batch sources
    through the shared access pump (so scan/dispatch/buffer counters
    stay path-identical), the stats sink, the armed fault service, the
    statement parameters, and the kernel backend."""

    __slots__ = ("stats", "faults", "params", "backend", "fields",
                 "left_batches", "right_batches")

    def __init__(self, stats, faults, params, backend, fields,
                 left_batches, right_batches=None):
        self.stats = stats
        self.faults = faults
        self.params = params
        self.backend = backend
        self.fields = fields
        self.left_batches = left_batches
        self.right_batches = right_batches


class JoinOp:
    """One equi-join lowered from a :class:`~.planner.JoinStep`."""

    __slots__ = ("left_index", "right_index", "build_left", "merge_ok")

    def __init__(self, left_index: int, right_index: int,
                 build_left: bool, merge_ok: bool):
        self.left_index = left_index      # join column, left base schema
        self.right_index = right_index    # join column, right base schema
        self.build_left = build_left      # hash-build side (smaller input)
        self.merge_ok = merge_ok          # both inputs ordered on the keys


class PairBatch:
    """A joined result held as selection-vector pairs (late
    materialisation): ``column(i)`` gathers one combined-schema column
    on demand; full row tuples exist only if :meth:`rows` is called."""

    __slots__ = ("left", "right", "left_sel", "right_sel", "left_width",
                 "backend", "_cache")

    def __init__(self, left: ColumnBatch, right: ColumnBatch,
                 left_sel: Sequence[int], right_sel: Sequence[int],
                 left_width: int, backend):
        self.left = left
        self.right = right
        self.left_sel = left_sel
        self.right_sel = right_sel
        self.left_width = left_width
        self.backend = backend
        self._cache: Dict[int, list] = {}

    def __len__(self) -> int:
        return len(self.left_sel)

    def column(self, index: int) -> list:
        try:
            return self._cache[index]
        except KeyError:
            pass
        if index < self.left_width:
            vector = self.backend.gather(self.left.column(index),
                                         self.left_sel)
        else:
            vector = self.backend.gather(
                self.right.column(index - self.left_width), self.right_sel)
        self._cache[index] = vector
        return vector

    def narrow(self, selection: Sequence[int]) -> "PairBatch":
        backend = self.backend
        return PairBatch(self.left, self.right,
                         backend.gather(self.left_sel, selection),
                         backend.gather(self.right_sel, selection),
                         self.left_width, backend)

    def rows(self) -> List[tuple]:
        left_rows, right_rows = self.left.rows, self.right.rows
        return [tuple(left_rows[i]) + tuple(right_rows[j])
                for i, j in zip(self.left_sel, self.right_sel)]


class Program:
    """A lowered SELECT: which operators run, with what compiled pieces.

    ``mode`` is ``"plain"`` (rows out) or ``"aggregate"`` (folds out).
    Aggregate specs are ``(kind, column_index_or_None, value_kernel)``
    tuples — the index is a fast path for plain-column arguments, the
    kernel handles computed arguments; ``kind`` adds ``"first"`` (plain
    item inside an aggregate query) and ``"count_star"`` to the fold
    kinds.
    """

    __slots__ = ("mode", "join", "cross_filter", "star", "project_indexes",
                 "project_kernels", "aggregates", "group_index", "order_by",
                 "needs_sort", "limit", "left_width", "right_width",
                 "prefer_row_join")

    def __init__(self, **kw):
        for name in self.__slots__:
            setattr(self, name, kw.get(name))

    def describe(self) -> List[str]:
        ops = ["scan"]
        if self.join is not None:
            ops.append("merge_join" if self.join.merge_ok else "hash_join")
            if self.cross_filter is not None:
                ops.append("filter")
        if self.mode == "aggregate":
            ops.append("group" if self.group_index is not None
                       else "aggregate")
        else:
            if self.order_by and self.needs_sort:
                ops.append("order")
            if self.limit is not None:
                ops.append("limit")
            if not self.star:
                ops.append("project")
        return ops

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def run(self, rt: Runtime) -> List[tuple]:
        if self.join is not None:
            pair = self._execute_join(rt)
            if self.mode == "aggregate":
                return self._aggregate_pairs(rt, pair)
            return self._plain_pairs(rt, pair)
        if self.mode == "aggregate":
            if self.group_index is not None:
                return self._group_stream(rt)
            return self._aggregate_stream(rt)
        return self._plain_stream(rt)

    # -- single-table plain: stream batches, keep limit/top-k behaviour
    def _plain_stream(self, rt: Runtime) -> List[tuple]:
        stats = rt.stats
        order_by, limit = self.order_by, self.limit
        sorting = bool(order_by) and self.needs_sort
        topk = sorting and limit is not None
        top: list = []       # bounded top-k candidates (decorated)
        collected: list = []
        position = 0         # global row ordinal — the stable tiebreak
        for batch_rows in rt.left_batches:
            try:
                self._fire(rt)
                stats.bump_many({"executor.columnar.batches": 1,
                                 "executor.columnar.rows": len(batch_rows),
                                 "executor.columnar.kernel_calls": 1})
                if topk:
                    # Bounded top-k: merge the batch into the running
                    # k-best; ties resolve by arrival order, exactly as
                    # the row path's stable ``nsmallest`` over the whole
                    # stream.
                    decorated = [(OrderKey(row, order_by), position + i,
                                  row) for i, row in enumerate(batch_rows)]
                    position += len(batch_rows)
                    top = heapq.nsmallest(limit, top + decorated)
                else:
                    collected.extend(batch_rows)
            except Exception as exc:
                raise KernelFallback from exc
            if not sorting and limit is not None \
                    and len(collected) >= limit:
                break  # stop pulling batches, like the row path's islice
        try:
            if topk:
                materialised = [row for __, __, row in top]
                stats.bump("executor.topk")
            elif sorting:
                materialised = collected
                for index, ascending in reversed(order_by):
                    materialised.sort(key=lambda row: row[index],
                                      reverse=not ascending)
                stats.bump("executor.sorts")
            else:
                materialised = collected
                if limit is not None:
                    stats.bump("executor.limit_short_circuits")
            if limit is not None:
                materialised = materialised[:limit]
            return self._emit_rows(rt, materialised)
        except Exception as exc:
            raise KernelFallback from exc

    def _emit_rows(self, rt: Runtime, rows: List[tuple]) -> List[tuple]:
        """Final projection over materialised rows."""
        if self.star:
            return rows
        rt.stats.bump("executor.columnar.kernel_calls")
        if self.project_indexes is not None:
            return kernels.project_rows(rows, self.project_indexes)
        if not rows:
            return []
        batch = ColumnBatch.from_rows(rows)
        vectors = [kernel.run(batch, rt.params, rt.backend, None)
                   for kernel in self.project_kernels]
        rt.stats.bump_many({"executor.columnar.ir.kernel_calls":
                            len(vectors),
                            "executor.columnar.ir.project.rows": len(rows)})
        return _zip_vectors(vectors)

    # -- single-table aggregate: stream value vectors, fold at the end
    def _aggregate_stream(self, rt: Runtime) -> List[tuple]:
        stats = rt.stats
        specs = self.aggregates
        value_lists: List[list] = [[] for __ in specs]
        first_vals: Optional[list] = None
        row_count = 0
        for batch_rows in rt.left_batches:
            try:
                self._fire(rt)
                stats.bump_many({"executor.columnar.batches": 1,
                                 "executor.columnar.rows": len(batch_rows)})
                batch = ColumnBatch.from_rows(batch_rows, rt.fields)
                row_count += len(batch_rows)
                if first_vals is None and batch_rows:
                    first_vals = [
                        kern.run(batch, rt.params, rt.backend, (0,))[0]
                        if kind == "first" else None
                        for kind, __, kern in specs]
                for slot, (kind, index, kern) in enumerate(specs):
                    if kind in ("count_star", "first"):
                        continue
                    if index is not None:
                        value_lists[slot].extend(
                            kernels.collect_nonnull(batch, index))
                    else:
                        vector = kern.run(batch, rt.params, rt.backend,
                                          None)
                        value_lists[slot].extend(
                            v for v in vector if v is not None)
                        stats.bump("executor.columnar.ir.kernel_calls")
                    stats.bump("executor.columnar.kernel_calls")
            except Exception as exc:
                raise KernelFallback from exc
        try:
            return [self._finish_fold(specs, value_lists, row_count,
                                      first_vals)]
        except Exception as exc:
            raise KernelFallback from exc

    # -- single-table GROUP BY: accumulate columns, sort-group at the end
    def _group_stream(self, rt: Runtime) -> List[tuple]:
        stats = rt.stats
        specs = self.aggregates
        keys: list = []
        vectors: List[Optional[list]] = [
            None if kind == "count_star" else []
            for kind, __, __k in specs]
        for batch_rows in rt.left_batches:
            try:
                self._fire(rt)
                stats.bump_many({"executor.columnar.batches": 1,
                                 "executor.columnar.rows": len(batch_rows),
                                 "executor.columnar.kernel_calls": 1})
                batch = ColumnBatch.from_rows(batch_rows, rt.fields)
                keys.extend(batch.column(self.group_index))
                for slot, (kind, index, kern) in enumerate(specs):
                    if kind == "count_star":
                        continue
                    if index is not None:
                        vectors[slot].extend(batch.column(index))
                    else:
                        vectors[slot].extend(
                            kern.run(batch, rt.params, rt.backend, None))
                        stats.bump("executor.columnar.ir.kernel_calls")
            except Exception as exc:
                raise KernelFallback from exc
        try:
            return self._finish_groups(rt, keys, vectors)
        except Exception as exc:
            raise KernelFallback from exc

    # -- join execution -------------------------------------------------
    def _pull_side(self, rt: Runtime, batches) -> List[tuple]:
        rows: List[tuple] = []
        for batch in batches:  # scan/dispatch errors propagate untouched
            try:
                self._fire(rt)
                rt.stats.bump_many({"executor.columnar.batches": 1,
                                    "executor.columnar.rows": len(batch)})
            except Exception as exc:
                raise KernelFallback from exc
            rows.extend(batch)
        return rows

    def _execute_join(self, rt: Runtime) -> PairBatch:
        left_rows = self._pull_side(rt, rt.left_batches)
        right_rows = self._pull_side(rt, rt.right_batches)
        stats, backend, join = rt.stats, rt.backend, self.join
        try:
            left_batch = ColumnBatch(left_rows, self.left_width)
            right_batch = ColumnBatch(right_rows, self.right_width)
            left_keys = left_batch.column(join.left_index)
            right_keys = right_batch.column(join.right_index)
            if join.merge_ok and None not in left_keys \
                    and None not in right_keys:
                left_sel, right_sel = backend.merge_pairs(left_keys,
                                                          right_keys)
                stats.bump("executor.columnar.ir.join.merge")
            elif join.build_left:
                # Build on the (statistics-attested) smaller left input,
                # probe with the right; one sort restores the row path's
                # outer-major output order.
                table = backend.hash_build(left_keys)
                probe_idx, build_idx = backend.hash_probe(table, right_keys)
                pairs = sorted(zip(build_idx, probe_idx))
                left_sel = [l for l, __ in pairs]
                right_sel = [r for __, r in pairs]
                stats.bump("executor.columnar.ir.join.hash")
            else:
                table = backend.hash_build(right_keys)
                left_sel, right_sel = backend.hash_probe(table, left_keys)
                stats.bump("executor.columnar.ir.join.hash")
            stats.bump_many({
                "executor.columnar.kernel_calls": 2,
                "executor.columnar.ir.kernel_calls": 2,
                "executor.columnar.ir.join.build_rows":
                    len(left_rows) if join.build_left else len(right_rows),
                "executor.columnar.ir.join.probe_rows":
                    len(right_rows) if join.build_left else len(left_rows),
                "executor.columnar.ir.join.pairs": len(left_sel)})
            pair = PairBatch(left_batch, right_batch, left_sel, right_sel,
                             self.left_width, backend)
            if self.cross_filter is not None:
                truth = self.cross_filter.run(pair, rt.params, backend,
                                              None)
                selection = backend.select_true(truth)
                stats.bump_many({
                    "executor.columnar.kernel_calls": 1,
                    "executor.columnar.ir.kernel_calls": 2,
                    "executor.columnar.ir.filter.rows": len(truth)})
                pair = pair.narrow(selection)
            return pair
        except Exception as exc:
            raise KernelFallback from exc

    def _plain_pairs(self, rt: Runtime, pair: PairBatch) -> List[tuple]:
        stats = rt.stats
        try:
            if self.star or self.order_by:
                rows = pair.rows()
                rows = self._order_limit(rt, rows)
                return self._emit_rows(rt, rows)
            # Projection-only join: gather just the projected columns —
            # full combined rows are never built (late materialisation).
            if self.project_indexes is not None:
                vectors = [pair.column(i) for i in self.project_indexes]
            else:
                vectors = [kernel.run(pair, rt.params, rt.backend, None)
                           for kernel in self.project_kernels]
            stats.bump_many({"executor.columnar.kernel_calls": 1,
                             "executor.columnar.ir.kernel_calls":
                                 len(vectors),
                             "executor.columnar.ir.project.rows":
                                 len(pair)})
            if not len(pair):
                return []
            return _zip_vectors(vectors)
        except KernelFallback:
            raise
        except Exception as exc:
            raise KernelFallback from exc

    def _aggregate_pairs(self, rt: Runtime, pair: PairBatch) -> List[tuple]:
        specs = self.aggregates
        try:
            if self.group_index is not None:
                keys = pair.column(self.group_index)
                vectors: List[Optional[list]] = []
                for kind, index, kern in specs:
                    if kind == "count_star":
                        vectors.append(None)
                    elif index is not None:
                        vectors.append(pair.column(index))
                    else:
                        vectors.append(kern.run(pair, rt.params, rt.backend,
                                                None))
                        rt.stats.bump("executor.columnar.ir.kernel_calls")
                return self._finish_groups(rt, keys, vectors)
            row_count = len(pair)
            value_lists: List[list] = []
            first_vals: Optional[list] = None
            if row_count:
                first_vals = [
                    kern.run(pair, rt.params, rt.backend, (0,))[0]
                    if kind == "first" else None
                    for kind, __, kern in specs]
            for kind, index, kern in specs:
                if kind in ("count_star", "first"):
                    value_lists.append([])
                    continue
                vector = (pair.column(index) if index is not None
                          else kern.run(pair, rt.params, rt.backend, None))
                value_lists.append([v for v in vector if v is not None])
                rt.stats.bump("executor.columnar.kernel_calls")
            return [self._finish_fold(specs, value_lists, row_count,
                                      first_vals)]
        except KernelFallback:
            raise
        except Exception as exc:
            raise KernelFallback from exc

    # -- shared tails ---------------------------------------------------
    def _order_limit(self, rt: Runtime, rows: List[tuple]) -> List[tuple]:
        stats = rt.stats
        if self.order_by and self.needs_sort:
            if self.limit is not None:
                rows = heapq.nsmallest(
                    self.limit, rows,
                    key=lambda row: OrderKey(row, self.order_by))
                stats.bump("executor.topk")
            else:
                for index, ascending in reversed(self.order_by):
                    rows.sort(key=lambda row: row[index],
                              reverse=not ascending)
                stats.bump("executor.sorts")
        if self.limit is not None:
            rows = rows[:self.limit]
        return rows

    @staticmethod
    def _finish_fold(specs, value_lists, row_count: int,
                     first_vals: Optional[list]) -> tuple:
        result = []
        for slot, (kind, __, __k) in enumerate(specs):
            if kind == "first":
                result.append(first_vals[slot] if first_vals is not None
                              else None)
            elif kind == "count_star":
                result.append(row_count)
            else:
                result.append(kernels.fold_aggregate(
                    kind, value_lists[slot], row_count))
        return tuple(result)

    def _finish_groups(self, rt: Runtime, keys: list,
                       vectors: List[Optional[list]]) -> List[tuple]:
        """Sort-based grouping: one stable sort, run boundaries in one
        pass, folds over gathered ordinals.  Output groups emit sorted by
        ``repr(key)`` with arrival order preserved inside each group —
        both exactly as the row path's hash grouping."""
        if not keys:
            return []
        stats, specs = rt.stats, self.aggregates
        order, starts = rt.backend.group_runs(keys)
        stats.bump_many({"executor.columnar.kernel_calls": 1,
                         "executor.columnar.ir.kernel_calls": 1,
                         "executor.columnar.ir.group.rows": len(keys)})
        groups: Dict[object, List[int]] = {}
        merged = []
        total = len(order)
        for si, start in enumerate(starts):
            end = starts[si + 1] if si + 1 < len(starts) else total
            key = keys[order[start]]
            ordinals = order[start:end] if isinstance(order, list) \
                else [order[i] for i in range(start, end)]
            existing = groups.get(key)
            if existing is None:
                groups[key] = list(ordinals)
            else:
                # Equal keys split across runs (mixed-repr equal values):
                # merge and restore arrival order.
                existing.extend(ordinals)
                merged.append(key)
        for key in merged:
            groups[key].sort()
        out = []
        for key in sorted(groups, key=repr):
            ordinals = groups[key]
            row = []
            for slot, (kind, __, __k) in enumerate(specs):
                if kind == "first":
                    row.append(vectors[slot][ordinals[0]])
                elif kind == "count_star":
                    row.append(len(ordinals))
                else:
                    vector = vectors[slot]
                    values = [vector[i] for i in ordinals
                              if vector[i] is not None]
                    row.append(kernels.fold_aggregate(kind, values,
                                                      len(ordinals)))
            out.append(tuple(row))
        stats.bump_many({"executor.columnar.ir.group.groups": len(groups)})
        return out

    def _fire(self, rt: Runtime) -> None:
        faults = rt.faults
        if faults is not None and faults.armed:
            faults.fire("columnar.kernel")


def _zip_vectors(vectors: List[list]) -> List[tuple]:
    if len(vectors) == 1:
        return [(value,) for value in vectors[0]]
    return list(zip(*vectors))


# ---------------------------------------------------------------------------
# Lowering
# ---------------------------------------------------------------------------

def lower_select(plan) -> Optional[Program]:
    """Compile a bound SELECT plan into a columnar program, or ``None``
    when the row pipeline is structurally the better engine (streaming
    LIMIT joins) or a piece does not compile."""
    join_step = plan.join
    join_op = None
    cross_filter = None
    left_width = len(plan.handles[plan.alias].schema.fields)
    right_width = len(plan.combined_schema) - left_width
    prefer_row_join = False
    if join_step is not None:
        if plan.limit is not None and not plan.order_by:
            # LIMIT without ORDER BY: the row join streams and stops
            # early; a materialising join cannot win.
            return None
        if plan.where is not None:
            cross_filter = compile_expression(plan.where)
            if cross_filter is None:
                return None
        left_cost = plan.access.cost
        right_cost = join_step.right_access.cost
        build_left = (left_cost.expected_tuples
                      <= right_cost.expected_tuples)
        merge_ok = bool(
            left_cost.ordered_by
            and left_cost.ordered_by[0] == join_step.left_index
            and right_cost.ordered_by
            and right_cost.ordered_by[0] == join_step.right_index)
        join_op = JoinOp(join_step.left_index, join_step.right_index,
                         build_left, merge_ok)
        if join_step.method != "nested_loop":
            # The row path holds a keyed route (index nested-loop or a
            # join index).  Scan-both-sides hashing only wins when its
            # cost estimate undercuts the keyed method's.
            hash_cost = (left_cost.total + right_cost.total
                         + left_cost.expected_tuples
                         + right_cost.expected_tuples)
            prefer_row_join = join_step.cost < hash_cost

    if any(aggregate for __, __, aggregate in plan.items):
        specs = []
        for expr, __, aggregate in plan.items:
            if aggregate is None:
                kern = compile_expression(expr)
                if kern is None:
                    return None
                specs.append(("first", _plain_index(expr), kern))
            elif aggregate == "count" and expr is None:
                specs.append(("count_star", None, None))
            elif aggregate in VECTOR_AGGREGATES:
                kern = compile_expression(expr)
                if kern is None:
                    return None
                specs.append((aggregate, _plain_index(expr), kern))
            else:
                return None
        return Program(mode="aggregate", join=join_op,
                       cross_filter=cross_filter, aggregates=specs,
                       group_index=plan.group_index, star=False,
                       order_by=plan.order_by, needs_sort=plan.needs_sort,
                       limit=plan.limit, left_width=left_width,
                       right_width=right_width,
                       prefer_row_join=prefer_row_join)

    project_indexes: Optional[List[int]] = None
    project_kernels: Optional[List[ValueKernel]] = None
    if not plan.star:
        indexes = [_plain_index(expr) for expr, __, __a in plan.items]
        if all(index is not None for index in indexes):
            project_indexes = indexes
        else:
            project_kernels = []
            for expr, __, __a in plan.items:
                kern = compile_expression(expr)
                if kern is None:
                    return None
                project_kernels.append(kern)
    return Program(mode="plain", join=join_op, cross_filter=cross_filter,
                   star=plan.star, project_indexes=project_indexes,
                   project_kernels=project_kernels,
                   group_index=None, order_by=plan.order_by,
                   needs_sort=plan.needs_sort, limit=plan.limit,
                   left_width=left_width, right_width=right_width,
                   prefer_row_join=prefer_row_join)


def _plain_index(expr) -> Optional[int]:
    if isinstance(expr, Col) and expr.index is not None:
        return expr.index
    return None
