"""Execution counters shared by the common services.

The paper's cost-estimation interfaces reason in I/O and CPU units, and the
benchmark harness validates the architecture's performance claims by
*counting* work rather than timing a simulated disk.  Every common service
and extension increments counters here; benchmarks and the query planner
read them.

Restart work is observable through the ``recovery.*`` family:
``recovery.analysis.records`` (log records scanned by restart analysis),
``recovery.redo.applied`` / ``recovery.redo.skipped_page_lsn`` (logical
operations re-applied vs. skipped by the page-LSN guard), and
``recovery.undo.records`` (loser operations rolled back at restart).
Group commit reports under ``txn.group_commit.*``.
"""

from __future__ import annotations

from collections import Counter
from contextlib import contextmanager
from typing import Dict, Optional

__all__ = ["StatsService", "NamespacedStats"]


class NamespacedStats:
    """A bump-compatible view that mirrors counters under a namespace.

    ``namespace.bump("remote.messages")`` increments both the engine-wide
    ``remote.messages`` total *and* ``<ns>.remote.messages`` — e.g.
    ``shard.0.remote.messages`` — so per-peer breakdowns and engine totals
    reconcile exactly (the same discipline the per-session mirror uses).
    Derived benchmark metrics (E21's per-shard critical path) read the
    namespaced counters instead of wall-clock time.
    """

    __slots__ = ("_stats", "_ns")

    def __init__(self, stats: "StatsService", ns: str):
        self._stats = stats
        self._ns = ns

    @property
    def namespace(self) -> str:
        return self._ns

    def bump(self, name: str, amount: int = 1) -> None:
        self._stats.bump(name, amount)
        self._stats.bump(f"{self._ns}.{name}", amount)

    def bump_many(self, counters: Dict[str, int]) -> None:
        self._stats.bump_many(counters)
        self._stats.bump_many({f"{self._ns}.{name}": amount
                               for name, amount in counters.items()})

    def get(self, name: str) -> int:
        """The namespaced value (use the underlying service for totals)."""
        return self._stats.get(f"{self._ns}.{name}")


class StatsService:
    """A named-counter sink with snapshot/delta support.

    Counters are engine-wide; a *session scope* (``with
    stats.session(id):``) additionally mirrors every bump into that
    session's private counter set, so per-session and engine-wide totals
    reconcile exactly: for any counter, the sum over sessions plus the
    out-of-session remainder equals the engine-wide value.
    """

    def __init__(self):
        self._counters = Counter()
        self._session: Optional[int] = None
        self._per_session: Dict[int, Counter] = {}
        self._namespaces: Dict[str, NamespacedStats] = {}

    def namespace(self, ns: str) -> NamespacedStats:
        """A view whose bumps also mirror under ``<ns>.<counter>``."""
        view = self._namespaces.get(ns)
        if view is None:
            view = self._namespaces[ns] = NamespacedStats(self, ns)
        return view

    @contextmanager
    def session(self, session_id: int):
        """Attribute all bumps inside the block to ``session_id`` too."""
        previous = self._session
        self._session = session_id
        try:
            yield self
        finally:
            self._session = previous

    def bump(self, name: str, amount: int = 1) -> None:
        self._counters[name] += amount
        if self._session is not None:
            self._per_session.setdefault(self._session,
                                         Counter())[name] += amount

    def bump_many(self, counters: Dict[str, int]) -> None:
        """Add several counters at once (one call per batch, not per record).

        Set-at-a-time operations account for a whole batch in a single
        update — ``bump_many({"dispatch.inserts": len(batch)})`` — so the
        counter values stay identical to the tuple-at-a-time path while the
        bookkeeping cost stops scaling with the batch size.
        """
        self._counters.update(counters)
        if self._session is not None:
            self._per_session.setdefault(self._session,
                                         Counter()).update(counters)

    def get(self, name: str) -> int:
        return self._counters[name]

    def session_get(self, session_id: int, name: str) -> int:
        return self._per_session.get(session_id, Counter())[name]

    def session_snapshot(self, session_id: int) -> dict:
        return dict(self._per_session.get(session_id, Counter()))

    def session_ids(self) -> tuple:
        return tuple(self._per_session)

    def drop_session(self, session_id: int) -> None:
        """Forget a closed session's counters (engine-wide ones remain)."""
        self._per_session.pop(session_id, None)

    def reset(self) -> None:
        self._counters.clear()
        self._per_session.clear()

    def snapshot(self) -> dict:
        return dict(self._counters)

    def delta(self, before: dict) -> dict:
        """Difference between the current counters and a prior snapshot."""
        result = {}
        for name, value in self._counters.items():
            change = value - before.get(name, 0)
            if change:
                result[name] = change
        return result

    def __repr__(self) -> str:
        inner = ", ".join(f"{k}={v}" for k, v in sorted(self._counters.items()))
        return f"StatsService({inner})"
