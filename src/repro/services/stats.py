"""Execution counters shared by the common services.

The paper's cost-estimation interfaces reason in I/O and CPU units, and the
benchmark harness validates the architecture's performance claims by
*counting* work rather than timing a simulated disk.  Every common service
and extension increments counters here; benchmarks and the query planner
read them.
"""

from __future__ import annotations

from collections import Counter

__all__ = ["StatsService"]


class StatsService:
    """A named-counter sink with snapshot/delta support."""

    def __init__(self):
        self._counters = Counter()

    def bump(self, name: str, amount: int = 1) -> None:
        self._counters[name] += amount

    def get(self, name: str) -> int:
        return self._counters[name]

    def reset(self) -> None:
        self._counters.clear()

    def snapshot(self) -> dict:
        return dict(self._counters)

    def delta(self, before: dict) -> dict:
        """Difference between the current counters and a prior snapshot."""
        result = {}
        for name, value in self._counters.items():
            change = value - before.get(name, 0)
            if change:
                result[name] = change
        return result

    def __repr__(self) -> str:
        inner = ", ".join(f"{k}={v}" for k, v in sorted(self._counters.items()))
        return f"StatsService({inner})"
