"""Lock-based concurrency control.

The paper: "The data management extension architecture assumes that all
storage method and attachment implementations will use a locking-based
concurrency controller ... all lock controllers must be able to participate
in transaction commit and system-wide deadlock detection events."

The lock manager supports hierarchical modes (IS/IX/S/SIX/X) over arbitrary
hashable resource names (conventionally ``("rel", rel_id)`` and
``("rec", rel_id, key)``), lock upgrades, and deadlock detection over an
explicit waits-for graph.

The library is deterministic and single-threaded, so a conflicting request
never blocks: it registers a wait edge (replacing any previous wait — a
transaction waits for one request at a time), runs cycle detection, and
raises either :class:`DeadlockError` (carrying the normalised cycle and a
deterministically chosen victim, the youngest participant) or
:class:`LockConflictError` (the caller may retry once the holder finishes).
Wait edges are cleared when the waiter retries successfully, releases its
locks, or cancels the wait.
"""

from __future__ import annotations

import enum
from typing import Dict, FrozenSet, Hashable, List, Optional, Set, Tuple

from ..errors import DeadlockError, LockConflictError, LockError

__all__ = ["LockMode", "LockManager"]


class LockMode(enum.IntEnum):
    """Hierarchical lock modes, weakest to strongest."""

    IS = 1
    IX = 2
    S = 3
    SIX = 4
    X = 5


_M = LockMode
#: Classic compatibility matrix for hierarchical locking.
_COMPATIBLE: Dict[Tuple[LockMode, LockMode], bool] = {}
for _a, _row in [
    (_M.IS, {_M.IS: True, _M.IX: True, _M.S: True, _M.SIX: True, _M.X: False}),
    (_M.IX, {_M.IS: True, _M.IX: True, _M.S: False, _M.SIX: False, _M.X: False}),
    (_M.S, {_M.IS: True, _M.IX: False, _M.S: True, _M.SIX: False, _M.X: False}),
    (_M.SIX, {_M.IS: True, _M.IX: False, _M.S: False, _M.SIX: False, _M.X: False}),
    (_M.X, {_M.IS: False, _M.IX: False, _M.S: False, _M.SIX: False, _M.X: False}),
]:
    for _b, _ok in _row.items():
        _COMPATIBLE[(_a, _b)] = _ok

#: Mode join: the weakest mode at least as strong as both (for upgrades).
_JOIN: Dict[Tuple[LockMode, LockMode], LockMode] = {}
for _a in _M:
    for _b in _M:
        if _a == _b:
            _JOIN[(_a, _b)] = _a
        elif {_a, _b} == {_M.IS, _M.IX}:
            _JOIN[(_a, _b)] = _M.IX
        elif {_a, _b} == {_M.IS, _M.S}:
            _JOIN[(_a, _b)] = _M.S
        elif {_a, _b} == {_M.IS, _M.SIX} or {_a, _b} == {_M.IX, _M.S} \
                or {_a, _b} == {_M.IX, _M.SIX} or {_a, _b} == {_M.S, _M.SIX}:
            _JOIN[(_a, _b)] = _M.SIX
        else:
            _JOIN[(_a, _b)] = _M.X


def compatible(a: LockMode, b: LockMode) -> bool:
    return _COMPATIBLE[(a, b)]


def join_modes(a: LockMode, b: LockMode) -> LockMode:
    return _JOIN[(a, b)]


class LockManager:
    """Grants, upgrades, releases, and deadlock detection."""

    def __init__(self, stats=None):
        self.stats = stats
        # resource -> {txn_id: mode}
        self._holders: Dict[Hashable, Dict[int, LockMode]] = {}
        # txn_id -> set of resources held
        self._held: Dict[int, Set[Hashable]] = {}
        # waits-for graph: waiter txn -> set of holder txns
        self._waits_for: Dict[int, Set[int]] = {}

    # -- acquisition ------------------------------------------------------------
    def acquire(self, txn_id: int, resource: Hashable, mode: LockMode) -> LockMode:
        """Grant ``mode`` (or an upgrade) on ``resource`` to ``txn_id``.

        Returns the mode now held.  Raises :class:`DeadlockError` when the
        implied wait closes a cycle, :class:`LockConflictError` otherwise.
        """
        if self.stats is not None:
            self.stats.bump("locks.acquire_calls")
        holders = self._holders.setdefault(resource, {})
        current = holders.get(txn_id)
        wanted = mode if current is None else join_modes(current, mode)
        if current is not None and wanted == current:
            return current  # already strong enough
        blockers = {t for t, m in holders.items()
                    if t != txn_id and not compatible(wanted, m)}
        if blockers:
            # A transaction waits for exactly one request at a time, so a
            # new conflict *replaces* the wait edges — accumulating edges
            # from earlier retries on other resources manufactured
            # phantom cycles out of waits that no longer existed.
            self._waits_for[txn_id] = set(blockers)
            cycle = self._find_cycle(txn_id)
            if cycle:
                self.cancel_wait(txn_id)
                if self.stats is not None:
                    self.stats.bump("locks.deadlocks_detected")
                raise DeadlockError(self._normalize_cycle(cycle))
            raise LockConflictError(resource, wanted, blockers)
        holders[txn_id] = wanted
        self._held.setdefault(txn_id, set()).add(resource)
        self.cancel_wait(txn_id)
        return wanted

    def cancel_wait(self, txn_id: int) -> None:
        """Withdraw any registered wait for the transaction."""
        self._waits_for.pop(txn_id, None)

    def covers(self, txn_id: int, resource: Hashable, mode: LockMode) -> bool:
        """Whether the lock held on ``resource`` already subsumes ``mode``
        for every child of the resource in the lock hierarchy.

        Used for lock escalation: a transaction holding a relation-level X
        lock (or S/SIX for reads) need not lock each record individually.
        This is a read-only check, not an acquisition.
        """
        held = self._holders.get(resource, {}).get(txn_id)
        if held is None:
            return False
        if held == LockMode.X:
            return True
        return mode == LockMode.S and held in (LockMode.S, LockMode.SIX)

    # -- release ------------------------------------------------------------------
    def release(self, txn_id: int, resource: Hashable) -> None:
        holders = self._holders.get(resource)
        if not holders or txn_id not in holders:
            raise LockError(f"transaction {txn_id} holds no lock on {resource!r}")
        del holders[txn_id]
        if not holders:
            del self._holders[resource]
        held = self._held.get(txn_id)
        if held:
            held.discard(resource)
        self._unblock(txn_id)

    def release_all(self, txn_id: int) -> int:
        """Release every lock the transaction holds (commit/abort time)."""
        resources = self._held.pop(txn_id, set())
        for resource in resources:
            holders = self._holders.get(resource)
            if holders:
                holders.pop(txn_id, None)
                if not holders:
                    del self._holders[resource]
        self.cancel_wait(txn_id)
        self._unblock(txn_id)
        return len(resources)

    def _unblock(self, released_txn: int) -> None:
        for waiter in list(self._waits_for):
            self._waits_for[waiter].discard(released_txn)
            if not self._waits_for[waiter]:
                del self._waits_for[waiter]

    def reset(self) -> None:
        """Forget every lock and wait (restart: lock state is volatile)."""
        self._holders.clear()
        self._held.clear()
        self._waits_for.clear()

    # -- introspection -----------------------------------------------------------------
    def held_mode(self, txn_id: int, resource: Hashable) -> Optional[LockMode]:
        return self._holders.get(resource, {}).get(txn_id)

    def holders(self, resource: Hashable) -> Dict[int, LockMode]:
        return dict(self._holders.get(resource, {}))

    def locks_held(self, txn_id: int) -> FrozenSet[Hashable]:
        return frozenset(self._held.get(txn_id, set()))

    def waits_for(self) -> Dict[int, FrozenSet[int]]:
        return {w: frozenset(hs) for w, hs in self._waits_for.items()}

    # -- deadlock detection ---------------------------------------------------------------
    @staticmethod
    def _normalize_cycle(cycle: List[int]) -> List[int]:
        """Canonical form of a waits-for cycle.

        ``_find_cycle`` returns ``[a, b, ..., a]`` starting wherever the
        DFS happened to close the loop; the same deadlock must always
        report the same cycle (and hence the same deterministic victim),
        so drop the duplicated endpoint and rotate the smallest
        transaction id to the front.
        """
        nodes = cycle[:-1] if len(cycle) > 1 and cycle[0] == cycle[-1] else cycle
        pivot = nodes.index(min(nodes))
        return nodes[pivot:] + nodes[:pivot]

    def _find_cycle(self, start: int) -> Optional[List[int]]:
        """Depth-first search for a cycle through ``start`` in waits-for."""
        path: List[int] = []
        visited: Set[int] = set()

        def visit(node: int) -> Optional[List[int]]:
            if node in path:
                return path[path.index(node):] + [node]
            if node in visited:
                return None
            visited.add(node)
            path.append(node)
            for succ in self._waits_for.get(node, ()):
                found = visit(succ)
                if found:
                    return found
            path.pop()
            return None

        return visit(start)

    def __repr__(self) -> str:
        return (f"LockManager({len(self._holders)} locked resources, "
                f"{len(self._waits_for)} waiters)")
