"""Deterministic fault injection for the common services.

The paper's architecture promises that extension failures of every class —
vetoes, protocol violations, outright crashes — are coordinated by the
common services without corrupting shared state.  Testing that promise
requires *producing* those failures on demand.  This service threads named
injection points through the layers that can fail in a real system:

* ``disk.read`` / ``disk.write`` — device I/O errors
* ``wal.append`` / ``wal.flush`` — log manager failures
* ``buffer.write_back`` — failures while cleaning a dirty frame
* ``foreign.remote_call`` — lost messages to the foreign gateway
* ``dispatch.storage.<op>`` / ``dispatch.attached.<type>.<op>`` — faults
  raised from inside a procedure-vector call (a buggy extension)

Every armed point is **deterministic**: fail on the Nth call, or fail with
a seeded probability, in one-shot or persistent mode.  Given the same
seed and call sequence, a schedule of injected faults replays exactly —
the crash-recovery fuzz harness (benchmarks/bench_faults.py, E17) relies
on this to make adversarial schedules reproducible in CI.
"""

from __future__ import annotations

import random
import threading
from typing import Dict, Optional

from ..errors import InjectedFault

__all__ = ["FaultInjector", "InjectedFault"]


class _FaultPlan:
    """One armed injection point's schedule."""

    __slots__ = ("point", "error", "nth", "probability", "rng", "one_shot",
                 "calls", "fired")

    def __init__(self, point: str, error=None, nth: Optional[int] = None,
                 probability: float = 0.0, seed: Optional[int] = None,
                 one_shot: bool = True):
        self.point = point
        self.error = error
        self.nth = nth
        self.probability = probability
        self.rng = random.Random(seed) if probability > 0.0 else None
        self.one_shot = one_shot
        self.calls = 0
        self.fired = 0

    def should_fire(self) -> bool:
        self.calls += 1
        if self.nth is not None:
            # One-shot: fire on exactly the Nth call.  Persistent: fire on
            # every Nth call (a period), which keeps long fuzz runs honest.
            if self.one_shot:
                return self.calls == self.nth
            return self.calls % self.nth == 0
        if self.rng is not None:
            return self.rng.random() < self.probability
        return False  # armed with neither trigger: counts calls only

    def make_error(self):
        if self.error is None:
            return InjectedFault(self.point, self.calls)
        if isinstance(self.error, BaseException):
            return self.error
        if isinstance(self.error, type):
            return self.error(
                f"injected fault at {self.point!r} (call #{self.calls})")
        return self.error()


class FaultInjector:
    """Named deterministic injection points, armed per point.

    Injection points call :meth:`fire` on every pass; an unarmed injector
    is a cheap attribute check on the hot path (``faults.armed``).  Tests
    and the fuzz harness arm points with :meth:`arm`, reproduce schedules
    from seeds, and read back counters from the shared stats service
    (``faults.injected.<point>``).
    """

    def __init__(self, stats=None):
        self.stats = stats
        self._plans: Dict[str, _FaultPlan] = {}
        self._fired: Dict[str, int] = {}
        #: True when any point is armed — the hot-path guard.
        self.armed = False
        # Scatter-gather workers hit injection points concurrently; the
        # per-plan call counters must not lose updates or double-fire a
        # one-shot across threads.
        self._lock = threading.Lock()

    # -- arming ---------------------------------------------------------------
    def arm(self, point: str, error=None, nth: Optional[int] = None,
            probability: float = 0.0, seed: Optional[int] = None,
            one_shot: bool = True) -> None:
        """Arm an injection point.

        ``error`` may be an exception instance, an exception class, or a
        zero-argument factory; omitted, the point raises
        :class:`InjectedFault`.  ``nth`` fires on the Nth call (one-shot)
        or every Nth call (persistent); ``probability`` + ``seed`` fires
        with a seeded per-point probability.  ``one_shot`` disarms the
        point after its first firing.
        """
        self._plans[point] = _FaultPlan(point, error, nth, probability,
                                        seed, one_shot)
        self.armed = True

    def disarm(self, point: Optional[str] = None) -> None:
        """Disarm one point, or all of them when ``point`` is omitted."""
        if point is None:
            self._plans.clear()
        else:
            self._plans.pop(point, None)
        self.armed = bool(self._plans)

    def is_armed(self, point: str) -> bool:
        return point in self._plans

    # -- the injection points call this ----------------------------------------
    def fire(self, point: str) -> None:
        """Raise the armed error if the point's schedule says so."""
        with self._lock:
            plan = self._plans.get(point)
            if plan is None:
                return
            if not plan.should_fire():
                return
            plan.fired += 1
            self._fired[point] = self._fired.get(point, 0) + 1
            error = plan.make_error()
            if plan.one_shot:
                self.disarm(point)
            if self.stats is not None:
                self.stats.bump("faults.injected")
                self.stats.bump(f"faults.injected.{point}")
        raise error

    # -- introspection -----------------------------------------------------------
    def calls(self, point: str) -> int:
        plan = self._plans.get(point)
        return plan.calls if plan is not None else 0

    def injected(self, point: Optional[str] = None) -> int:
        if point is None:
            return sum(self._fired.values())
        return self._fired.get(point, 0)

    def __repr__(self) -> str:
        return f"FaultInjector({sorted(self._plans)})"
