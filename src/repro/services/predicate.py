"""Filter-predicate expressions and the common predicate evaluator.

The paper: "Another common service interface supports the evaluation of
filter predicates during direct-by-key and key-sequential accesses, and
supports integrity constraint checking ...  The intention of this common
service facility is to allow filter predicates to be evaluated while the
field values from the relation storage or access path are still in the
buffer pool.  The predicate evaluation facility is also available to the
integrity constraint attachments and to the query execution engine."

This module provides exactly that shared facility:

* an expression AST (:class:`Expr` subclasses) with constants, columns,
  named parameters, arithmetic, comparisons, boolean connectives with SQL
  three-valued (Kleene) logic, ``IS [NOT] NULL``, ``IN``, ``BETWEEN``,
  ``LIKE``, registered scalar functions, and the spatial predicates the
  paper names for the R-tree access path (``ENCLOSES``, plus
  ``ENCLOSED_BY`` and ``OVERLAPS``);
* a text parser (``parse_expression`` / :meth:`Predicate.parse`), used both
  by the mini-SQL front end and by DDL attribute lists (check-constraint
  predicates arrive as strings);
* binding against a :class:`~repro.core.schema.Schema` (names → field
  indexes) so extensions evaluate against partial
  :class:`~repro.core.records.RecordView` objects without copying records
  out of the buffer pool;
* the analysis entry points the query planner needs: conjunct splitting and
  simple-comparison recognition ("eligible predicates").
"""

from __future__ import annotations

import re
from typing import Callable, Dict, List, Optional, Sequence, Set, Tuple, Union

from ..errors import PredicateError
from ..core.records import Box, RecordView

__all__ = ["Expr", "Const", "Col", "Param", "Cmp", "And", "Or", "Not",
           "Arith", "Neg", "IsNull", "InList", "Between", "Like", "Func",
           "Predicate", "parse_expression", "conjuncts", "simple_comparison",
           "register_function", "COMPARISON_OPS", "SPATIAL_OPS"]

COMPARISON_OPS = frozenset({"=", "!=", "<", "<=", ">", ">="})
SPATIAL_OPS = frozenset({"ENCLOSES", "ENCLOSED_BY", "OVERLAPS"})

_NEGATED = {"=": "!=", "!=": "=", "<": ">=", "<=": ">", ">": "<=", ">=": "<"}
_FLIPPED = {"=": "=", "!=": "!=", "<": ">", "<=": ">=", ">": "<", ">=": "<="}


# ---------------------------------------------------------------------------
# Scalar function registry (the paper's evaluator "will be able to call
# functions that are passed to it").
# ---------------------------------------------------------------------------

_FUNCTIONS: Dict[str, Callable] = {}


def register_function(name: str, fn: Callable) -> None:
    """Register a scalar function usable in predicate expressions."""
    _FUNCTIONS[name.lower()] = fn


for _name, _fn in [
    ("abs", abs),
    ("lower", lambda s: s.lower()),
    ("upper", lambda s: s.upper()),
    ("length", len),
    ("round", round),
    ("mod", lambda a, b: a % b),
    ("min", min),
    ("max", max),
    ("area", lambda b: b.area()),
]:
    register_function(_name, _fn)


# ---------------------------------------------------------------------------
# Expression AST
# ---------------------------------------------------------------------------

class Expr:
    """Base expression node."""

    def eval(self, view: RecordView, params: Optional[dict] = None):
        raise NotImplementedError

    def bind(self, schema) -> "Expr":
        """Resolve column names to field indexes; returns a bound copy."""
        raise NotImplementedError

    def columns(self) -> Set[int]:
        """Field indexes referenced (bound expressions only)."""
        raise NotImplementedError

    def column_names(self) -> Set[str]:
        """Column names referenced (works bound or unbound)."""
        raise NotImplementedError

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.to_text()})"

    def to_text(self) -> str:
        raise NotImplementedError


class Const(Expr):
    __slots__ = ("value",)

    def __init__(self, value):
        self.value = value

    def eval(self, view, params=None):
        return self.value

    def bind(self, schema):
        return self

    def columns(self):
        return set()

    def column_names(self):
        return set()

    def to_text(self):
        if isinstance(self.value, str):
            return "'" + self.value.replace("'", "''") + "'"
        if isinstance(self.value, Box):
            return (f"box({self.value.x_lo}, {self.value.y_lo}, "
                    f"{self.value.x_hi}, {self.value.y_hi})")
        if self.value is None:
            return "NULL"
        return repr(self.value)


class Col(Expr):
    __slots__ = ("name", "index")

    def __init__(self, name: str, index: Optional[int] = None):
        self.name = name.lower()
        self.index = index

    def eval(self, view, params=None):
        if self.index is None:
            raise PredicateError(f"column {self.name!r} is unbound")
        return view[self.index]

    def bind(self, schema):
        return Col(self.name, schema.field_index(self.name))

    def columns(self):
        if self.index is None:
            raise PredicateError(f"column {self.name!r} is unbound")
        return {self.index}

    def column_names(self):
        return {self.name}

    def to_text(self):
        return self.name


class Param(Expr):
    """A named parameter (``:name``), supplied at evaluation time."""

    __slots__ = ("name",)

    def __init__(self, name: str):
        self.name = name.lower()

    def eval(self, view, params=None):
        if not params or self.name not in params:
            raise PredicateError(f"parameter :{self.name} was not supplied")
        return params[self.name]

    def bind(self, schema):
        return self

    def columns(self):
        return set()

    def column_names(self):
        return set()

    def to_text(self):
        return f":{self.name}"


class Cmp(Expr):
    """A comparison.  NULL operands make the result unknown (``None``)."""

    __slots__ = ("op", "left", "right")

    def __init__(self, op: str, left: Expr, right: Expr):
        if op not in COMPARISON_OPS and op not in SPATIAL_OPS:
            raise PredicateError(f"unknown comparison operator {op!r}")
        self.op = op
        self.left = left
        self.right = right

    def eval(self, view, params=None):
        lhs = self.left.eval(view, params)
        rhs = self.right.eval(view, params)
        if lhs is None or rhs is None:
            return None
        if self.op in SPATIAL_OPS:
            if not isinstance(lhs, Box) or not isinstance(rhs, Box):
                raise PredicateError(
                    f"{self.op} needs BOX operands, got "
                    f"{type(lhs).__name__} and {type(rhs).__name__}")
            if self.op == "ENCLOSES":
                return lhs.encloses(rhs)
            if self.op == "ENCLOSED_BY":
                return lhs.enclosed_by(rhs)
            return lhs.overlaps(rhs)
        try:
            if self.op == "=":
                return lhs == rhs
            if self.op == "!=":
                return lhs != rhs
            if self.op == "<":
                return lhs < rhs
            if self.op == "<=":
                return lhs <= rhs
            if self.op == ">":
                return lhs > rhs
            return lhs >= rhs
        except TypeError as exc:
            raise PredicateError(
                f"cannot compare {lhs!r} {self.op} {rhs!r}") from exc

    def bind(self, schema):
        return Cmp(self.op, self.left.bind(schema), self.right.bind(schema))

    def columns(self):
        return self.left.columns() | self.right.columns()

    def column_names(self):
        return self.left.column_names() | self.right.column_names()

    def to_text(self):
        return f"{self.left.to_text()} {self.op} {self.right.to_text()}"


class And(Expr):
    __slots__ = ("items",)

    def __init__(self, items: Sequence[Expr]):
        self.items = tuple(items)

    def eval(self, view, params=None):
        unknown = False
        for item in self.items:
            value = item.eval(view, params)
            if value is False:
                return False
            if value is None:
                unknown = True
        return None if unknown else True

    def bind(self, schema):
        return And([i.bind(schema) for i in self.items])

    def columns(self):
        return set().union(*(i.columns() for i in self.items))

    def column_names(self):
        return set().union(*(i.column_names() for i in self.items))

    def to_text(self):
        return " AND ".join(
            f"({i.to_text()})" if isinstance(i, Or) else i.to_text()
            for i in self.items)


class Or(Expr):
    __slots__ = ("items",)

    def __init__(self, items: Sequence[Expr]):
        self.items = tuple(items)

    def eval(self, view, params=None):
        unknown = False
        for item in self.items:
            value = item.eval(view, params)
            if value is True:
                return True
            if value is None:
                unknown = True
        return None if unknown else False

    def bind(self, schema):
        return Or([i.bind(schema) for i in self.items])

    def columns(self):
        return set().union(*(i.columns() for i in self.items))

    def column_names(self):
        return set().union(*(i.column_names() for i in self.items))

    def to_text(self):
        return " OR ".join(i.to_text() for i in self.items)


class Not(Expr):
    __slots__ = ("item",)

    def __init__(self, item: Expr):
        self.item = item

    def eval(self, view, params=None):
        value = self.item.eval(view, params)
        return None if value is None else not value

    def bind(self, schema):
        return Not(self.item.bind(schema))

    def columns(self):
        return self.item.columns()

    def column_names(self):
        return self.item.column_names()

    def to_text(self):
        return f"NOT ({self.item.to_text()})"


class Arith(Expr):
    __slots__ = ("op", "left", "right")

    def __init__(self, op: str, left: Expr, right: Expr):
        if op not in ("+", "-", "*", "/", "%"):
            raise PredicateError(f"unknown arithmetic operator {op!r}")
        self.op = op
        self.left = left
        self.right = right

    def eval(self, view, params=None):
        lhs = self.left.eval(view, params)
        rhs = self.right.eval(view, params)
        if lhs is None or rhs is None:
            return None
        try:
            if self.op == "+":
                return lhs + rhs
            if self.op == "-":
                return lhs - rhs
            if self.op == "*":
                return lhs * rhs
            if self.op == "/":
                return lhs / rhs
            return lhs % rhs
        except (TypeError, ZeroDivisionError) as exc:
            raise PredicateError(
                f"cannot evaluate {lhs!r} {self.op} {rhs!r}") from exc

    def bind(self, schema):
        return Arith(self.op, self.left.bind(schema), self.right.bind(schema))

    def columns(self):
        return self.left.columns() | self.right.columns()

    def column_names(self):
        return self.left.column_names() | self.right.column_names()

    def to_text(self):
        return f"({self.left.to_text()} {self.op} {self.right.to_text()})"


class Neg(Expr):
    __slots__ = ("item",)

    def __init__(self, item: Expr):
        self.item = item

    def eval(self, view, params=None):
        value = self.item.eval(view, params)
        return None if value is None else -value

    def bind(self, schema):
        return Neg(self.item.bind(schema))

    def columns(self):
        return self.item.columns()

    def column_names(self):
        return self.item.column_names()

    def to_text(self):
        return f"-{self.item.to_text()}"


class IsNull(Expr):
    __slots__ = ("item", "negated")

    def __init__(self, item: Expr, negated: bool = False):
        self.item = item
        self.negated = negated

    def eval(self, view, params=None):
        is_null = self.item.eval(view, params) is None
        return not is_null if self.negated else is_null

    def bind(self, schema):
        return IsNull(self.item.bind(schema), self.negated)

    def columns(self):
        return self.item.columns()

    def column_names(self):
        return self.item.column_names()

    def to_text(self):
        suffix = "IS NOT NULL" if self.negated else "IS NULL"
        return f"{self.item.to_text()} {suffix}"


class InList(Expr):
    __slots__ = ("item", "values")

    def __init__(self, item: Expr, values: Sequence[Expr]):
        self.item = item
        self.values = tuple(values)

    def eval(self, view, params=None):
        needle = self.item.eval(view, params)
        if needle is None:
            return None
        unknown = False
        for value in self.values:
            candidate = value.eval(view, params)
            if candidate is None:
                unknown = True
            elif candidate == needle:
                return True
        return None if unknown else False

    def bind(self, schema):
        return InList(self.item.bind(schema),
                      [v.bind(schema) for v in self.values])

    def columns(self):
        out = self.item.columns()
        for value in self.values:
            out |= value.columns()
        return out

    def column_names(self):
        out = self.item.column_names()
        for value in self.values:
            out |= value.column_names()
        return out

    def to_text(self):
        inner = ", ".join(v.to_text() for v in self.values)
        return f"{self.item.to_text()} IN ({inner})"


class Between(Expr):
    __slots__ = ("item", "lo", "hi")

    def __init__(self, item: Expr, lo: Expr, hi: Expr):
        self.item = item
        self.lo = lo
        self.hi = hi

    def eval(self, view, params=None):
        value = self.item.eval(view, params)
        lo = self.lo.eval(view, params)
        hi = self.hi.eval(view, params)
        if value is None or lo is None or hi is None:
            return None
        return lo <= value <= hi

    def bind(self, schema):
        return Between(self.item.bind(schema), self.lo.bind(schema),
                       self.hi.bind(schema))

    def columns(self):
        return self.item.columns() | self.lo.columns() | self.hi.columns()

    def column_names(self):
        return (self.item.column_names() | self.lo.column_names()
                | self.hi.column_names())

    def to_text(self):
        return (f"{self.item.to_text()} BETWEEN {self.lo.to_text()} "
                f"AND {self.hi.to_text()}")


class Like(Expr):
    """SQL LIKE with ``%`` (any run) and ``_`` (any one character)."""

    __slots__ = ("item", "pattern", "_regex")

    def __init__(self, item: Expr, pattern: str):
        self.item = item
        self.pattern = pattern
        self._regex = re.compile(self._translate(pattern), re.DOTALL)

    @staticmethod
    def _translate(pattern: str) -> str:
        out = []
        for ch in pattern:
            if ch == "%":
                out.append(".*")
            elif ch == "_":
                out.append(".")
            else:
                out.append(re.escape(ch))
        return "^" + "".join(out) + "$"

    def eval(self, view, params=None):
        value = self.item.eval(view, params)
        if value is None:
            return None
        if not isinstance(value, str):
            raise PredicateError(f"LIKE needs a string, got {value!r}")
        return self._regex.match(value) is not None

    def bind(self, schema):
        return Like(self.item.bind(schema), self.pattern)

    def columns(self):
        return self.item.columns()

    def column_names(self):
        return self.item.column_names()

    def to_text(self):
        return f"{self.item.to_text()} LIKE '{self.pattern}'"


class Func(Expr):
    __slots__ = ("name", "args")

    def __init__(self, name: str, args: Sequence[Expr]):
        self.name = name.lower()
        if self.name != "box" and self.name not in _FUNCTIONS:
            raise PredicateError(f"unknown function {self.name!r}")
        self.args = tuple(args)

    def eval(self, view, params=None):
        values = [a.eval(view, params) for a in self.args]
        if any(v is None for v in values):
            return None
        if self.name == "box":
            if len(values) != 4:
                raise PredicateError("box() takes four coordinates")
            return Box(*values)
        try:
            return _FUNCTIONS[self.name](*values)
        except PredicateError:
            raise
        except Exception as exc:
            raise PredicateError(
                f"function {self.name}({values!r}) failed: {exc}") from exc

    def bind(self, schema):
        return Func(self.name, [a.bind(schema) for a in self.args])

    def columns(self):
        return set().union(set(), *(a.columns() for a in self.args))

    def column_names(self):
        return set().union(set(), *(a.column_names() for a in self.args))

    def to_text(self):
        inner = ", ".join(a.to_text() for a in self.args)
        return f"{self.name}({inner})"


# ---------------------------------------------------------------------------
# Planner-facing analysis
# ---------------------------------------------------------------------------

def conjuncts(expr: Optional[Expr]) -> List[Expr]:
    """Flatten top-level ANDs into a conjunct list."""
    if expr is None:
        return []
    if isinstance(expr, And):
        out: List[Expr] = []
        for item in expr.items:
            out.extend(conjuncts(item))
        return out
    return [expr]


def simple_comparison(expr: Expr) -> Optional[Tuple[int, str, Expr]]:
    """Recognise ``column op constant-ish`` conjuncts.

    Returns ``(field index, op, operand expression)`` when ``expr`` compares
    one bound column against an expression with no column references (a
    constant, parameter, or computation over them) — the form access paths
    accept as an "eligible predicate".  Comparisons are normalised so the
    column is on the left.  Returns ``None`` otherwise.
    """
    if not isinstance(expr, Cmp):
        return None
    left, right, op = expr.left, expr.right, expr.op
    if isinstance(left, Col) and not right.column_names():
        pass
    elif isinstance(right, Col) and not left.column_names():
        left, right = right, left
        op = _FLIPPED.get(op, op)
        if op in SPATIAL_OPS and expr.op == "ENCLOSES":
            op = "ENCLOSED_BY"
        elif op in SPATIAL_OPS and expr.op == "ENCLOSED_BY":
            op = "ENCLOSES"
    else:
        return None
    if left.index is None:
        return None
    return (left.index, op, right)


# ---------------------------------------------------------------------------
# Parser (recursive descent / Pratt)
# ---------------------------------------------------------------------------

_TOKEN_RE = re.compile(r"""
    \s*(?:
        (?P<number>\d+\.\d*|\.\d+|\d+)
      | (?P<string>'(?:[^']|'')*')
      | (?P<param>:[A-Za-z_][A-Za-z_0-9]*)
      | (?P<name>[A-Za-z_][A-Za-z_0-9]*)
      | (?P<op><=|>=|!=|<>|=|<|>|\(|\)|,|\+|-|\*|/|%|\.|;)
    )""", re.VERBOSE)

_KEYWORDS = {"and", "or", "not", "null", "is", "in", "between", "like",
             "true", "false", "encloses", "enclosed_by", "overlaps"}


class _Tokens:
    def __init__(self, text: str):
        self.text = text
        self.items: List[Tuple[str, str]] = []
        pos = 0
        while pos < len(text):
            match = _TOKEN_RE.match(text, pos)
            if not match or match.end() == pos:
                remainder = text[pos:].strip()
                if not remainder:
                    break
                raise PredicateError(
                    f"cannot tokenise {remainder[:20]!r} in {text!r}")
            pos = match.end()
            for kind in ("number", "string", "param", "name", "op"):
                value = match.group(kind)
                if value is not None:
                    if kind == "name" and value.lower() in _KEYWORDS:
                        self.items.append(("kw", value.lower()))
                    else:
                        self.items.append((kind, value))
                    break
        self.pos = 0

    def peek(self) -> Tuple[str, str]:
        if self.pos < len(self.items):
            return self.items[self.pos]
        return ("eof", "")

    def next(self) -> Tuple[str, str]:
        token = self.peek()
        self.pos += 1
        return token

    def accept(self, kind: str, value: Optional[str] = None) -> bool:
        k, v = self.peek()
        if k == kind and (value is None or v == value):
            self.pos += 1
            return True
        return False

    def expect(self, kind: str, value: Optional[str] = None) -> str:
        k, v = self.next()
        if k != kind or (value is not None and v != value):
            raise PredicateError(
                f"expected {value or kind!r}, got {v!r} in {self.text!r}")
        return v


def parse_expression(text: str) -> Expr:
    """Parse a predicate/scalar expression from text (unbound)."""
    tokens = _Tokens(text)
    expr = _parse_or(tokens)
    kind, value = tokens.peek()
    if kind != "eof":
        raise PredicateError(f"trailing input {value!r} in {text!r}")
    return expr


def _parse_or(tokens: _Tokens) -> Expr:
    items = [_parse_and(tokens)]
    while tokens.accept("kw", "or"):
        items.append(_parse_and(tokens))
    return items[0] if len(items) == 1 else Or(items)


def _parse_and(tokens: _Tokens) -> Expr:
    items = [_parse_not(tokens)]
    while tokens.accept("kw", "and"):
        items.append(_parse_not(tokens))
    return items[0] if len(items) == 1 else And(items)


def _parse_not(tokens: _Tokens) -> Expr:
    if tokens.accept("kw", "not"):
        return Not(_parse_not(tokens))
    return _parse_comparison(tokens)


def _parse_comparison(tokens: _Tokens) -> Expr:
    left = _parse_additive(tokens)
    kind, value = tokens.peek()
    if kind == "op" and value in ("=", "!=", "<>", "<", "<=", ">", ">="):
        tokens.next()
        op = "!=" if value == "<>" else value
        return Cmp(op, left, _parse_additive(tokens))
    if kind == "kw" and value in ("encloses", "enclosed_by", "overlaps"):
        tokens.next()
        return Cmp(value.upper(), left, _parse_additive(tokens))
    if kind == "kw" and value == "is":
        tokens.next()
        negated = tokens.accept("kw", "not")
        tokens.expect("kw", "null")
        return IsNull(left, negated)
    negated = False
    if kind == "kw" and value == "not":
        # NOT here must introduce IN / BETWEEN / LIKE
        tokens.next()
        kind, value = tokens.peek()
        negated = True
    if kind == "kw" and value == "in":
        tokens.next()
        tokens.expect("op", "(")
        values = [_parse_additive(tokens)]
        while tokens.accept("op", ","):
            values.append(_parse_additive(tokens))
        tokens.expect("op", ")")
        expr: Expr = InList(left, values)
        return Not(expr) if negated else expr
    if kind == "kw" and value == "between":
        tokens.next()
        lo = _parse_additive(tokens)
        tokens.expect("kw", "and")
        hi = _parse_additive(tokens)
        expr = Between(left, lo, hi)
        return Not(expr) if negated else expr
    if kind == "kw" and value == "like":
        tokens.next()
        raw = tokens.expect("string")
        expr = Like(left, raw[1:-1].replace("''", "'"))
        return Not(expr) if negated else expr
    if negated:
        raise PredicateError("NOT must be followed by IN, BETWEEN, or LIKE here")
    return left


def _parse_additive(tokens: _Tokens) -> Expr:
    left = _parse_multiplicative(tokens)
    while True:
        kind, value = tokens.peek()
        if kind == "op" and value in ("+", "-"):
            tokens.next()
            left = Arith(value, left, _parse_multiplicative(tokens))
        else:
            return left


def _parse_multiplicative(tokens: _Tokens) -> Expr:
    left = _parse_unary(tokens)
    while True:
        kind, value = tokens.peek()
        if kind == "op" and value in ("*", "/", "%"):
            tokens.next()
            left = Arith(value, left, _parse_unary(tokens))
        else:
            return left


def _parse_unary(tokens: _Tokens) -> Expr:
    if tokens.accept("op", "-"):
        return Neg(_parse_unary(tokens))
    if tokens.accept("op", "+"):
        return _parse_unary(tokens)
    return _parse_primary(tokens)


def _parse_primary(tokens: _Tokens) -> Expr:
    kind, value = tokens.next()
    if kind == "number":
        return Const(float(value) if "." in value else int(value))
    if kind == "string":
        return Const(value[1:-1].replace("''", "'"))
    if kind == "param":
        return Param(value[1:])
    if kind == "kw" and value == "null":
        return Const(None)
    if kind == "kw" and value == "true":
        return Const(True)
    if kind == "kw" and value == "false":
        return Const(False)
    if kind == "name":
        if tokens.accept("op", "."):
            # Qualified column reference (table.column), used by the query
            # layer's join schemas.
            qualifier = value
            value = tokens.expect("name")
            return Col(f"{qualifier}.{value}")
        if tokens.accept("op", "("):
            args = []
            if not tokens.accept("op", ")"):
                args.append(_parse_or(tokens))
                while tokens.accept("op", ","):
                    args.append(_parse_or(tokens))
                tokens.expect("op", ")")
            return Func(value, args)
        return Col(value)
    if kind == "op" and value == "(":
        inner = _parse_or(tokens)
        tokens.expect("op", ")")
        return inner
    raise PredicateError(f"unexpected token {value!r}")


# ---------------------------------------------------------------------------
# Bound predicate wrapper — what storage methods and attachments receive
# ---------------------------------------------------------------------------

#: Sentinel: the predicate has not attempted kernel compilation yet
#: (``None`` in the box means "tried, not vectorizable").
_KERNEL_UNSET = object()

# Lazily imported kernel module (predicate is imported by the query layer;
# importing it eagerly here would create a cycle).
_kernels = None


class Predicate:
    """A filter predicate bound to a schema.

    Storage methods and access-path attachments receive a ``Predicate``
    (plus the list of fields the caller needs, see the dispatch layer) and
    call :meth:`matches` against a :class:`RecordView` while the record (or
    access-path key) is still in the buffer pool.  Rows for which the
    predicate is unknown (NULL) are rejected, as in SQL.

    Batch scans call :meth:`match_indexes` instead: the expression is
    compiled once into a column-at-a-time kernel tree (when it falls in
    the vectorizable subset) and each batch is filtered with O(1)
    Python-level dispatch, producing a selection vector.  The compiled
    kernel lives in a shared one-slot box so :meth:`with_params` clones —
    one per cached-plan execution — reuse the compilation.
    """

    def __init__(self, expr: Expr, schema, params: Optional[dict] = None):
        self.schema = schema
        self.expr = expr.bind(schema)
        self.params = dict(params) if params else {}
        self.fields_needed: frozenset = frozenset(self.expr.columns())
        self._kernel_box = [_KERNEL_UNSET]

    @classmethod
    def parse(cls, text: str, schema, params: Optional[dict] = None
              ) -> "Predicate":
        return cls(parse_expression(text), schema, params)

    @classmethod
    def from_bound(cls, expr: Expr, schema, params: Optional[dict] = None
                   ) -> "Predicate":
        """Wrap an expression that is already bound (no re-binding).

        The query layer binds expressions against qualified (alias.column)
        schemas whose *indexes* match the base relation; re-binding by name
        would fail, so it wraps the bound tree directly.
        """
        self = object.__new__(cls)
        self.schema = schema
        self.expr = expr
        self.params = dict(params) if params else {}
        self.fields_needed = frozenset(expr.columns())
        self._kernel_box = [_KERNEL_UNSET]
        return self

    def matches(self, view: Union[RecordView, Sequence]) -> bool:
        if not isinstance(view, RecordView):
            view = RecordView.from_record(view)
        return self.expr.eval(view, self.params) is True

    def match_indexes(self, records: Sequence[Sequence],
                      stats=None) -> List[int]:
        """Selection vector: sorted ordinals of ``records`` that match.

        Vectorizable expressions are filtered column-at-a-time through the
        kernel tree (compiled on first use, shared across parameter
        clones); anything else falls back to row-at-a-time :meth:`matches`.
        Both produce exactly the rows for which the predicate is *true*.
        """
        global _kernels
        if _kernels is None:
            from ..query import kernels as _kernel_module
            _kernels = _kernel_module
        kernel = self._kernel_box[0]
        if kernel is _KERNEL_UNSET:
            kernel = _kernels.compile_filter(self.expr)
            self._kernel_box[0] = kernel
        if kernel is not None and _kernels.vector_filter_enabled():
            batch = _kernels.ColumnBatch.from_rows(records, self.schema)
            try:
                selection = kernel.select(batch, self.params, None)
            except PredicateError:
                # Vector kernels evaluate whole sub-expressions; the row
                # evaluator's short-circuiting (OR with an early True)
                # may never reach the part that errored.  Re-run this
                # batch row-at-a-time so errors surface — or not —
                # exactly as they always did.
                if stats is not None:
                    stats.bump_many({"predicate.row_evals": len(records)})
                return [i for i, record in enumerate(records)
                        if self.matches(record)]
            if stats is not None:
                stats.bump_many({"predicate.vector_selects": 1,
                                 "predicate.vector_rows": len(records)})
            return selection
        if stats is not None:
            stats.bump_many({"predicate.row_evals": len(records)})
        return [i for i, record in enumerate(records)
                if self.matches(record)]

    def evaluable_on(self, available_fields) -> bool:
        """True when every referenced field is in ``available_fields`` —
        the early-filtering test access paths run against their keys."""
        return self.fields_needed <= frozenset(available_fields)

    def conjuncts(self) -> List[Expr]:
        return conjuncts(self.expr)

    def with_params(self, params: dict) -> "Predicate":
        clone = object.__new__(Predicate)
        clone.schema = self.schema
        clone.expr = self.expr
        clone.params = dict(params)
        clone.fields_needed = self.fields_needed
        clone._kernel_box = self._kernel_box  # share the compiled kernel
        return clone

    def __repr__(self) -> str:
        return f"Predicate({self.expr.to_text()})"
