"""Scatter-gather execution: fan a set of independent remote actions out
to a thread pool and gather their results in input order.

The sharded storage method uses this to dispatch one query fragment per
shard *concurrently* instead of visiting shards one at a time — the
coordinator's wall-clock for a fan-out read becomes the slowest shard,
not the sum of all shards.

Thread-safety discipline (the workers touch a lot of shared machinery):

* each worker gets its own :class:`StatsBuffer`; buffers are merged into
  the real (not thread-safe) stats service serially after the join;
* per-channel breaker state is only ever touched by the one worker that
  owns that channel for the duration of the call;
* replication health reporting, standby failover and read reports are
  applied serially by the caller after the gather.

Results come back as ``(result, exception)`` pairs — scatter-gather
never swallows an error, but also never lets one shard's failure hide
another shard's answer (the caller decides between failover, degraded
skip and fail-closed fallback per shard).
"""

from __future__ import annotations

import os
from collections import Counter
from concurrent.futures import ThreadPoolExecutor
from typing import Callable, Dict, List, Optional, Sequence, Tuple

__all__ = ["StatsBuffer", "ScatterGather", "shared_pool"]


class StatsBuffer:
    """A thread-private, bump-compatible counter sink.

    Quacks like :class:`~repro.services.stats.StatsService` for ``bump``
    and ``bump_many`` (so :class:`~repro.services.stats.NamespacedStats`
    can wrap it), and replays into the real service with
    :meth:`merge_into` once the owning worker has joined.
    """

    __slots__ = ("_counters",)

    def __init__(self):
        self._counters = Counter()

    def bump(self, name: str, amount: int = 1) -> None:
        self._counters[name] += amount

    def bump_many(self, counters: Dict[str, int]) -> None:
        self._counters.update(counters)

    def get(self, name: str) -> int:
        return self._counters[name]

    def merge_into(self, stats) -> None:
        if self._counters:
            stats.bump_many(dict(self._counters))
            self._counters.clear()


class ScatterGather:
    """A bounded worker pool that runs task thunks concurrently.

    :meth:`run` returns ``[(result, exception), ...]`` in input order.
    A single task (or a single worker) runs inline — no pool, no thread
    handoff — so the 1-shard case costs exactly what a serial call does.
    """

    def __init__(self, max_workers: Optional[int] = None):
        if max_workers is None:
            max_workers = min(16, max(2, (os.cpu_count() or 2)))
        self.max_workers = max_workers
        self._pool: Optional[ThreadPoolExecutor] = None

    def _executor(self) -> ThreadPoolExecutor:
        if self._pool is None:
            self._pool = ThreadPoolExecutor(
                max_workers=self.max_workers,
                thread_name_prefix="scatter")
        return self._pool

    def run(self, tasks: Sequence[Callable]) -> List[Tuple]:
        if not tasks:
            return []
        if len(tasks) == 1 or self.max_workers == 1:
            return [self._invoke(task) for task in tasks]
        futures = [self._executor().submit(self._invoke, task)
                   for task in tasks]
        return [future.result() for future in futures]

    @staticmethod
    def _invoke(task: Callable) -> Tuple:
        try:
            return (task(), None)
        except BaseException as exc:  # the caller classifies per shard
            return (None, exc)

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None


_SHARED: Optional[ScatterGather] = None


def shared_pool() -> ScatterGather:
    """The process-wide scatter-gather pool (created on first use)."""
    global _SHARED
    if _SHARED is None:
        _SHARED = ScatterGather()
    return _SHARED
