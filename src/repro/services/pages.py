"""Slotted pages.

The page layout used by every page-based extension (heap storage, B-trees,
R-trees).  A page carries:

* a header with the ``page_lsn`` (LSN of the last log record applied to the
  page — the write-ahead-logging and redo-idempotence anchor), a page type
  byte, the slot count, the free-space offset, and a ``next_page`` link for
  chained structures;
* record bytes growing forward from the header;
* a slot directory growing backward from the end of the page, one
  ``(offset, length)`` entry per slot.

Deleted slots are tombstoned (offset ``0xFFFF``) so record identifiers
(page, slot) stay stable; tombstoned slots are reused by later inserts.

The header also reserves a CRC32 checksum field.  The checksum is *not*
maintained while the page lives in the buffer pool — it is stamped by the
pool on write-back and verified on fault-in, so a torn or corrupted device
page is detected the moment it re-enters the system (or at restart, which
sweeps all allocated pages).  A stored checksum of 0 means "unstamped"
(freshly allocated, never written back) and always verifies.
"""

from __future__ import annotations

import struct
import zlib
from typing import Iterator, Optional, Tuple

from ..errors import PageError

__all__ = ["PageView", "HEADER_SIZE", "SLOT_SIZE", "NO_PAGE",
           "page_checksum", "stamp_checksum", "verify_checksum"]

# page_lsn, page_type, slot_count, free_off, next_page, checksum
_HEADER = struct.Struct("<qBHHqI")
HEADER_SIZE = 28  # _HEADER.size == 25, padded for alignment headroom
SLOT_SIZE = 4
_SLOT = struct.Struct("<HH")  # offset, length
_TOMBSTONE = 0xFFFF
NO_PAGE = -1

_CHECKSUM_OFF = 21  # byte offset of the checksum field within the header
_CHECKSUM = struct.Struct("<I")


def page_checksum(data) -> int:
    """CRC32 over the page with the checksum field itself zeroed.

    0 is reserved to mean "unstamped"; a computed CRC of 0 maps to 1.
    """
    crc = zlib.crc32(data[:_CHECKSUM_OFF])
    crc = zlib.crc32(b"\x00\x00\x00\x00", crc)
    crc = zlib.crc32(data[_CHECKSUM_OFF + 4:], crc)
    return crc or 1


def stamp_checksum(data: bytearray) -> int:
    """Write the page's checksum into its header field; returns it."""
    crc = page_checksum(data)
    _CHECKSUM.pack_into(data, _CHECKSUM_OFF, crc)
    return crc


def verify_checksum(data) -> bool:
    """True when the stored checksum matches (or the page is unstamped)."""
    stored = _CHECKSUM.unpack_from(data, _CHECKSUM_OFF)[0]
    if stored == 0:
        return True  # never stamped: a fresh page that was never flushed
    return stored == page_checksum(data)


class PageView:
    """A mutable view over one page's bytes.

    The buffer pool hands out ``PageView`` objects wrapping the frame's
    ``bytearray``; mutations go straight into the frame, and the caller is
    responsible for unpinning with ``dirty=True``.
    """

    __slots__ = ("page_id", "data")

    def __init__(self, page_id: int, data: bytearray):
        if len(data) < HEADER_SIZE + SLOT_SIZE:
            raise PageError(f"page buffer too small ({len(data)} bytes)")
        self.page_id = page_id
        self.data = data

    @classmethod
    def format(cls, page_id: int, data: bytearray, page_type: int,
               next_page: int = NO_PAGE) -> "PageView":
        """Initialise a freshly allocated page."""
        page = cls(page_id, data)
        _HEADER.pack_into(data, 0, 0, page_type, 0, HEADER_SIZE, next_page, 0)
        return page

    # -- header fields ---------------------------------------------------------
    def _header(self) -> Tuple[int, int, int, int, int, int]:
        return _HEADER.unpack_from(self.data, 0)

    def _set_header(self, page_lsn, page_type, slot_count, free_off, next_page,
                    checksum=0):
        _HEADER.pack_into(self.data, 0, page_lsn, page_type, slot_count,
                          free_off, next_page, checksum)

    @property
    def page_lsn(self) -> int:
        return self._header()[0]

    @page_lsn.setter
    def page_lsn(self, lsn: int) -> None:
        header = list(self._header())
        header[0] = lsn
        self._set_header(*header)

    @property
    def page_type(self) -> int:
        return self._header()[1]

    @property
    def slot_count(self) -> int:
        return self._header()[2]

    @property
    def free_offset(self) -> int:
        return self._header()[3]

    @property
    def next_page(self) -> int:
        return self._header()[4]

    @next_page.setter
    def next_page(self, page_id: int) -> None:
        header = list(self._header())
        header[4] = page_id
        self._set_header(*header)

    @property
    def checksum(self) -> int:
        """The stored checksum (0: unstamped; maintained on write-back)."""
        return self._header()[5]

    # -- slot directory ----------------------------------------------------------
    def _slot_pos(self, slot: int) -> int:
        return len(self.data) - SLOT_SIZE * (slot + 1)

    def _read_slot(self, slot: int) -> Tuple[int, int]:
        if not 0 <= slot < self.slot_count:
            raise PageError(f"slot {slot} out of range on page {self.page_id}")
        return _SLOT.unpack_from(self.data, self._slot_pos(slot))

    def _write_slot(self, slot: int, offset: int, length: int) -> None:
        _SLOT.pack_into(self.data, self._slot_pos(slot), offset, length)

    def slot_in_use(self, slot: int) -> bool:
        offset, _ = self._read_slot(slot)
        return offset != _TOMBSTONE

    # -- free space -----------------------------------------------------------------
    def free_space(self) -> int:
        """Contiguous bytes available for one more record + new slot."""
        directory_start = len(self.data) - SLOT_SIZE * self.slot_count
        return max(0, directory_start - self.free_offset - SLOT_SIZE)

    def fits(self, length: int) -> bool:
        if length > 0xFFFE:
            raise PageError(f"record of {length} bytes exceeds page capacity")
        if self.free_space() >= length:
            return True
        return self._live_bytes() + length + SLOT_SIZE * (self.slot_count + 1) \
            <= len(self.data) - HEADER_SIZE

    def _live_bytes(self) -> int:
        total = 0
        for slot in range(self.slot_count):
            offset, length = self._read_slot(slot)
            if offset != _TOMBSTONE:
                total += length
        return total

    def compact(self) -> None:
        """Rewrite live records contiguously to defragment free space."""
        live = []
        for slot in range(self.slot_count):
            offset, length = self._read_slot(slot)
            if offset != _TOMBSTONE:
                live.append((slot, bytes(self.data[offset:offset + length])))
        write_at = HEADER_SIZE
        for slot, raw in live:
            self.data[write_at:write_at + len(raw)] = raw
            self._write_slot(slot, write_at, len(raw))
            write_at += len(raw)
        header = list(self._header())
        header[3] = write_at
        self._set_header(*header)

    # -- record operations -------------------------------------------------------------
    def insert(self, raw: bytes, slot: Optional[int] = None) -> int:
        """Store a record; returns its slot number.

        Reuses a tombstoned slot when available (or the specific ``slot``
        when given, which redo/undo use to restore a record at its original
        identifier).
        """
        if not self.fits(len(raw)):
            raise PageError(
                f"page {self.page_id} full ({self.free_space()}B free, "
                f"{len(raw)}B needed)")
        if self.free_space() < len(raw):
            self.compact()
        if slot is None:
            slot = self._choose_slot()
        else:
            self._materialise_slot(slot)
            if self.slot_in_use(slot):
                raise PageError(
                    f"slot {slot} on page {self.page_id} already in use")
        header = list(self._header())
        offset = header[3]
        self.data[offset:offset + len(raw)] = raw
        header[3] = offset + len(raw)
        self._set_header(*header)
        self._write_slot(slot, offset, len(raw))
        return slot

    def _choose_slot(self) -> int:
        for slot in range(self.slot_count):
            if not self.slot_in_use(slot):
                return slot
        slot = self.slot_count
        header = list(self._header())
        header[2] = slot + 1
        self._set_header(*header)
        self._write_slot(slot, _TOMBSTONE, 0)
        return slot

    def _materialise_slot(self, slot: int) -> None:
        """Grow the directory so ``slot`` exists (tombstoned if new)."""
        while self.slot_count <= slot:
            new = self.slot_count
            header = list(self._header())
            header[2] = new + 1
            self._set_header(*header)
            self._write_slot(new, _TOMBSTONE, 0)

    def read(self, slot: int) -> bytes:
        offset, length = self._read_slot(slot)
        if offset == _TOMBSTONE:
            raise PageError(f"slot {slot} on page {self.page_id} is empty")
        return bytes(self.data[offset:offset + length])

    def delete(self, slot: int) -> bytes:
        """Tombstone a slot; returns the old record bytes (for undo logging)."""
        old = self.read(slot)
        self._write_slot(slot, _TOMBSTONE, 0)
        return old

    def update(self, slot: int, raw: bytes) -> bytes:
        """Replace a record in place; returns the old bytes.

        If the new record does not fit in the old space it is deleted and
        re-inserted at the same slot (record keys stay stable).
        """
        offset, length = self._read_slot(slot)
        if offset == _TOMBSTONE:
            raise PageError(f"slot {slot} on page {self.page_id} is empty")
        old = bytes(self.data[offset:offset + length])
        if len(raw) <= length:
            self.data[offset:offset + len(raw)] = raw
            self._write_slot(slot, offset, len(raw))
            return old
        self._write_slot(slot, _TOMBSTONE, 0)
        if not self.fits(len(raw)):
            # put the old record back before reporting failure
            self._write_slot(slot, offset, length)
            raise PageError(
                f"updated record ({len(raw)}B) does not fit on page "
                f"{self.page_id}")
        if self.free_space() < len(raw):
            self.compact()
        header = list(self._header())
        new_offset = header[3]
        self.data[new_offset:new_offset + len(raw)] = raw
        header[3] = new_offset + len(raw)
        self._set_header(*header)
        self._write_slot(slot, new_offset, len(raw))
        return old

    def records(self) -> Iterator[Tuple[int, bytes]]:
        """Yield ``(slot, record bytes)`` for live slots in slot order."""
        for slot in range(self.slot_count):
            offset, length = self._read_slot(slot)
            if offset != _TOMBSTONE:
                yield slot, bytes(self.data[offset:offset + length])

    def live_count(self) -> int:
        return sum(1 for _ in self.records())

    def __repr__(self) -> str:
        return (f"PageView(id={self.page_id}, type={self.page_type}, "
                f"slots={self.slot_count}, live={self.live_count()}, "
                f"lsn={self.page_lsn})")
