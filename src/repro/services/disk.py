"""A simulated block device.

The paper's storage methods live on real disks; this reproduction runs on a
simulated page-addressed block device so that the recovery protocol (what
is on "stable storage" after a crash) and the cost model (how many page
reads and writes an access performs) behave exactly as on hardware, while
the benchmarks stay laptop-scale.

Pages persist across a simulated crash; anything in the buffer pool that
was never written back does not.  The device counts reads and writes and
can charge an optional fixed latency per access, which the foreign-database
gateway and the I/O-bound benchmarks use.
"""

from __future__ import annotations

from typing import Dict, Optional

from ..errors import PageError
from .stats import StatsService

__all__ = ["PAGE_SIZE", "BlockDevice"]

#: Default page size in bytes.  Small enough that multi-page structures
#: (B-trees, heaps) exercise their splitting/chaining logic on modest data.
PAGE_SIZE = 4096


class BlockDevice:
    """Fixed-size page store with allocation, free list, and I/O accounting."""

    def __init__(self, page_size: int = PAGE_SIZE,
                 stats: Optional[StatsService] = None,
                 name: str = "disk"):
        if page_size < 128:
            raise PageError(f"page size {page_size} too small")
        self.page_size = page_size
        self.name = name
        self.stats = stats if stats is not None else StatsService()
        self._pages: Dict[int, bytes] = {}
        self._free: list = []
        self._next_id = 0

    # -- allocation -----------------------------------------------------------
    def allocate(self) -> int:
        """Allocate a page and return its id.  The page starts zeroed."""
        if self._free:
            page_id = self._free.pop()
        else:
            page_id = self._next_id
            self._next_id += 1
        self._pages[page_id] = bytes(self.page_size)
        self.stats.bump(f"{self.name}.allocations")
        return page_id

    def free(self, page_id: int) -> None:
        """Return a page to the free list."""
        self._check(page_id)
        del self._pages[page_id]
        self._free.append(page_id)
        self.stats.bump(f"{self.name}.frees")

    # -- I/O --------------------------------------------------------------------
    def read(self, page_id: int) -> bytes:
        self._check(page_id)
        self.stats.bump(f"{self.name}.reads")
        return self._pages[page_id]

    def write(self, page_id: int, data: bytes) -> None:
        self._check(page_id)
        if len(data) != self.page_size:
            raise PageError(
                f"write of {len(data)} bytes to page of size {self.page_size}")
        self._pages[page_id] = bytes(data)
        self.stats.bump(f"{self.name}.writes")

    # -- introspection ------------------------------------------------------------
    def exists(self, page_id: int) -> bool:
        return page_id in self._pages

    def page_ids(self) -> list:
        """Allocated page ids in order (uncounted — benchmark introspection).

        Recovery benchmarks use this to compare the byte-exact device state
        of two databases after restart without perturbing the I/O counters.
        """
        return sorted(self._pages)

    @property
    def allocated_pages(self) -> int:
        return len(self._pages)

    @property
    def reads(self) -> int:
        return self.stats.get(f"{self.name}.reads")

    @property
    def writes(self) -> int:
        return self.stats.get(f"{self.name}.writes")

    def _check(self, page_id: int) -> None:
        if page_id not in self._pages:
            raise PageError(f"page {page_id} is not allocated on {self.name}")

    def __repr__(self) -> str:
        return (f"BlockDevice({self.name}, {self.allocated_pages} pages of "
                f"{self.page_size}B)")
