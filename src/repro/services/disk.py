"""A simulated block device.

The paper's storage methods live on real disks; this reproduction runs on a
simulated page-addressed block device so that the recovery protocol (what
is on "stable storage" after a crash) and the cost model (how many page
reads and writes an access performs) behave exactly as on hardware, while
the benchmarks stay laptop-scale.

Pages persist across a simulated crash; anything in the buffer pool that
was never written back does not.  The device counts reads and writes and
can charge an optional fixed latency per access, which the foreign-database
gateway and the I/O-bound benchmarks use.

Two robustness facilities live here:

* **Stale page ids** — a freed page id is remembered, so I/O against it
  raises :class:`~repro.errors.StalePageError` (a dangling reference held
  by an extension) instead of the generic never-allocated error.
* **Checkpoint archive** — :meth:`snapshot_archive` copies every allocated
  page's bytes at each complete checkpoint.  After a crash,
  :meth:`repair_corrupt_pages` restores any page whose checksum fails from
  the archived image (or zero-fills a page allocated after the snapshot);
  restart redo from the checkpoint then reconstructs every later update.
  The archive models the page image recoverable from the last checkpoint's
  backup/mirror in a real system.
"""

from __future__ import annotations

from typing import Dict, Optional, Set

from ..errors import PageError, StalePageError
from .pages import verify_checksum
from .stats import StatsService

__all__ = ["PAGE_SIZE", "BlockDevice"]

#: Default page size in bytes.  Small enough that multi-page structures
#: (B-trees, heaps) exercise their splitting/chaining logic on modest data.
PAGE_SIZE = 4096


class BlockDevice:
    """Fixed-size page store with allocation, free list, and I/O accounting."""

    def __init__(self, page_size: int = PAGE_SIZE,
                 stats: Optional[StatsService] = None,
                 name: str = "disk"):
        if page_size < 128:
            raise PageError(f"page size {page_size} too small")
        self.page_size = page_size
        self.name = name
        self.stats = stats if stats is not None else StatsService()
        self._pages: Dict[int, bytes] = {}
        self._free: list = []
        self._freed: Set[int] = set()   # ids freed and not yet re-allocated
        self._next_id = 0
        self._archive: Dict[int, bytes] = {}  # page images at last checkpoint
        #: Optional fault injector (wired by SystemServices).
        self.faults = None

    # -- allocation -----------------------------------------------------------
    def allocate(self) -> int:
        """Allocate a page and return its id.  The page starts zeroed."""
        if self._free:
            page_id = self._free.pop()
            self._freed.discard(page_id)
        else:
            page_id = self._next_id
            self._next_id += 1
        self._pages[page_id] = bytes(self.page_size)
        self.stats.bump(f"{self.name}.allocations")
        return page_id

    def ensure_allocated(self, page_id: int) -> None:
        """Install ``page_id`` as an allocated, zeroed page.

        Replication apply uses this to materialise the primary's page
        allocations on a standby by id, instead of replaying the
        allocator's own order.  A no-op when the page already exists.
        """
        if page_id in self._pages:
            return
        if page_id in self._free:
            self._free.remove(page_id)
            self._freed.discard(page_id)
        self._pages[page_id] = bytes(self.page_size)
        if page_id >= self._next_id:
            self._next_id = page_id + 1
        self.stats.bump(f"{self.name}.allocations")

    def free(self, page_id: int) -> None:
        """Return a page to the free list."""
        self._check(page_id)
        del self._pages[page_id]
        self._free.append(page_id)
        self._freed.add(page_id)
        # A freed page must not be resurrected by torn-page repair: a later
        # incarnation under the same id would get the prior tenant's bytes.
        self._archive.pop(page_id, None)
        self.stats.bump(f"{self.name}.frees")

    # -- I/O --------------------------------------------------------------------
    def read(self, page_id: int) -> bytes:
        self._check(page_id)
        if self.faults is not None:
            self.faults.fire("disk.read")
        self.stats.bump(f"{self.name}.reads")
        return self._pages[page_id]

    def write(self, page_id: int, data: bytes) -> None:
        self._check(page_id)
        if len(data) != self.page_size:
            raise PageError(
                f"write of {len(data)} bytes to page of size {self.page_size}")
        if self.faults is not None:
            self.faults.fire("disk.write")
        self._pages[page_id] = bytes(data)
        self.stats.bump(f"{self.name}.writes")

    # -- checkpoint archive / torn-page repair ----------------------------------
    def snapshot_archive(self) -> int:
        """Archive every allocated page's current device image.

        Called once per complete checkpoint; the archive is the repair
        source for pages that fail their checksum at restart.  Returns the
        number of pages archived.
        """
        self._archive = dict(self._pages)
        return len(self._archive)

    def archived(self, page_id: int) -> Optional[bytes]:
        return self._archive.get(page_id)

    def corrupt_page_ids(self) -> list:
        """Allocated pages whose current bytes fail checksum verification."""
        return [pid for pid, data in sorted(self._pages.items())
                if not verify_checksum(data)]

    def repair_corrupt_pages(self) -> dict:
        """Restore checksum-failing pages from the checkpoint archive.

        A corrupt page with an archived (and itself valid) image is
        restored from it; a corrupt page allocated after the snapshot is
        zero-filled (its entire content postdates the checkpoint, so redo
        reconstructs it from scratch).  Restart redo from the master
        checkpoint then replays every update missing from the restored
        image.  Returns ``{"restored": n, "zero_filled": m}``.
        """
        restored = zero_filled = 0
        for page_id in self.corrupt_page_ids():
            image = self._archive.get(page_id)
            if image is not None and verify_checksum(image):
                self._pages[page_id] = image
                restored += 1
            else:
                self._pages[page_id] = bytes(self.page_size)
                zero_filled += 1
        self.stats.bump(f"{self.name}.repairs.restored", restored)
        self.stats.bump(f"{self.name}.repairs.zero_filled", zero_filled)
        return {"restored": restored, "zero_filled": zero_filled}

    # -- introspection ------------------------------------------------------------
    def exists(self, page_id: int) -> bool:
        return page_id in self._pages

    def page_ids(self) -> list:
        """Allocated page ids in order (uncounted — benchmark introspection).

        Recovery benchmarks use this to compare the byte-exact device state
        of two databases after restart without perturbing the I/O counters.
        """
        return sorted(self._pages)

    @property
    def allocated_pages(self) -> int:
        return len(self._pages)

    @property
    def reads(self) -> int:
        return self.stats.get(f"{self.name}.reads")

    @property
    def writes(self) -> int:
        return self.stats.get(f"{self.name}.writes")

    def _check(self, page_id: int) -> None:
        if page_id not in self._pages:
            if page_id in self._freed:
                raise StalePageError(
                    f"page {page_id} on {self.name} was freed — the caller "
                    "holds a stale page id")
            raise PageError(f"page {page_id} is not allocated on {self.name}")

    def __repr__(self) -> str:
        return (f"BlockDevice({self.name}, {self.allocated_pages} pages of "
                f"{self.page_size}B)")
