"""Per-shard WAL-shipping replication for the sharded storage method.

The paper's thesis — data-management services as pluggable extensions —
extends to availability: replication here is another service composed out
of the existing pieces rather than a new engine.  Each shard of a sharded
relation gets a *replica set*: the primary child database plus N standby
child databases, each reached over its own
:class:`~repro.services.remote.RemoteTransport` channel.

**Physical log shipping.**  Standbys are built by running the exact DDL
the primary child ran (both start as fresh databases, so their logs,
catalog ids, and page allocations are deterministic and identical), after
which the primary's stable log suffix is shipped verbatim
(:meth:`~repro.services.wal.LogManager.ship_since` /
:meth:`~repro.services.wal.LogManager.append_replicated`).  Shipping is
physical on purpose: record keys are page/slot addresses, and a promoted
standby must resolve the same keys the coordinator already handed out.

**Commit-boundary apply.**  A standby appends everything it receives (so
its log is a verbatim prefix of the primary's) but only *applies* records
up to a horizon that stalls just before the first record of a transaction
not yet settled in the received stream.  Reads against a standby thus see
a prefix-consistent committed state — never dirty data — at the price of
lag behind in-flight and in-doubt transactions, surfaced as
``shard.<i>.replica_lag_lsn``.  Promotion force-applies the remainder and
runs ordinary restart recovery, which undoes losers and re-registers
prepared transactions in doubt exactly as ARIES would.

**Durability modes.**  Shipping rides every 2PC phase 1 (the child's log
is already forced through its PREPARE record) and decision delivery:

* ``async`` — ship best-effort, never gate;
* ``semi-sync`` — a child's PREPARE vote only counts once >= 1 standby
  acknowledged holding it;
* ``quorum`` — the vote needs a majority of the ``replicas + 1`` copies
  (i.e. ``(replicas + 1) // 2`` standby acks).

Gating at *phase 1* is what makes quorum-acknowledged writes survive
failover: by the time the coordinator can decide commit, a majority of
copies durably hold the PREPARE, so whichever copy is promoted recovers
the transaction in doubt and the coordinator's stable decision record
finishes it (:meth:`~repro.core.database.Database.resolve_indoubt`).

**Health and fencing.**  Heartbeat probes (fault points
``repl.heartbeat``/``repl.<i>.heartbeat``) run through the data channel's
breaker machinery and feed a per-shard state machine healthy -> suspect
-> down.  Promotion bumps the shard's *epoch*: participants capture the
epoch when they bind, ships carry it, and anything arriving with an old
epoch is rejected with :class:`~repro.errors.FencingError` — a deposed
primary's late writes can never land.

Fault points: ``repl.ship``, ``repl.ack``, ``repl.heartbeat``,
``repl.promote`` (plus per-shard ``repl.<i>.*`` variants), and per-
endpoint channel points (``repl.<i>.standby.<j>``) for killing exactly
one peer.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..errors import (FencingError, GatewayError, RecoveryError,
                      ReplicationError)
from . import wal as wal_records
from .pages import PageView
from .remote import RemoteTransport

__all__ = ["ReplicationService", "Standby", "MODES",
           "HEALTHY", "SUSPECT", "DOWN"]

#: Durability modes (how many standby acks a PREPARE vote needs).
MODES = ("async", "semi-sync", "quorum")

#: Per-shard health states.
HEALTHY = "healthy"
SUSPECT = "suspect"
DOWN = "down"

#: Consecutive failures after the first before a suspect shard is
#: declared down (first failure: healthy -> suspect; this many more:
#: suspect -> down).
SUSPECT_THRESHOLD = 2


class Standby:
    """One standby child database of one shard.

    ``received_lsn``/``applied_lsn`` are the standby's own truth;
    ``acked_lsn`` is the primary side's view and only advances when an
    acknowledgement makes it back — a lost ack leaves it behind, the next
    ship re-sends, and :meth:`LogManager.append_replicated` drops the
    duplicates (at-least-once delivery, exactly-once apply).
    """

    __slots__ = ("shard", "name", "database", "channel",
                 "received_lsn", "applied_lsn", "acked_lsn", "epoch_seen")

    def __init__(self, shard: int, name: str, database, channel: dict,
                 base_lsn: int):
        self.shard = shard
        self.name = name
        self.database = database
        self.channel = channel
        self.received_lsn = base_lsn
        self.applied_lsn = base_lsn
        self.acked_lsn = base_lsn
        self.epoch_seen = 0

    # -- standby side ----------------------------------------------------------
    def receive(self, epoch: int, wire: List[dict]) -> int:
        """Append a shipped batch, flush it, and advance the apply horizon.

        The flush *is* the acknowledgement's meaning: an acked LSN must
        survive the standby's own crash (promotion runs restart recovery
        over exactly this log).  Ships from a deposed epoch are fenced.
        """
        if epoch < self.epoch_seen:
            raise FencingError(
                f"standby {self.name} rejects ship from deposed epoch "
                f"{epoch} (current epoch {self.epoch_seen})")
        self.epoch_seen = epoch
        log = self.database.services.wal
        for record in wire:
            log.append_replicated(record)
        log.flush()
        self.received_lsn = log.current_lsn
        self.apply_pending()
        return self.received_lsn

    def apply_pending(self, force: bool = False) -> int:
        """Apply received records up to the commit-boundary horizon.

        Records apply physically in strict LSN order (every transaction's
        records, aborted ones' CLRs included — physical determinism needs
        the whole sequence), but the horizon stalls just before the first
        record of a transaction with no COMMIT/ABORT in the received
        stream: standby pages only ever show a prefix-consistent committed
        state.  ``force=True`` (promotion) applies everything; restart
        recovery then undoes the losers.
        """
        log = self.database.services.wal
        settled = set()
        # The settle scan covers the whole retained log, not just the
        # unapplied suffix: a txn's trailing END record sits *after* the
        # COMMIT that settled it, so a suffix-only scan would miss the
        # COMMIT and stall on the END forever.
        for record in log.forward():
            if record.kind in (wal_records.COMMIT, wal_records.ABORT):
                settled.add(record.txn_id)
        applied = 0
        for record in log.forward(self.applied_lsn + 1):
            if (not force
                    and record.txn_id != wal_records.SYSTEM_TXN
                    and record.txn_id not in settled):
                break
            self._apply_one(record)
            self.applied_lsn = record.lsn
            applied += 1
        return applied

    def _apply_one(self, record) -> None:
        if record.kind not in (wal_records.UPDATE, wal_records.CLR):
            return  # control records: settlement bookkeeping only
        payload = record.payload
        services = self.database.services
        if (record.resource == "storage.heap"
                and payload.get("op") == "new_page"):
            self._apply_new_page(record)
            return
        handler = services.recovery.handler(record.resource)
        handler.redo(services, record.lsn, payload)
        self._track_ntuples(record)

    def _descriptor(self, payload: dict) -> dict:
        entry = self.database.catalog.entry_by_id(payload["relation_id"])
        return entry.handle.descriptor.storage_descriptor

    def _apply_new_page(self, record) -> None:
        """Forward-apply a heap page allocation (or its compensation).

        Heap redo assumes the descriptor page list and the device page
        survived the crash (they are non-volatile on the primary); on a
        standby neither exists yet, so the apply materialises both: the
        exact page id on the device, the descriptor entry, and a freshly
        formatted image stamped with the allocation LSN.
        """
        from ..storage.heap import PAGE_TYPE_HEAP
        payload = record.payload
        descriptor = self._descriptor(payload)
        services = self.database.services
        page_id = payload["page"]
        if payload.get("compensates") is not None:
            if page_id in descriptor["pages"]:
                descriptor["pages"].remove(page_id)
                services.buffer.free_page(page_id)
            return
        services.disk.ensure_allocated(page_id)
        if page_id not in descriptor["pages"]:
            descriptor["pages"].append(page_id)
        page = services.buffer.fetch(page_id)
        try:
            PageView.format(page_id, page.data, PAGE_TYPE_HEAP)
            page.page_lsn = record.lsn
        finally:
            services.buffer.unpin(page_id, dirty=True)

    def _track_ntuples(self, record) -> None:
        """Maintain the descriptor tuple count alongside physical redo.

        Redo never touches it (on the primary only forward operations and
        undo do), and a standby runs neither — so the applier accounts
        for inserts/deletes itself, with CLRs reversing the sign.
        """
        payload = record.payload
        op = payload.get("op")
        if op == "insert":
            delta = 1
        elif op == "delete":
            delta = -1
        elif op == "insert_multi":
            delta = len(payload["slots"])
        elif op == "delete_multi":
            delta = -len(payload["slots"])
        else:
            return
        if payload.get("compensates") is not None:
            delta = -delta
        self._descriptor(payload)["ntuples"] += delta


class _ReplicaSet:
    """Primary + standbys of one shard, with health and fencing state."""

    __slots__ = ("index", "standbys", "epoch", "health", "strikes",
                 "deposed", "primary_lsn", "spawned")

    def __init__(self, index: int):
        self.index = index
        self.standbys: List[Standby] = []
        self.epoch = 0
        self.health = HEALTHY
        self.strikes = 0           # consecutive reported failures
        self.deposed: list = []    # fenced former primaries
        self.primary_lsn = 0       # highest primary LSN this side has seen
        self.spawned = 0           # standby name counter (r0, r1, ...)


class ReplicationService:
    """WAL shipping, health, and failover for one sharded relation.

    Lives in the sharded relation's storage descriptor (under
    ``"replication"``) next to the child databases and channels it
    manages; the sharded method calls in at enlistment (heartbeat clock),
    at phase 1 (ship + ack gating), at decision delivery (best-effort
    ship), and from its read paths (stale failover).
    """

    def __init__(self, descriptor: dict, services, mode: str, replicas: int,
                 schema, child_storage: str,
                 child_attributes: Optional[dict],
                 heartbeat_every: int = 0):
        self.descriptor = descriptor
        self.services = services      # the coordinator's bundle
        self.stats = services.stats
        self.mode = mode
        self.replicas = replicas
        self.schema = schema
        self.child_storage = child_storage
        self.child_attributes = child_attributes
        self.heartbeat_every = heartbeat_every
        self.sets: List[_ReplicaSet] = []
        self.lag_samples: List[int] = []
        self.events: List[tuple] = []
        self._ship_transports: Dict[int, RemoteTransport] = {}
        self._hb_transports: Dict[int, RemoteTransport] = {}
        self._ops = 0
        for index in range(descriptor["shards"]):
            replica_set = _ReplicaSet(index)
            self.sets.append(replica_set)
            for __ in range(replicas):
                replica_set.standbys.append(self._new_standby(index))

    # -- construction ----------------------------------------------------------
    def _new_standby(self, index: int) -> Standby:
        """A fresh standby: same DDL as the primary child, so its log and
        page allocations start as an exact replica of the primary's
        prefix (the parity invariant physical shipping depends on)."""
        from ..core.database import Database
        replica_set = self.sets[index]
        name = f"r{replica_set.spawned}"
        replica_set.spawned += 1
        primary = self.descriptor["databases"][index]
        database = Database()
        database.create_table(self.descriptor["relation"], self.schema,
                              storage_method=self.child_storage,
                              attributes=self.child_attributes)
        base = database.services.wal.current_lsn
        # The primary's log must extend the standby's DDL prefix — it was
        # created by the identical call sequence.  A mismatch means the
        # parity invariant is broken and shipping would corrupt silently.
        if base > primary.services.wal.current_lsn:
            raise ReplicationError(
                f"shard {index}: standby DDL produced {base} log records "
                f"but the primary only has "
                f"{primary.services.wal.current_lsn} — parity broken")
        database.services.wal.flush()
        template = self.descriptor["channels"][index]
        channel = {key: template[key]
                   for key in ("latency", "retries", "breaker_threshold",
                               "breaker_cooldown", "deadline")
                   if key in template}
        channel["relation"] = f"shard[{index}].{name}"
        channel["fault_point"] = f"repl.{index}.standby.{name[1:]}"
        return Standby(index, name, database, channel, base)

    def _ship_transport(self, index: int) -> RemoteTransport:
        transport = self._ship_transports.get(index)
        if transport is None:
            transport = RemoteTransport(
                fault_points=("repl.ship", f"repl.{index}.ship"),
                message_counter="repl.messages",
                latency_counter="repl.latency_units",
                counter_prefix="repl.gateway")
            self._ship_transports[index] = transport
        return transport

    def _hb_transport(self, index: int) -> RemoteTransport:
        transport = self._hb_transports.get(index)
        if transport is None:
            transport = RemoteTransport(
                fault_points=("repl.heartbeat", f"repl.{index}.heartbeat"),
                message_counter="repl.messages",
                latency_counter="repl.latency_units",
                counter_prefix="repl.gateway")
            self._hb_transports[index] = transport
        return transport

    # -- introspection ---------------------------------------------------------
    def epoch(self, index: int) -> int:
        return self.sets[index].epoch

    def health(self, index: int) -> str:
        return self.sets[index].health

    def standbys(self, index: int) -> List[Standby]:
        return list(self.sets[index].standbys)

    def required_acks(self) -> int:
        """Standby acks a PREPARE vote needs under the configured mode."""
        if not self.replicas:
            return 0
        if self.mode == "semi-sync":
            return 1
        if self.mode == "quorum":
            # Majority of the replicas+1 copies; the primary's own forced
            # PREPARE is one of them.
            return (self.replicas + 1) // 2
        return 0  # async

    # -- shipping --------------------------------------------------------------
    def ship(self, index: int) -> None:
        """Ship the primary's stable log suffix to every standby.

        Per-standby failures are absorbed (counted, health of the *shard*
        is unaffected — a dead standby is the replica set's problem, not
        the primary's); the ack gate in :meth:`on_prepared` is where
        insufficient replication becomes an error.
        """
        replica_set = self.sets[index]
        if not replica_set.standbys:
            return
        primary = self.descriptor["databases"][index]
        log = primary.services.wal
        target = log.flushed_lsn
        replica_set.primary_lsn = max(replica_set.primary_lsn, target)
        transport = self._ship_transport(index)
        faults = self.services.faults
        for standby in replica_set.standbys:
            if standby.acked_lsn >= target:
                continue

            def send(s=standby):
                transport.remote_call(self.services, s.channel, self.stats)
                wire = log.ship_since(s.acked_lsn, up_to=target)
                lsn = s.receive(replica_set.epoch, wire)
                self.stats.bump("repl.ship.records", len(wire))
                if faults is not None and faults.armed:
                    # The ack crosses the wire separately: losing it leaves
                    # the records applied but the primary none the wiser.
                    faults.fire("repl.ack")
                    faults.fire(f"repl.{index}.ack")
                return lsn

            try:
                acked = transport.call(standby.channel, self.stats, send)
            except FencingError:
                self.stats.bump("repl.fenced")
                continue
            except GatewayError:
                self.stats.bump("repl.ship_failures")
            except RecoveryError:
                # The primary truncated past this standby's ack: it fell
                # off the retained log and only a full rebuild can help.
                self._rebuild_standby(index, standby)
            else:
                standby.acked_lsn = acked
                self.stats.bump("repl.acks")
            lag = max(0, target - standby.acked_lsn)
            self.lag_samples.append(lag)
            self.stats.bump(f"shard.{index}.replica_lag_lsn", lag)
            self.stats.bump("repl.lag_samples")
        self.stats.bump("repl.ships")

    def on_prepared(self, index: int, prepare_lsn: int) -> None:
        """Phase-1 gate: ship through the PREPARE record, require acks.

        Raising here withholds the child's vote, so the coordinator aborts
        the global transaction — fail closed.  Once this returns under
        quorum mode, a majority of copies durably hold the PREPARE: any
        majority-side promotion recovers the transaction in doubt and the
        stable decision record finishes it.  That is the zero-lost-
        acknowledged-writes argument, in one sentence.
        """
        self.ship(index)
        needed = self.required_acks()
        if needed == 0:
            return
        replica_set = self.sets[index]
        acks = sum(1 for standby in replica_set.standbys
                   if standby.acked_lsn >= prepare_lsn)
        if acks < needed:
            self.stats.bump("repl.quorum_failures")
            raise GatewayError(
                f"shard {index}: replication mode {self.mode!r} needs "
                f"{needed} standby ack(s) at LSN {prepare_lsn}, got {acks} "
                f"— vote withheld")
        self.stats.bump("repl.acked_prepares")

    def on_decided(self, index: int) -> None:
        """Decision shipping is best-effort: durability already settled at
        phase 1, and a standby that misses the decision simply stalls its
        apply horizon until the next ship or heartbeat delivers it."""
        self.ship(index)

    # -- health ----------------------------------------------------------------
    def tick(self) -> None:
        """Operation-driven heartbeat clock (the simulation has no wall
        time): every ``heartbeat_every``-th sharded operation probes all
        shards.  Disabled when the knob is 0."""
        if self.heartbeat_every <= 0:
            return
        self._ops += 1
        if self._ops % self.heartbeat_every:
            return
        for index in range(len(self.sets)):
            self.heartbeat(index)

    def heartbeat(self, index: int) -> bool:
        """Probe the shard primary through its data channel.

        Shares the data channel's breaker: heartbeat failures accumulate
        toward the same trip, and a heartbeat probe can heal a half-open
        breaker.  Success also ships opportunistically, so an idle shard's
        standbys still drain the log.
        """
        channel = self.descriptor["channels"][index]
        transport = self._hb_transport(index)
        self.stats.bump("repl.heartbeats")

        def ping():
            transport.remote_call(self.services, channel, self.stats)
            return True

        try:
            transport.call(channel, self.stats, ping)
        except GatewayError:
            self.stats.bump("repl.heartbeat_failures")
            self.report_failure(index)
            if self.sets[index].health == DOWN:
                # A partitioned primary looks exactly like a dead one from
                # here; under quorum mode the probe escalates to failover.
                self.maybe_promote(index)
            return False
        self.report_success(index)
        self.ship(index)
        return True

    def report_failure(self, index: int) -> None:
        """One failed interaction with the shard primary.

        healthy -> suspect on the first strike; suspect -> down after
        ``SUSPECT_THRESHOLD`` further consecutive strikes.
        """
        replica_set = self.sets[index]
        replica_set.strikes += 1
        if replica_set.health == HEALTHY:
            self._transition(replica_set, SUSPECT)
        elif (replica_set.health == SUSPECT
                and replica_set.strikes > SUSPECT_THRESHOLD):
            self._transition(replica_set, DOWN)

    def report_success(self, index: int) -> None:
        replica_set = self.sets[index]
        replica_set.strikes = 0
        if replica_set.health != HEALTHY:
            self._transition(replica_set, HEALTHY)

    def _transition(self, replica_set: _ReplicaSet, state: str) -> None:
        replica_set.health = state
        self.stats.bump("repl.health.transitions")
        self.events.append(("health", replica_set.index, state))

    # -- failover --------------------------------------------------------------
    def maybe_promote(self, index: int) -> bool:
        """Write-path failover: promote if the mode's promise allows it.

        Only quorum mode auto-promotes — it alone guarantees some
        reachable standby holds every acknowledged write, so failover
        cannot silently shed acks.  Under async/semi-sync the write keeps
        failing until an operator promotes explicitly.  A failed
        promotion attempt (e.g. an injected ``repl.promote`` fault) is
        absorbed: the write fails as before and a later write retries.
        """
        if self.mode != "quorum":
            return False
        if not self.sets[index].standbys:
            return False
        try:
            self.promote(index, reason="write-failover")
        except (GatewayError, ReplicationError):
            self.stats.bump("repl.promote_failures")
            return False
        return True

    def promote(self, index: int, reason: str = "operator") -> Standby:
        """Fence the primary and promote the most caught-up standby.

        Steps: (1) query each reachable standby's position over its
        channel; (2) bump the epoch — from here the deposed primary's
        participants are fenced; (3) force-apply the winner's received
        suffix and run restart recovery on it (losers undone, prepared
        transactions re-registered in doubt); (4) swap it into the
        descriptor as the shard's database with a fresh channel;
        (5) re-deliver the coordinator's stable commit decisions so the
        new primary's in-doubt transactions settle without operator help.
        """
        faults = self.services.faults
        if faults is not None and faults.armed:
            faults.fire("repl.promote")
            faults.fire(f"repl.{index}.promote")
        replica_set = self.sets[index]
        transport = self._ship_transport(index)
        candidates = []
        for standby in replica_set.standbys:

            def position(s=standby):
                transport.remote_call(self.services, s.channel, self.stats)
                return s.received_lsn

            try:
                lsn = transport.call(standby.channel, self.stats, position)
            except GatewayError:
                continue
            candidates.append((lsn, standby))
        if not candidates:
            raise ReplicationError(
                f"shard {index}: no reachable standby to promote")
        best_lsn = max(lsn for lsn, __ in candidates)
        best = next(s for lsn, s in candidates if lsn == best_lsn)
        replica_set.epoch += 1
        best.epoch_seen = replica_set.epoch
        best.apply_pending(force=True)
        best.database.restart()
        old_primary = self.descriptor["databases"][index]
        replica_set.deposed.append(old_primary)
        self.descriptor["databases"][index] = best.database
        channel = {key: value for key, value in best.channel.items()
                   if key != "breaker"}
        channel["relation"] = f"shard[{index}]"
        self.descriptor["channels"][index] = channel
        replica_set.standbys.remove(best)
        replica_set.primary_lsn = max(replica_set.primary_lsn,
                                      best.database.services.wal.flushed_lsn)
        replica_set.strikes = 0
        if replica_set.health != HEALTHY:
            self._transition(replica_set, HEALTHY)
        self.stats.bump("repl.promotions")
        self.stats.bump(f"shard.{index}.promotions")
        self.events.append(("promote", index, replica_set.epoch, reason,
                            best.name))
        # Survivor standbys resume shipping from the new primary: their
        # log is a prefix of the winner's (the winner had the max position
        # and all copies are prefixes of the old primary's log).
        self.ship(index)
        database = getattr(self.services, "database", None)
        if database is not None:
            database.resolve_indoubt()
        return best

    # -- rejoin / catch-up -----------------------------------------------------
    def rejoin(self, index: int, standby: Standby) -> int:
        """Heal a standby's channel and replay it forward from its acked
        LSN (log catch-up, not a rebuild).  Returns LSNs caught up."""
        self._ship_transport(index).reset(standby.channel)
        before = standby.acked_lsn
        self.ship(index)
        self.stats.bump("repl.rejoins")
        return standby.acked_lsn - before

    def readmit_deposed(self, index: int) -> Standby:
        """Rebuild the most recently deposed primary as a fresh standby.

        Its log may have diverged past the promotion point (an unshipped
        suffix the new primary never saw); divergence is resolved by
        rebuild-and-full-replay, never by splicing logs.
        """
        replica_set = self.sets[index]
        if not replica_set.deposed:
            raise ReplicationError(f"shard {index}: nothing to readmit")
        replica_set.deposed.pop(0)  # the old instance is discarded
        standby = self._new_standby(index)
        replica_set.standbys.append(standby)
        self.stats.bump("repl.rebuilds")
        self.ship(index)
        return standby

    def _rebuild_standby(self, index: int, standby: Standby) -> None:
        """Full resync for a standby that fell off the retained log."""
        fresh = self._new_standby(index)
        fresh.channel = standby.channel  # same endpoint, same breaker
        fresh.name = standby.name
        replica_set = self.sets[index]
        replica_set.standbys[replica_set.standbys.index(standby)] = fresh
        self.stats.bump("repl.rebuilds")

    # -- stale reads -----------------------------------------------------------
    def failover_read(self, index: int, action):
        """Run ``action(standby_database)`` on the most caught-up
        reachable standby.

        Candidates are tried in descending acked-LSN order (the primary
        side's knowledge — a standby may secretly be further ahead, never
        behind it).  Returns ``(result, lag)`` where ``lag`` is the
        standby's applied horizon behind the last known primary LSN;
        raises :class:`GatewayError` when no standby is reachable.
        """
        replica_set = self.sets[index]
        transport = self._ship_transport(index)
        for standby in sorted(replica_set.standbys,
                              key=lambda s: (-s.acked_lsn, s.name)):

            def run(s=standby):
                transport.remote_call(self.services, s.channel, self.stats)
                s.apply_pending()
                return action(s.database)

            try:
                result = transport.call(standby.channel, self.stats, run)
            except GatewayError:
                continue
            lag = max(0, replica_set.primary_lsn - standby.applied_lsn)
            self.lag_samples.append(lag)
            self.stats.bump(f"shard.{index}.replica_lag_lsn", lag)
            self.stats.bump("repl.lag_samples")
            self.stats.bump(f"shard.{index}.stale_reads")
            self.stats.bump("repl.stale_reads")
            return result, lag
        raise GatewayError(
            f"shard {index}: no standby reachable for failover read")
