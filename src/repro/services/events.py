"""Event notification and deferred-action queues.

The paper defines several notification needs that the common services must
provide:

* attachments can queue **deferred actions** to run "before the transaction
  enters the prepared state" (deferred integrity constraints) or at commit
  (deferred destroy of dropped relations and access paths);
* storage methods and attachments that opened key-sequential accesses must
  be told at **end of transaction** so they can close their scans;
* savepoint establishment and partial rollback must be broadcast so scan
  positions can be captured and restored (their changes are not logged).

An entry on a deferred-action queue "would contain the address of the
attachment routine that should be invoked ... and a pointer to the data" —
here, a Python callable plus an opaque data object.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Tuple

__all__ = ["EventService",
           "BEFORE_PREPARE", "AT_COMMIT", "AT_ABORT", "AT_END",
           "SAVEPOINT_SET", "SAVEPOINT_ROLLBACK"]

# Transaction-scoped events.
BEFORE_PREPARE = "before_prepare"
AT_COMMIT = "at_commit"
AT_ABORT = "at_abort"
AT_END = "at_end"                    # fires after commit or abort
SAVEPOINT_SET = "savepoint_set"
SAVEPOINT_ROLLBACK = "savepoint_rollback"

_EVENTS = frozenset({BEFORE_PREPARE, AT_COMMIT, AT_ABORT, AT_END,
                     SAVEPOINT_SET, SAVEPOINT_ROLLBACK})


class EventService:
    """Per-transaction deferred-action queues plus global subscriptions."""

    def __init__(self):
        # (txn_id, event) -> list of (callback, data)
        self._queues: Dict[Tuple[int, str], List[Tuple[Callable, object]]] = {}
        # event -> list of callbacks fired for every transaction
        self._subscribers: Dict[str, List[Callable]] = {}

    # -- deferred actions (per transaction) ------------------------------------
    def defer(self, txn_id: int, event: str, callback: Callable,
              data=None) -> None:
        """Queue ``callback(txn_id, data)`` to run when ``event`` fires."""
        self._check(event)
        self._queues.setdefault((txn_id, event), []).append((callback, data))

    def pending(self, txn_id: int, event: str) -> int:
        self._check(event)
        return len(self._queues.get((txn_id, event), []))

    def fire(self, txn_id: int, event: str, **info) -> None:
        """Run the deferred queue for (txn, event), then global subscribers.

        Deferred actions run in queue order and are consumed.  Actions may
        queue further actions for the same event (e.g. a deferred constraint
        whose repair triggers another deferral); those run in the same firing.
        A callback that raises stops processing and propagates — commit-time
        callers treat that as a veto and abort the transaction.
        """
        self._check(event)
        key = (txn_id, event)
        try:
            while self._queues.get(key):
                callback, data = self._queues[key].pop(0)
                callback(txn_id, data)
        finally:
            # On both success and veto the queue must not leak into a later
            # transaction with the same id.
            self._queues.pop(key, None)
        for callback in self._subscribers.get(event, []):
            callback(txn_id, info)

    def discard(self, txn_id: int) -> None:
        """Drop every queue for a transaction (after abort)."""
        for key in [k for k in self._queues if k[0] == txn_id]:
            del self._queues[key]

    # -- global subscriptions ---------------------------------------------------
    def subscribe(self, event: str, callback: Callable) -> None:
        """Register ``callback(txn_id, info)`` for every firing of ``event``."""
        self._check(event)
        self._subscribers.setdefault(event, []).append(callback)

    def _check(self, event: str) -> None:
        if event not in _EVENTS:
            raise ValueError(f"unknown event {event!r} (expected one of "
                             f"{sorted(_EVENTS)})")
