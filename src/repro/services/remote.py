"""Remote-call transport: retry, backoff, circuit breaker, fault points.

Extracted from the foreign-database gateway (PR 4) so that *any* component
talking to another database instance — the foreign storage method, the
sharded storage method's per-shard channels — shares one implementation of
the unreliable-messaging discipline:

* every message round trip is **accounted** (a message counter plus a
  configurable latency charge in I/O-page-equivalent units) and passes
  through named **fault injection points**, so tests and benches can lose
  exactly the Nth message to exactly one peer;
* transient :class:`~repro.errors.GatewayError`\\ s are retried with
  bounded deterministic exponential backoff, charged as latency units
  rather than wall-clock sleep;
* repeated exhausted calls trip a per-channel **circuit breaker**: calls
  then fail fast (no message attempted) for a cooldown of calls, after
  which one half-open probe either closes the breaker or re-opens it.

A *channel* is a plain descriptor dict (the storage descriptor for the
foreign method; one per shard for the sharded method) carrying the knobs
``latency``, ``retries``, ``breaker_threshold``, ``breaker_cooldown``;
the breaker state itself lives in the channel under ``"breaker"``, so
every remote relation (or shard) fails independently.

A :class:`RemoteTransport` is configuration only — fault-point names and
counter names — and holds no mutable state, so one instance can serve any
number of channels.  The default configuration reproduces the foreign
gateway's historical counter names exactly (``foreign.messages``,
``gateway.retry.attempts``, ...), which existing test suites pin.
"""

from __future__ import annotations

from typing import Sequence

from ..errors import GatewayError

__all__ = ["RemoteTransport"]


class RemoteTransport:
    """Retry + circuit-breaker discipline over named channels."""

    def __init__(self, fault_points: Sequence[str] = ("foreign.remote_call",),
                 message_counter: str = "foreign.messages",
                 latency_counter: str = "foreign.latency_units",
                 counter_prefix: str = "gateway"):
        self.fault_points = tuple(fault_points)
        self.message_counter = message_counter
        self.latency_counter = latency_counter
        self.counter_prefix = counter_prefix

    # -- message accounting ----------------------------------------------------
    def remote_call(self, ctx_or_services, channel: dict, stats) -> None:
        """Account one message round trip on ``channel``.

        Fires every configured fault point (in order) *before* charging,
        so a lost message costs nothing and the surrounding :meth:`call`
        retry loop can safely re-run the action.
        """
        services = getattr(ctx_or_services, "services", ctx_or_services)
        faults = getattr(services, "faults", None)
        if faults is not None and faults.armed:
            for point in self.fault_points:
                faults.fire(point)
        stats.bump(self.message_counter)
        stats.bump(self.latency_counter,
                   int(channel.get("latency", 2.0) * 100))

    # -- breaker state ---------------------------------------------------------
    @staticmethod
    def breaker(channel: dict) -> dict:
        """The channel's circuit-breaker state (created on first use)."""
        return channel.setdefault(
            "breaker", {"failures": 0, "open": False, "cooldown_left": 0})

    def available(self, channel: dict) -> bool:
        """False while the breaker is open (reads degrade, writes fail fast)."""
        return not self.breaker(channel)["open"]

    def reset(self, channel: dict) -> None:
        """Administratively close the breaker (e.g. after a healed peer)."""
        channel["breaker"] = {"failures": 0, "open": False,
                              "cooldown_left": 0}

    # -- the guarded call ------------------------------------------------------
    def call(self, channel: dict, stats, action):
        """Run one remote interaction behind retry + circuit breaker.

        ``action()`` performs the message round trip (including its
        :meth:`remote_call` accounting) and returns the result.  Transient
        :class:`GatewayError`\\ s are retried up to the channel's
        ``retries`` with deterministic exponential backoff charged as
        latency units.  An exhausted call counts a breaker failure;
        ``breaker_threshold`` of them in a row open the breaker, and while
        it is open every call fails fast until ``breaker_cooldown``
        fail-fast calls have passed — then one half-open probe runs for
        real and closes the breaker on success.
        """
        prefix = self.counter_prefix
        breaker = self.breaker(channel)
        if breaker["open"]:
            if breaker["cooldown_left"] > 0:
                breaker["cooldown_left"] -= 1
                stats.bump(f"{prefix}.fail_fast")
                raise GatewayError(
                    f"remote channel to {channel.get('relation')!r} is "
                    "unavailable (circuit breaker open)")
            stats.bump(f"{prefix}.half_open_probes")  # probe falls through
        retries = int(channel.get("retries", 3))
        base_latency = int(channel.get("latency", 2.0) * 100)
        attempt = 0
        while True:
            try:
                result = action()
            except GatewayError:
                if attempt < retries:
                    # Bounded deterministic backoff: the retry charges
                    # escalating latency units instead of wall-clock sleep.
                    stats.bump(f"{prefix}.retry.attempts")
                    stats.bump(f"{prefix}.retry.backoff_units",
                               base_latency * (2 ** attempt))
                    attempt += 1
                    continue
                stats.bump(f"{prefix}.retry.exhausted")
                breaker["failures"] += 1
                if breaker["failures"] >= int(
                        channel.get("breaker_threshold", 3)):
                    breaker["open"] = True
                    breaker["cooldown_left"] = int(
                        channel.get("breaker_cooldown", 8))
                    stats.bump(f"{prefix}.breaker.trips")
                raise
            if breaker["open"]:
                stats.bump(f"{prefix}.breaker.closes")
            breaker["open"] = False
            breaker["failures"] = 0
            breaker["cooldown_left"] = 0
            return result
