"""Remote-call transport: retry, backoff, circuit breaker, fault points.

Extracted from the foreign-database gateway (PR 4) so that *any* component
talking to another database instance — the foreign storage method, the
sharded storage method's per-shard channels — shares one implementation of
the unreliable-messaging discipline:

* every message round trip is **accounted** (a message counter plus a
  configurable latency charge in I/O-page-equivalent units) and passes
  through named **fault injection points**, so tests and benches can lose
  exactly the Nth message to exactly one peer;
* transient :class:`~repro.errors.GatewayError`\\ s are retried with
  bounded deterministic exponential backoff, charged as latency units
  rather than wall-clock sleep; the backoff is *jittered* (equal jitter:
  each wait lands in ``[cap/2, cap]``, seeded by the channel name and
  attempt number so runs reproduce exactly) to keep synchronized
  retriers from hammering a recovering peer in lockstep;
* an optional per-call **deadline** (channel knob ``deadline``, same
  I/O-page-equivalent scale as ``latency``) bounds the retry tail: when
  the attempt round trips plus backoff waits would exceed the budget the
  call stops retrying, counts ``remote.deadline_exceeded`` (and the
  prefixed ``{prefix}.deadline_exceeded``), and registers a breaker
  failure;
* repeated exhausted calls trip a per-channel **circuit breaker**: calls
  then fail fast (no message attempted) for a cooldown of calls, after
  which one half-open probe either closes the breaker or re-opens it.
  Only one probe may be in flight per channel: a second session racing
  the probe fails fast (``{prefix}.probe_conflicts``) instead of
  stacking probes — so a slow probe can neither be double-counted as a
  close nor wedge the breaker for everyone else.

A *channel* is a plain descriptor dict (the storage descriptor for the
foreign method; one per shard for the sharded method) carrying the knobs
``latency``, ``retries``, ``breaker_threshold``, ``breaker_cooldown``,
and optionally ``deadline`` and a channel-specific ``fault_point`` (an
extra injection point naming the *endpoint* behind the channel, so tests
can kill one peer while its successors stay reachable); the breaker
state itself lives in the channel under ``"breaker"``, so every remote
relation (or shard) fails independently.

A :class:`RemoteTransport` is configuration only — fault-point names and
counter names — and holds no mutable state, so one instance can serve any
number of channels.  The default configuration reproduces the foreign
gateway's historical counter names exactly (``foreign.messages``,
``gateway.retry.attempts``, ...), which existing test suites pin.
"""

from __future__ import annotations

import zlib
from typing import Sequence

from ..errors import FencingError, GatewayError

__all__ = ["RemoteTransport"]


class RemoteTransport:
    """Retry + circuit-breaker discipline over named channels."""

    def __init__(self, fault_points: Sequence[str] = ("foreign.remote_call",),
                 message_counter: str = "foreign.messages",
                 latency_counter: str = "foreign.latency_units",
                 counter_prefix: str = "gateway"):
        self.fault_points = tuple(fault_points)
        self.message_counter = message_counter
        self.latency_counter = latency_counter
        self.counter_prefix = counter_prefix

    # -- message accounting ----------------------------------------------------
    def remote_call(self, ctx_or_services, channel: dict, stats) -> None:
        """Account one message round trip on ``channel``.

        Fires every configured fault point (in order) *before* charging,
        so a lost message costs nothing and the surrounding :meth:`call`
        retry loop can safely re-run the action.
        """
        services = getattr(ctx_or_services, "services", ctx_or_services)
        faults = getattr(services, "faults", None)
        if faults is not None and faults.armed:
            for point in self.fault_points:
                faults.fire(point)
            endpoint = channel.get("fault_point")
            if endpoint is not None:
                faults.fire(endpoint)
        stats.bump(self.message_counter)
        stats.bump(self.latency_counter,
                   int(channel.get("latency", 2.0) * 100))

    # -- breaker state ---------------------------------------------------------
    @staticmethod
    def breaker(channel: dict) -> dict:
        """The channel's circuit-breaker state (created on first use)."""
        return channel.setdefault(
            "breaker", {"failures": 0, "open": False, "cooldown_left": 0})

    def available(self, channel: dict) -> bool:
        """False while the breaker is open (reads degrade, writes fail fast)."""
        return not self.breaker(channel)["open"]

    def reset(self, channel: dict) -> None:
        """Administratively close the breaker (e.g. after a healed peer)."""
        channel["breaker"] = {"failures": 0, "open": False,
                              "cooldown_left": 0}

    # -- backoff ---------------------------------------------------------------
    @staticmethod
    def backoff_units(channel: dict, base_latency: int, attempt: int) -> int:
        """Jittered exponential backoff for one retry, in latency units.

        Equal jitter: the wait lands in ``[cap/2, cap]`` where ``cap`` is
        ``base_latency * 2**attempt``.  The jitter is seeded by the channel
        name and the attempt number (no wall clock, no global RNG), so
        every run of the same scenario charges identical units while
        distinct channels still spread their retries apart.
        """
        cap = base_latency * (2 ** attempt)
        seed = zlib.crc32(f"{channel.get('relation')}|{attempt}".encode())
        return int(cap * (0.5 + (seed % 1000) / 2000.0))

    # -- the guarded call ------------------------------------------------------
    def call(self, channel: dict, stats, action):
        """Run one remote interaction behind retry + circuit breaker.

        ``action()`` performs the message round trip (including its
        :meth:`remote_call` accounting) and returns the result.  Transient
        :class:`GatewayError`\\ s are retried up to the channel's
        ``retries`` with jittered exponential backoff charged as latency
        units; a channel ``deadline`` caps the attempt-plus-backoff budget
        so the retry tail is bounded.  An exhausted (or deadlined) call
        counts a breaker failure; ``breaker_threshold`` of them in a row
        open the breaker, and while it is open every call fails fast until
        ``breaker_cooldown`` fail-fast calls have passed — then one
        half-open probe runs for real and closes the breaker on success.
        Concurrent sessions never stack probes: while one probe is in
        flight, other callers fail fast.
        """
        prefix = self.counter_prefix
        breaker = self.breaker(channel)
        probing = False
        if breaker["open"]:
            if breaker["cooldown_left"] > 0:
                breaker["cooldown_left"] -= 1
                stats.bump(f"{prefix}.fail_fast")
                raise GatewayError(
                    f"remote channel to {channel.get('relation')!r} is "
                    "unavailable (circuit breaker open)")
            if breaker.get("probing"):
                # Another session's half-open probe is in flight.  Joining
                # it would let two callers observe one success and close
                # the breaker twice — or, with an interleaved failure,
                # leave the state machine wedged half-open.
                stats.bump(f"{prefix}.fail_fast")
                stats.bump(f"{prefix}.probe_conflicts")
                raise GatewayError(
                    f"remote channel to {channel.get('relation')!r} is "
                    "unavailable (half-open probe already in flight)")
            breaker["probing"] = True
            probing = True
            stats.bump(f"{prefix}.half_open_probes")  # probe falls through
        retries = int(channel.get("retries", 3))
        base_latency = int(channel.get("latency", 2.0) * 100)
        deadline = channel.get("deadline")
        budget = None if deadline is None else int(float(deadline) * 100)
        spent = 0
        attempt = 0
        try:
            while True:
                spent += base_latency  # the attempt's own round trip
                try:
                    result = action()
                except FencingError:
                    # A fence is a decision, not a transient: retrying a
                    # deposed sender can never succeed, and the channel
                    # itself is healthy, so no breaker failure either.
                    raise
                except GatewayError as exc:
                    if attempt < retries:
                        backoff = self.backoff_units(channel, base_latency,
                                                     attempt)
                        if (budget is None
                                or spent + backoff + base_latency <= budget):
                            # Bounded jittered backoff: the retry charges
                            # escalating latency units, not wall-clock sleep.
                            stats.bump(f"{prefix}.retry.attempts")
                            stats.bump(f"{prefix}.retry.backoff_units",
                                       backoff)
                            spent += backoff
                            attempt += 1
                            continue
                        stats.bump(f"{prefix}.deadline_exceeded")
                        stats.bump("remote.deadline_exceeded")
                        self._breaker_failure(channel, breaker, stats)
                        raise GatewayError(
                            f"remote call to {channel.get('relation')!r} "
                            f"exceeded its deadline ({deadline} latency "
                            f"units) after {attempt + 1} attempt(s)"
                        ) from exc
                    stats.bump(f"{prefix}.retry.exhausted")
                    self._breaker_failure(channel, breaker, stats)
                    raise
                if breaker["open"]:
                    stats.bump(f"{prefix}.breaker.closes")
                breaker["open"] = False
                breaker["failures"] = 0
                breaker["cooldown_left"] = 0
                return result
        finally:
            if probing:
                breaker["probing"] = False

    def _breaker_failure(self, channel: dict, breaker: dict, stats) -> None:
        breaker["failures"] += 1
        if breaker["failures"] >= int(channel.get("breaker_threshold", 3)):
            breaker["open"] = True
            breaker["cooldown_left"] = int(channel.get("breaker_cooldown", 8))
            stats.bump(f"{self.counter_prefix}.breaker.trips")
