"""Write-ahead log manager.

The paper: "The data management extension architecture relies on the use of
a common recovery facility to drive, not only system restart and
transaction abort, but also the *partial rollback* of the actions of the
transaction."

The log is the single coordination point for undo.  Storage methods and
attachments append logical *operation* records tagged with a resource name
(``storage.heap``, ``attachment.btree_index``, ...); the recovery driver
later calls the matching extension handler to undo or redo the operation.
Compensation log records (CLRs) make rollback itself restartable, exactly
as in ARIES-style systems.

Stability is modelled explicitly: :meth:`LogManager.flush` advances the
stable prefix, and a simulated crash discards everything after it.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Sequence

from ..errors import RecoveryError

__all__ = ["LogRecord", "LogManager",
           "BEGIN", "UPDATE", "CLR", "SAVEPOINT", "COMMIT", "ABORT", "END"]

# Log record kinds.
BEGIN = "BEGIN"
UPDATE = "UPDATE"          # a logical operation by a storage method/attachment
CLR = "CLR"                # compensation: records one undone operation
SAVEPOINT = "SAVEPOINT"
COMMIT = "COMMIT"
ABORT = "ABORT"
END = "END"


class LogRecord:
    """One log record.

    ``prev_lsn`` backchains records of the same transaction.  For ``CLR``
    records, ``undo_next`` points at the next record to undo (the ``prev_lsn``
    of the compensated record), so rollback never undoes an undo.
    """

    __slots__ = ("lsn", "prev_lsn", "txn_id", "kind", "resource", "payload",
                 "undo_next")

    def __init__(self, lsn: int, prev_lsn: int, txn_id: int, kind: str,
                 resource: Optional[str] = None, payload: Optional[dict] = None,
                 undo_next: Optional[int] = None):
        self.lsn = lsn
        self.prev_lsn = prev_lsn
        self.txn_id = txn_id
        self.kind = kind
        self.resource = resource
        self.payload = payload or {}
        self.undo_next = undo_next

    def __repr__(self) -> str:
        extra = f" {self.resource}" if self.resource else ""
        return (f"LogRecord(lsn={self.lsn}, txn={self.txn_id}, "
                f"{self.kind}{extra}, prev={self.prev_lsn})")


class LogManager:
    """Append-only log with an explicitly tracked stable prefix."""

    def __init__(self):
        self._records: List[LogRecord] = []
        self._flushed_lsn = 0
        self._last_lsn: Dict[int, int] = {}  # txn_id -> last LSN written

    # -- appending ------------------------------------------------------------
    def append(self, txn_id: int, kind: str, resource: Optional[str] = None,
               payload: Optional[dict] = None,
               undo_next: Optional[int] = None) -> LogRecord:
        lsn = len(self._records) + 1
        prev = self._last_lsn.get(txn_id, 0)
        record = LogRecord(lsn, prev, txn_id, kind, resource, payload, undo_next)
        self._records.append(record)
        self._last_lsn[txn_id] = lsn
        return record

    def append_batch(self, txn_id: int, kind: str,
                     resource: Optional[str] = None,
                     payloads: Sequence[Optional[dict]] = ()) -> List[LogRecord]:
        """Append one record per payload as a single contiguous group.

        The group occupies one LSN range: the records are backchained in
        order and no other record of any transaction can interleave (the
        append is a single call).  Set-at-a-time modifications use this to
        log a whole batch — e.g. one page-group record per filled page —
        with one log-manager interaction instead of one per record.
        """
        records = []
        for payload in payloads:
            records.append(self.append(txn_id, kind, resource, payload))
        return records

    def last_lsn(self, txn_id: int) -> int:
        return self._last_lsn.get(txn_id, 0)

    # -- stability ----------------------------------------------------------------
    @property
    def flushed_lsn(self) -> int:
        return self._flushed_lsn

    @property
    def current_lsn(self) -> int:
        return len(self._records)

    def flush(self, up_to_lsn: Optional[int] = None) -> None:
        """Force the log to stable storage up to ``up_to_lsn`` (or all)."""
        target = self.current_lsn if up_to_lsn is None else min(
            up_to_lsn, self.current_lsn)
        if target > self._flushed_lsn:
            self._flushed_lsn = target

    def lose_unflushed(self) -> int:
        """Simulate a crash: records after the stable prefix are lost.

        Returns the number of records dropped.  Per-transaction chains are
        rebuilt from the surviving records.
        """
        lost = len(self._records) - self._flushed_lsn
        del self._records[self._flushed_lsn:]
        self._last_lsn = {}
        for record in self._records:
            self._last_lsn[record.txn_id] = record.lsn
        return lost

    # -- reading ----------------------------------------------------------------------
    def record(self, lsn: int) -> LogRecord:
        if not 1 <= lsn <= len(self._records):
            raise RecoveryError(f"no log record with LSN {lsn}")
        return self._records[lsn - 1]

    def forward(self, from_lsn: int = 1) -> Iterator[LogRecord]:
        """Iterate records in LSN order starting at ``from_lsn``."""
        for i in range(from_lsn - 1, len(self._records)):
            yield self._records[i]

    def transaction_chain(self, txn_id: int) -> Iterator[LogRecord]:
        """Walk one transaction's records newest-first via the backchain."""
        lsn = self._last_lsn.get(txn_id, 0)
        while lsn:
            record = self.record(lsn)
            yield record
            lsn = record.prev_lsn

    def __len__(self) -> int:
        return len(self._records)

    def __repr__(self) -> str:
        return (f"LogManager({len(self._records)} records, "
                f"flushed={self._flushed_lsn})")
