"""Write-ahead log manager.

The paper: "The data management extension architecture relies on the use of
a common recovery facility to drive, not only system restart and
transaction abort, but also the *partial rollback* of the actions of the
transaction."

The log is the single coordination point for undo.  Storage methods and
attachments append logical *operation* records tagged with a resource name
(``storage.heap``, ``attachment.btree_index``, ...); the recovery driver
later calls the matching extension handler to undo or redo the operation.
Compensation log records (CLRs) make rollback itself restartable, exactly
as in ARIES-style systems.

Stability is modelled explicitly: :meth:`LogManager.flush` advances the
stable prefix, and a simulated crash discards everything after it.

Checkpointing and truncation: ``CHECKPOINT_BEGIN``/``CHECKPOINT_END``
records bracket a fuzzy checkpoint; the ``master_lsn`` pointer (the analogue
of the master record on stable storage) names the latest *complete*
checkpoint and survives a crash because it is only advanced after the
CHECKPOINT_END record is stable.  :meth:`truncate` reclaims the log prefix
below the checkpoint's redo/undo point; LSN addressing stays stable across
truncation via a base offset, so page LSNs and backchains never need
rewriting.
"""

from __future__ import annotations

from copy import deepcopy
from typing import Callable, Dict, Iterator, List, Optional, Sequence

from ..errors import RecoveryError

__all__ = ["LogRecord", "LogManager",
           "BEGIN", "UPDATE", "CLR", "SAVEPOINT", "PREPARE", "COMMIT",
           "ABORT", "END", "CHECKPOINT_BEGIN", "CHECKPOINT_END"]

# Log record kinds.
BEGIN = "BEGIN"
UPDATE = "UPDATE"          # a logical operation by a storage method/attachment
CLR = "CLR"                # compensation: records one undone operation
SAVEPOINT = "SAVEPOINT"
PREPARE = "PREPARE"        # 2PC participant vote: carries the global txn id
COMMIT = "COMMIT"
ABORT = "ABORT"
END = "END"
CHECKPOINT_BEGIN = "CHECKPOINT_BEGIN"  # fuzzy checkpoint opened
CHECKPOINT_END = "CHECKPOINT_END"      # carries the ATT and DPT snapshots

#: Pseudo transaction id used by checkpoint records (no real transaction
#: ever gets id 0; see TransactionManager which starts at 1).
SYSTEM_TXN = 0


class LogRecord:
    """One log record.

    ``prev_lsn`` backchains records of the same transaction.  For ``CLR``
    records, ``undo_next`` points at the next record to undo (the ``prev_lsn``
    of the compensated record), so rollback never undoes an undo.
    """

    __slots__ = ("lsn", "prev_lsn", "txn_id", "kind", "resource", "payload",
                 "undo_next")

    def __init__(self, lsn: int, prev_lsn: int, txn_id: int, kind: str,
                 resource: Optional[str] = None, payload: Optional[dict] = None,
                 undo_next: Optional[int] = None):
        self.lsn = lsn
        self.prev_lsn = prev_lsn
        self.txn_id = txn_id
        self.kind = kind
        self.resource = resource
        self.payload = payload or {}
        self.undo_next = undo_next

    def __repr__(self) -> str:
        extra = f" {self.resource}" if self.resource else ""
        return (f"LogRecord(lsn={self.lsn}, txn={self.txn_id}, "
                f"{self.kind}{extra}, prev={self.prev_lsn})")


class LogManager:
    """Append-only log with an explicitly tracked stable prefix.

    Internally the record list may start at any LSN: ``_base`` counts the
    records reclaimed by :meth:`truncate`, so ``_records[0]`` holds LSN
    ``_base + 1`` and every externally visible LSN is stable forever.
    """

    def __init__(self):
        self._records: List[LogRecord] = []
        self._base = 0               # records reclaimed below oldest_lsn
        self._flushed_lsn = 0
        self._master_lsn = 0         # latest complete checkpoint's BEGIN
        self._last_lsn: Dict[int, int] = {}   # txn_id -> last LSN written
        self._first_lsn: Dict[int, int] = {}  # txn_id -> first LSN written
        # Automatic checkpoint trigger (installed by SystemServices).
        self._checkpoint_interval = 0
        self._checkpoint_callback: Optional[Callable[[], None]] = None
        self._since_checkpoint = 0
        self._in_checkpoint_trigger = False
        #: Optional fault injector (wired by SystemServices).
        self.faults = None

    # -- appending ------------------------------------------------------------
    def append(self, txn_id: int, kind: str, resource: Optional[str] = None,
               payload: Optional[dict] = None,
               undo_next: Optional[int] = None) -> LogRecord:
        if self.faults is not None:
            self.faults.fire("wal.append")
        lsn = self._base + len(self._records) + 1
        prev = self._last_lsn.get(txn_id, 0)
        record = LogRecord(lsn, prev, txn_id, kind, resource, payload, undo_next)
        self._records.append(record)
        self._last_lsn[txn_id] = lsn
        if txn_id not in self._first_lsn:
            self._first_lsn[txn_id] = lsn
        self._maybe_auto_checkpoint()
        return record

    def append_batch(self, txn_id: int, kind: str,
                     resource: Optional[str] = None,
                     payloads: Sequence[Optional[dict]] = ()) -> List[LogRecord]:
        """Append one record per payload as a single contiguous group.

        The group occupies one LSN range: the records are backchained in
        order and no other record of any transaction can interleave (the
        append is a single call).  Set-at-a-time modifications use this to
        log a whole batch — e.g. one page-group record per filled page —
        with one log-manager interaction instead of one per record.
        """
        records = []
        for payload in payloads:
            records.append(self.append(txn_id, kind, resource, payload))
        return records

    def last_lsn(self, txn_id: int) -> int:
        return self._last_lsn.get(txn_id, 0)

    def first_lsn(self, txn_id: int) -> int:
        """The transaction's oldest LSN (its undo horizon; 0 if none)."""
        return self._first_lsn.get(txn_id, 0)

    # -- stability ----------------------------------------------------------------
    @property
    def flushed_lsn(self) -> int:
        return self._flushed_lsn

    @property
    def current_lsn(self) -> int:
        return self._base + len(self._records)

    @property
    def oldest_lsn(self) -> int:
        """The first LSN still addressable (everything below was truncated)."""
        return self._base + 1

    @property
    def truncated_records(self) -> int:
        return self._base

    def flush(self, up_to_lsn: Optional[int] = None) -> None:
        """Force the log to stable storage up to ``up_to_lsn`` (or all)."""
        if self.faults is not None:
            self.faults.fire("wal.flush")
        target = self.current_lsn if up_to_lsn is None else min(
            up_to_lsn, self.current_lsn)
        if target > self._flushed_lsn:
            self._flushed_lsn = target

    def lose_unflushed(self) -> int:
        """Simulate a crash: records after the stable prefix are lost.

        Returns the number of records dropped.  Per-transaction chains are
        rebuilt from the surviving records.  The master checkpoint pointer
        survives (it is only ever advanced after the checkpoint records are
        stable).
        """
        lost = self.current_lsn - self._flushed_lsn
        if lost > 0:
            del self._records[self._flushed_lsn - self._base:]
        else:
            lost = 0
        self._last_lsn = {}
        self._first_lsn = {}
        for record in self._records:
            self._last_lsn[record.txn_id] = record.lsn
            if record.txn_id not in self._first_lsn:
                self._first_lsn[record.txn_id] = record.lsn
        if self._master_lsn > self._flushed_lsn:
            self._master_lsn = 0  # incomplete checkpoint never becomes master
        return lost

    # -- checkpointing --------------------------------------------------------
    @property
    def master_lsn(self) -> int:
        """LSN of the latest complete checkpoint's CHECKPOINT_BEGIN (0: none)."""
        return self._master_lsn

    def set_master(self, lsn: int) -> None:
        """Advance the master checkpoint pointer (checkpoint must be stable)."""
        if lsn > self._flushed_lsn:
            raise RecoveryError(
                f"master checkpoint LSN {lsn} is beyond the stable prefix "
                f"({self._flushed_lsn}) — flush the checkpoint records first")
        self._master_lsn = lsn
        self._since_checkpoint = 0

    def truncate(self, before_lsn: int) -> int:
        """Reclaim records with LSN < ``before_lsn``; returns count dropped.

        Only the stable prefix is ever reclaimed, and LSN addressing stays
        valid: later records keep their LSNs, and looking up a reclaimed
        LSN raises.  Callers are responsible for passing a bound at or
        below the checkpoint's redo/undo point (``SystemServices.
        checkpoint(truncate=True)`` computes the safe bound).
        """
        target = min(before_lsn, self._flushed_lsn + 1)
        drop = target - self._base - 1
        if drop <= 0:
            return 0
        del self._records[:drop]
        self._base += drop
        return drop

    def set_checkpoint_trigger(self, interval: int,
                               callback: Optional[Callable[[], None]]) -> None:
        """Run ``callback`` after every ``interval`` appended records.

        ``interval <= 0`` disables the trigger.  The callback (a fuzzy
        checkpoint — it must not flush data pages) may itself append
        records; reentrant triggering is suppressed.  Completing any
        checkpoint (:meth:`set_master`) restarts the countdown.
        """
        self._checkpoint_interval = interval
        self._checkpoint_callback = callback if interval > 0 else None
        self._since_checkpoint = 0

    def _maybe_auto_checkpoint(self) -> None:
        self._since_checkpoint += 1
        if (self._checkpoint_callback is None
                or self._in_checkpoint_trigger
                or self._since_checkpoint < self._checkpoint_interval):
            return
        self._in_checkpoint_trigger = True
        try:
            self._checkpoint_callback()
        finally:
            self._in_checkpoint_trigger = False

    # -- replication ------------------------------------------------------------------
    def ship_since(self, after_lsn: int,
                   up_to: Optional[int] = None) -> List[dict]:
        """Serialize records with ``after_lsn < lsn <= up_to`` for shipping.

        Returns plain wire dicts (payloads deep-copied: what crosses the
        channel is a serialization, never a shared object).  ``up_to``
        defaults to the whole log; replication callers pass the stable
        prefix (``flushed_lsn``) so a standby never holds records its
        primary could still lose.  Raises :class:`RecoveryError` when
        ``after_lsn`` falls below the truncation horizon — the standby has
        fallen off the retained log and must be rebuilt.
        """
        if after_lsn + 1 < self.oldest_lsn:
            raise RecoveryError(
                f"cannot ship from LSN {after_lsn + 1}: the log was "
                f"truncated (oldest retained LSN is {self.oldest_lsn}); "
                f"the standby needs a full rebuild")
        top = self.current_lsn if up_to is None else min(up_to,
                                                         self.current_lsn)
        wire = []
        for record in self.forward(after_lsn + 1):
            if record.lsn > top:
                break
            wire.append({"lsn": record.lsn, "prev_lsn": record.prev_lsn,
                         "txn_id": record.txn_id, "kind": record.kind,
                         "resource": record.resource,
                         "payload": deepcopy(record.payload),
                         "undo_next": record.undo_next})
        return wire

    def append_replicated(self, wire: dict) -> bool:
        """Append one shipped record at its original LSN.

        Returns False for a duplicate (at-least-once delivery: a lost ack
        makes the primary re-ship records the standby already holds) and
        raises :class:`RecoveryError` on a gap — a standby must never hold
        a log with holes, or redo from it would silently skip effects.
        Bypasses fault points and the auto-checkpoint trigger: the append
        is the standby's half of a ship, not a local operation.
        """
        lsn = wire["lsn"]
        if lsn <= self.current_lsn:
            return False
        if lsn != self.current_lsn + 1:
            raise RecoveryError(
                f"replication gap: expected LSN {self.current_lsn + 1}, "
                f"got {lsn}")
        record = LogRecord(lsn, wire["prev_lsn"], wire["txn_id"],
                           wire["kind"], wire.get("resource"),
                           wire.get("payload"), wire.get("undo_next"))
        self._records.append(record)
        self._last_lsn[record.txn_id] = lsn
        if record.txn_id not in self._first_lsn:
            self._first_lsn[record.txn_id] = lsn
        return True

    # -- reading ----------------------------------------------------------------------
    def record(self, lsn: int) -> LogRecord:
        if lsn <= self._base:
            if 1 <= lsn:
                raise RecoveryError(
                    f"log record {lsn} was reclaimed by truncation "
                    f"(oldest retained LSN is {self.oldest_lsn})")
            raise RecoveryError(f"no log record with LSN {lsn}")
        if lsn > self.current_lsn:
            raise RecoveryError(f"no log record with LSN {lsn}")
        return self._records[lsn - self._base - 1]

    def forward(self, from_lsn: Optional[int] = None) -> Iterator[LogRecord]:
        """Iterate records in LSN order starting at ``from_lsn``.

        Starts at the oldest retained record when ``from_lsn`` is omitted
        or below the truncation horizon.
        """
        start = self.oldest_lsn if from_lsn is None else max(
            from_lsn, self.oldest_lsn)
        for i in range(start - self._base - 1, len(self._records)):
            yield self._records[i]

    def transaction_chain(self, txn_id: int) -> Iterator[LogRecord]:
        """Walk one transaction's records newest-first via the backchain."""
        lsn = self._last_lsn.get(txn_id, 0)
        while lsn:
            record = self.record(lsn)
            yield record
            lsn = record.prev_lsn

    def __len__(self) -> int:
        return len(self._records)

    def __repr__(self) -> str:
        return (f"LogManager({len(self._records)} records, "
                f"flushed={self._flushed_lsn}, master={self._master_lsn})")
