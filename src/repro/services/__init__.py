"""Common services environment.

The paper's extension architecture embeds every storage method and
attachment in a shared execution environment: the recovery log, the lock
manager, event notification, the predicate evaluator, scan bookkeeping,
and the buffer pool.  :class:`SystemServices` constructs and wires that
bundle; a :class:`~repro.core.database.Database` owns exactly one.
"""

from __future__ import annotations

from .buffer import BufferPool
from .disk import BlockDevice, PAGE_SIZE
from .events import EventService
from .locks import LockManager, LockMode
from .predicate import Predicate
from .recovery import RecoveryManager, ResourceHandler
from .scans import Scan, ScanService
from .stats import StatsService
from .transactions import Transaction, TransactionManager, TxnState
from .wal import LogManager

__all__ = ["SystemServices", "BufferPool", "BlockDevice", "EventService",
           "LockManager", "LockMode", "Predicate", "RecoveryManager",
           "ResourceHandler", "Scan", "ScanService", "StatsService",
           "Transaction", "TransactionManager", "TxnState", "LogManager",
           "PAGE_SIZE"]


class SystemServices:
    """The wired-up common services bundle for one database instance."""

    def __init__(self, page_size: int = PAGE_SIZE, buffer_capacity: int = 256):
        self.stats = StatsService()
        self.disk = BlockDevice(page_size=page_size, stats=self.stats)
        self.wal = LogManager()
        self.buffer = BufferPool(self.disk, capacity=buffer_capacity,
                                 wal_flush=self.wal.flush)
        self.recovery = RecoveryManager(self.wal, services=self)
        self.locks = LockManager(stats=self.stats)
        self.events = EventService()
        self.scans = ScanService(self.events)
        self.transactions = TransactionManager(
            self.wal, self.recovery, self.locks, self.events, self.scans,
            stats=self.stats)

    def crash(self) -> int:
        """Simulate a crash: the buffer pool and unflushed log are lost.

        Returns the number of log records dropped.  Call
        :meth:`RecoveryManager.restart` afterwards to recover.
        """
        self.buffer.crash()
        return self.wal.lose_unflushed()

    def checkpoint(self) -> None:
        """Force all dirty pages (and therefore the log) to stable storage."""
        self.wal.flush()
        self.buffer.flush_all()
