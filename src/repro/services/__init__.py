"""Common services environment.

The paper's extension architecture embeds every storage method and
attachment in a shared execution environment: the recovery log, the lock
manager, event notification, the predicate evaluator, scan bookkeeping,
and the buffer pool.  :class:`SystemServices` constructs and wires that
bundle; a :class:`~repro.core.database.Database` owns exactly one.
"""

from __future__ import annotations

from .buffer import BufferPool
from .disk import BlockDevice, PAGE_SIZE
from .events import EventService
from .faults import FaultInjector
from .locks import LockManager, LockMode
from .predicate import Predicate
from .recovery import RecoveryManager, ResourceHandler
from .scans import Scan, ScanService
from .stats import StatsService
from .transactions import Transaction, TransactionManager, TxnState
from .wal import LogManager

__all__ = ["SystemServices", "BufferPool", "BlockDevice", "EventService",
           "FaultInjector", "LockManager", "LockMode", "Predicate",
           "RecoveryManager", "ResourceHandler", "Scan", "ScanService",
           "StatsService", "Transaction", "TransactionManager", "TxnState",
           "LogManager", "PAGE_SIZE"]


class SystemServices:
    """The wired-up common services bundle for one database instance."""

    def __init__(self, page_size: int = PAGE_SIZE, buffer_capacity: int = 256):
        self.stats = StatsService()
        self.faults = FaultInjector(stats=self.stats)
        self.disk = BlockDevice(page_size=page_size, stats=self.stats)
        self.wal = LogManager()
        self.buffer = BufferPool(self.disk, capacity=buffer_capacity,
                                 wal_flush=self.wal.flush,
                                 lsn_source=lambda: self.wal.current_lsn)
        # One injector threads every layer's named injection points.
        self.disk.faults = self.faults
        self.wal.faults = self.faults
        self.buffer.faults = self.faults
        self.recovery = RecoveryManager(self.wal, services=self)
        self.locks = LockManager(stats=self.stats)
        self.events = EventService()
        self.scans = ScanService(self.events)
        self.transactions = TransactionManager(
            self.wal, self.recovery, self.locks, self.events, self.scans,
            stats=self.stats)

    def crash(self) -> int:
        """Simulate a crash: the buffer pool and unflushed log are lost.

        Returns the number of log records dropped.  Call
        :meth:`RecoveryManager.restart` afterwards to recover.
        """
        self.buffer.crash()
        return self.wal.lose_unflushed()

    def checkpoint(self, truncate: bool = False,
                   flush_pages: bool = False) -> dict:
        """Take a checkpoint; fuzzy by default (no data page is flushed).

        ``flush_pages=True`` first writes every dirty page back (the sharp
        variant — it empties the dirty-page table so the checkpoint's redo
        bound collapses to the checkpoint itself).  ``truncate=True``
        additionally reclaims the log prefix below the checkpoint's
        redo/undo point.  Returns the checkpoint summary.

        Pending group commits are forced first: an enqueued-but-unforced
        COMMIT must not end up below a truncation horizon (it would be
        unrecoverable yet undetectable), and the checkpoint's ATT snapshot
        must not classify an already-enqueued commit as a loser.
        """
        self.transactions.commit_group()
        if flush_pages:
            self.buffer.flush_all()
        info = self.recovery.checkpoint()
        info["truncated"] = (self.wal.truncate(info["truncatable_below"])
                             if truncate else 0)
        # The checkpoint is complete and stable: archive the device image
        # as the torn-page repair source for the next restart.
        info["archived_pages"] = self.disk.snapshot_archive()
        return info

    def enable_auto_checkpoint(self, interval: int) -> None:
        """Take a fuzzy checkpoint automatically every ``interval`` log
        records (0 disables).  The trigger counts every appended record
        and resets whenever any checkpoint completes."""
        self.wal.set_checkpoint_trigger(
            interval, self._auto_checkpoint if interval > 0 else None)

    def _auto_checkpoint(self) -> None:
        self.checkpoint()
        self.stats.bump("recovery.checkpoints.auto")
