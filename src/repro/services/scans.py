"""Scan position bookkeeping.

The paper introduces the term *scan* for a key-sequential access position:
"A scan may be *on*, *after*, or *before* an item of the relation or access
path.  After a successful return from a key-sequential access, the scan is
*on* the returned item.  If an item at the scan position is deleted, the
scan will be positioned just *after* the deleted item."

Two common-service obligations follow:

* **End of transaction** — all key-sequential accesses must be terminated
  when the transaction ends (locks protecting the positions are released),
  so the service closes every scan the transaction still has open.
* **Partial rollback** — scan position changes are *not logged* (for
  performance), so when a savepoint is established the service asks every
  open scan for its position, retains it, and restores it if the
  transaction later rolls back to that savepoint.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from ..errors import ScanError
from . import events as ev
from .events import EventService

__all__ = ["ScanPosition", "Scan", "ScanService", "SnapshotScan",
           "ABSENT", "BEFORE", "ON", "AFTER"]

BEFORE = "before"
ON = "on"
AFTER = "after"

#: Sentinel: under a snapshot, this record key must not be seen at all
#: (the version store's "the record did not exist" image).  Defined here
#: (the scan boundary) so both the transaction service's version store
#: and the snapshot scan wrapper can share it without an import cycle.
ABSENT = object()


class ScanPosition:
    """An opaque (to the common system) saved scan position.

    ``state`` is one of BEFORE / ON / AFTER relative to ``item``, whose
    interpretation belongs to the scan's storage method or attachment.
    """

    __slots__ = ("state", "item")

    def __init__(self, state: str, item):
        if state not in (BEFORE, ON, AFTER):
            raise ScanError(f"bad scan position state {state!r}")
        self.state = state
        self.item = item

    def __eq__(self, other):
        return (isinstance(other, ScanPosition)
                and (self.state, self.item) == (other.state, other.item))

    def __repr__(self) -> str:
        return f"ScanPosition({self.state}, {self.item!r})"


class Scan:
    """Base protocol for key-sequential accesses.

    Concrete scans are produced by storage methods and access-path
    attachments.  The common system only relies on this protocol; the
    *meaning* of positions stays inside the extension.
    """

    def __init__(self, txn_id: int):
        self.txn_id = txn_id
        self.closed = False

    def next(self):
        """Return the next item after the current position, or ``None`` at
        the end of the key sequence (the scan is then *after* the last
        item)."""
        raise NotImplementedError

    def next_batch(self, n: int) -> list:
        """Return up to ``n`` items following the current position.

        An empty list means the scan is *after* the last item.  After a
        non-empty return the scan is *on* the last item of the batch, so
        ``save_position`` / ``restore_position`` keep their tuple-at-a-time
        meaning at batch boundaries.  The default loops over :meth:`next`;
        extensions override it to extract a whole page of records under a
        single buffer pin.
        """
        if n < 1:
            raise ScanError(f"next_batch needs a positive count, got {n}")
        batch = []
        while len(batch) < n:
            item = self.next()
            if item is None:
                break
            batch.append(item)
        return batch

    def save_position(self) -> ScanPosition:
        raise NotImplementedError

    def restore_position(self, position: ScanPosition) -> None:
        raise NotImplementedError

    def close(self) -> None:
        self.closed = True

    def _check_open(self) -> None:
        if self.closed:
            raise ScanError("scan used after close")


class SnapshotScan(Scan):
    """Wraps a raw storage scan to serve a snapshot reader.

    The base scan must deliver *full* ``(key, record)`` pairs with no
    predicate or projection pushed down — the wrapper rewinds each record
    to its snapshot image first (``patch_fn`` returns the relation's
    current rewind patch, recomputed per batch so writes committed *after*
    the snapshot mid-scan are still patched back out), then applies the
    caller's ``transform`` (predicate + projection; return ``None`` to
    drop an item).

    Records the snapshot saw but a later writer deleted (or relocated)
    are no longer in storage at all: the wrapper *resurrects* them from
    the patch once the base scan is exhausted, in deterministic key
    order.
    """

    def __init__(self, base: Scan, patch_fn, transform=None, stats=None,
                 batch_transform=None):
        super().__init__(base.txn_id)
        self.base = base
        self._patch_fn = patch_fn
        self._transform = transform
        # Set-at-a-time variant: receives the whole patched batch of
        # ``(key, record)`` pairs and returns the surviving items.  When
        # present it replaces per-record ``transform`` calls, so snapshot
        # readers run the same vectorized filter kernels as quiesced
        # scans.
        self._batch_transform = batch_transform
        self._stats = stats
        self._seen: set = set()
        self._base_exhausted = False
        self._resurrect: List = []

    # -- the Scan protocol ------------------------------------------------------
    def next(self):
        batch = self.next_batch(1)
        return batch[0] if batch else None

    def next_batch(self, n: int) -> list:
        if n < 1:
            raise ScanError(f"next_batch needs a positive count, got {n}")
        self._check_open()
        out: list = []
        # An empty non-final batch would read as end-of-scan to callers,
        # so keep pulling until we produce at least one item or truly run
        # out (base exhausted *and* resurrection list drained).
        while not out and not self._base_exhausted:
            batch = self.base.next_batch(n)
            if not batch:
                self._base_exhausted = True
                self._prepare_resurrection()
                break
            patch = self._patch_fn()
            candidates = []
            for key, record in batch:
                self._seen.add(key)
                if key in patch:
                    image = patch[key]
                    if self._stats is not None:
                        self._stats.bump("mvcc.records_patched")
                    if image is ABSENT:
                        continue  # born after the snapshot: invisible
                    record = image
                candidates.append((key, record))
            out.extend(self._apply_batch(candidates))
        while len(out) < n and self._resurrect:
            take = min(n - len(out), len(self._resurrect))
            chunk = self._resurrect[:take]
            del self._resurrect[:take]
            out.extend(self._apply_batch(chunk))
        return out

    def save_position(self) -> ScanPosition:
        return self.base.save_position()

    def restore_position(self, position: ScanPosition) -> None:
        self.base.restore_position(position)

    def close(self) -> None:
        if not self.base.closed:
            self.base.close()
        super().close()

    # -- internals --------------------------------------------------------------
    def _apply(self, key, record):
        if self._transform is not None:
            return self._transform(key, record)
        return (key, record)

    def _apply_batch(self, pairs: list) -> list:
        if self._batch_transform is not None:
            return self._batch_transform(pairs)
        out = []
        for key, record in pairs:
            item = self._apply(key, record)
            if item is not None:
                out.append(item)
        return out

    def _prepare_resurrection(self) -> None:
        pending = [(key, image) for key, image in self._patch_fn().items()
                   if image is not ABSENT and key not in self._seen]
        try:
            pending.sort()
        except TypeError:  # heterogeneous keys: still deterministic
            pending.sort(key=repr)
        if pending and self._stats is not None:
            self._stats.bump("mvcc.records_resurrected", len(pending))
        self._resurrect = pending


class ScanService:
    """Tracks open scans per transaction; wires them to transaction events."""

    def __init__(self, events: EventService):
        # txn_id -> {id(scan): scan}; keyed by identity so wide queries
        # opening many scans register/unregister in O(1) (insertion order
        # is preserved, so event handlers still see scans oldest-first).
        self._open: Dict[int, Dict[int, Scan]] = {}
        # (txn_id, savepoint name) -> [(scan, position)]
        self._saved: Dict[Tuple[int, str], List[Tuple[Scan, ScanPosition]]] = {}
        events.subscribe(ev.AT_END, self._on_txn_end)
        events.subscribe(ev.SAVEPOINT_SET, self._on_savepoint_set)
        events.subscribe(ev.SAVEPOINT_ROLLBACK, self._on_savepoint_rollback)

    # -- registration (called by extensions when opening/closing scans) -------
    def register(self, scan: Scan) -> Scan:
        self._open.setdefault(scan.txn_id, {})[id(scan)] = scan
        return scan

    def unregister(self, scan: Scan) -> None:
        scans = self._open.get(scan.txn_id)
        if scans is not None:
            scans.pop(id(scan), None)

    def open_scans(self, txn_id: int) -> Tuple[Scan, ...]:
        return tuple(self._open.get(txn_id, {}).values())

    # -- event reactions ------------------------------------------------------------
    def _on_txn_end(self, txn_id: int, info: dict) -> None:
        for scan in self._open.pop(txn_id, {}).values():
            if not scan.closed:
                scan.close()
        for key in [k for k in self._saved if k[0] == txn_id]:
            del self._saved[key]

    def _on_savepoint_set(self, txn_id: int, info: dict) -> None:
        name = info["name"]
        captured = [(scan, scan.save_position())
                    for scan in self._open.get(txn_id, {}).values()
                    if not scan.closed]
        self._saved[(txn_id, name)] = captured

    def _on_savepoint_rollback(self, txn_id: int, info: dict) -> None:
        name = info["name"]
        key = (txn_id, name)
        if key not in self._saved:
            return
        for scan, position in self._saved[key]:
            if not scan.closed:
                scan.restore_position(position)
        # Positions are retained until the savepoint is cancelled or used;
        # a rollback *uses* it (and implicitly cancels deeper savepoints,
        # which the transaction manager reports separately).

    def cancel_savepoint(self, txn_id: int, name: str) -> None:
        self._saved.pop((txn_id, name), None)
