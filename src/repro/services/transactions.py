"""Transaction management: begin/commit/abort, savepoints, prepared state.

Coordinates the common services on the paper's transaction events:

* **commit** — drain the "before the transaction enters the prepared state"
  deferred-action queue (deferred integrity constraints may veto here and
  abort the transaction), enter PREPARED, force the log through the COMMIT
  record, run at-commit deferred actions (e.g. the deferred release of
  dropped relation storage), release all locks, and notify end-of-
  transaction listeners (the scan service closes open scans).
* **abort** — drive the log-based rollback of every operation, then release
  locks and notify listeners.
* **savepoints** — write a SAVEPOINT record, let the scan service capture
  key-sequential positions (their changes are not logged), and on partial
  rollback drive the undo back to the savepoint LSN and restore positions.

Group commit: with ``group_commit_limit`` set, commits *enqueue* their
COMMIT record instead of forcing the log one transaction at a time; one
flush (:meth:`TransactionManager.commit_group`, or the automatic flush
when the queue reaches the limit) stabilizes the whole batch.  Until that
flush, the enqueued commits are not yet durable — a crash loses them and
restart rolls them back — which is the standard deferred-durability
window group commit trades for an N-fold reduction in log forces.
Transactions with at-commit deferred actions (e.g. the deferred release
of dropped storage) never join a group: their commit must be durable
before the externalized release runs.
"""

from __future__ import annotations

import enum
from typing import Dict, Optional

from ..errors import TransactionError
from . import events as ev
from . import wal as wal_records
from .events import EventService
from .locks import LockManager
from .recovery import RecoveryManager
from .scans import ScanService
from .wal import LogManager

__all__ = ["TxnState", "Transaction", "TransactionManager"]


class TxnState(enum.Enum):
    ACTIVE = "active"
    PREPARED = "prepared"
    COMMITTED = "committed"
    ABORTED = "aborted"


class Transaction:
    """A transaction handle.  All state changes go through the manager."""

    def __init__(self, txn_id: int):
        self.txn_id = txn_id
        self.state = TxnState.ACTIVE
        self.savepoints: Dict[str, int] = {}     # name -> SAVEPOINT record LSN
        self._savepoint_order: list = []
        #: Per-transaction modification-operation sequence.  The dispatch
        #: layer derives operation-savepoint names from (txn id, this
        #: counter), so nested and cascaded operations in the same
        #: transaction get unique names without any global state.
        self.op_seq = 0

    @property
    def active(self) -> bool:
        return self.state is TxnState.ACTIVE

    @property
    def settled(self) -> bool:
        """Whether the outcome is decided (committed or aborted).

        A transaction that failed *between* states — e.g. a log-flush
        error during commit left it PREPARED — is not settled and must be
        resolved (aborted) by whoever observes the failure, or its applied
        changes and held locks leak past the error.
        """
        return self.state in (TxnState.COMMITTED, TxnState.ABORTED)

    def check_active(self) -> None:
        if self.state is not TxnState.ACTIVE:
            raise TransactionError(
                f"transaction {self.txn_id} is {self.state.value}, not active")

    def __repr__(self) -> str:
        return f"Transaction(id={self.txn_id}, {self.state.value})"


class TransactionManager:
    """Owns transaction identity and the commit/abort/savepoint protocols."""

    def __init__(self, wal: LogManager, recovery: RecoveryManager,
                 locks: LockManager, events: EventService,
                 scans: Optional[ScanService] = None, stats=None):
        self.wal = wal
        self.recovery = recovery
        self.locks = locks
        self.events = events
        self.scans = scans
        self.stats = stats
        self._next_id = 1
        self._active: Dict[int, Transaction] = {}
        #: Group commit: 0 disables (every commit forces the log solo);
        #: N > 0 enqueues commits and auto-flushes once N are pending.
        self.group_commit_limit = 0
        self._group_queue: list = []  # pending COMMIT record LSNs

    # -- lifecycle -------------------------------------------------------------
    def begin(self) -> Transaction:
        txn = Transaction(self._next_id)
        self._next_id += 1
        self._active[txn.txn_id] = txn
        self.wal.append(txn.txn_id, wal_records.BEGIN)
        return txn

    def commit(self, txn: Transaction) -> None:
        """Commit; a veto from a deferred action aborts instead."""
        txn.check_active()
        try:
            # Deferred integrity constraints run here and may veto.
            self.events.fire(txn.txn_id, ev.BEFORE_PREPARE)
        except Exception:
            self.abort(txn)
            raise
        txn.state = TxnState.PREPARED
        record = self.wal.append(txn.txn_id, wal_records.COMMIT)
        # Commit is durable once the log is stable through the COMMIT
        # record.  At-commit deferred actions externalize state (deferred
        # storage release), so their transactions always force solo.
        if (self.group_commit_limit > 0
                and not self.events.pending(txn.txn_id, ev.AT_COMMIT)):
            self._group_queue.append(record.lsn)
            if self.stats is not None:
                self.stats.bump("txn.group_commit.enqueued")
            if len(self._group_queue) >= self.group_commit_limit:
                self.commit_group()
        else:
            self.wal.flush()
        self.events.fire(txn.txn_id, ev.AT_COMMIT)
        self.wal.append(txn.txn_id, wal_records.END)
        self.locks.release_all(txn.txn_id)
        txn.state = TxnState.COMMITTED
        self.events.fire(txn.txn_id, ev.AT_END)
        self._active.pop(txn.txn_id, None)

    def abort(self, txn: Transaction) -> None:
        if txn.state in (TxnState.COMMITTED, TxnState.ABORTED):
            raise TransactionError(
                f"transaction {txn.txn_id} already {txn.state.value}")
        self.wal.append(txn.txn_id, wal_records.ABORT)
        self.recovery.rollback(txn.txn_id, to_lsn=0)
        self.wal.append(txn.txn_id, wal_records.END)
        # Force the log through the END record: without this, a crash
        # right after a "completed" abort loses the CLR/ABORT/END chain
        # and restart must redo and then re-undo the whole transaction.
        self.wal.flush()
        # Deferred actions never run for an aborted transaction.
        self.events.discard(txn.txn_id)
        try:
            self.events.fire(txn.txn_id, ev.AT_ABORT)
        finally:
            self.locks.release_all(txn.txn_id)
            txn.state = TxnState.ABORTED
            self.events.fire(txn.txn_id, ev.AT_END)
            self._active.pop(txn.txn_id, None)

    # -- group commit -----------------------------------------------------------------
    def commit_group(self) -> int:
        """Stabilize every enqueued commit with one log flush.

        Returns the number of commits made durable by this flush.  Commits
        whose LSN some other log force already covered (an abort, a
        checkpoint, a solo commit) are pruned without another flush.
        """
        pending = [lsn for lsn in self._group_queue
                   if lsn > self.wal.flushed_lsn]
        self._group_queue.clear()
        if not pending:
            return 0
        self.wal.flush(max(pending))
        if self.stats is not None:
            self.stats.bump("txn.group_commit.flushes")
            self.stats.bump("txn.group_commit.stabilized", len(pending))
        return len(pending)

    def pending_group_commits(self) -> int:
        """Commits enqueued but not yet durable (crash would lose them)."""
        return sum(1 for lsn in self._group_queue
                   if lsn > self.wal.flushed_lsn)

    # -- savepoints -----------------------------------------------------------------
    def savepoint(self, txn: Transaction, name: str) -> int:
        """Establish a rollback point; returns its LSN."""
        txn.check_active()
        if name in txn.savepoints:
            raise TransactionError(f"savepoint {name!r} already exists")
        record = self.wal.append(txn.txn_id, wal_records.SAVEPOINT,
                                 payload={"name": name})
        if self.stats is not None:
            self.stats.bump("txn.savepoints_set")
        txn.savepoints[name] = record.lsn
        txn._savepoint_order.append(name)
        # Scan positions are captured now (their changes are not logged).
        self.events.fire(txn.txn_id, ev.SAVEPOINT_SET, name=name)
        return record.lsn

    def rollback_to(self, txn: Transaction, name: str) -> int:
        """Partial rollback to a savepoint; returns operations undone.

        Savepoints established after ``name`` are cancelled; ``name`` itself
        survives and can be rolled back to again (SQL semantics).
        """
        txn.check_active()
        if name not in txn.savepoints:
            raise TransactionError(f"no savepoint named {name!r}")
        undone = self.recovery.rollback(txn.txn_id, to_lsn=txn.savepoints[name])
        self.events.fire(txn.txn_id, ev.SAVEPOINT_ROLLBACK, name=name)
        # Cancel savepoints nested inside the one we rolled back to.
        while txn._savepoint_order and txn._savepoint_order[-1] != name:
            inner = txn._savepoint_order.pop()
            del txn.savepoints[inner]
            if self.scans is not None:
                self.scans.cancel_savepoint(txn.txn_id, inner)
        return undone

    def release_savepoint(self, txn: Transaction, name: str) -> None:
        """Cancel a savepoint (its retained scan positions are dropped)."""
        txn.check_active()
        if name not in txn.savepoints:
            raise TransactionError(f"no savepoint named {name!r}")
        # Releasing an outer savepoint releases the ones nested inside it.
        index = txn._savepoint_order.index(name)
        for inner in txn._savepoint_order[index:]:
            del txn.savepoints[inner]
            if self.scans is not None:
                self.scans.cancel_savepoint(txn.txn_id, inner)
        del txn._savepoint_order[index:]

    # -- introspection ------------------------------------------------------------------
    def active_transactions(self) -> tuple:
        return tuple(self._active.values())

    def get(self, txn_id: int) -> Optional[Transaction]:
        return self._active.get(txn_id)
