"""Transaction management: begin/commit/abort, savepoints, prepared state.

Coordinates the common services on the paper's transaction events:

* **commit** — drain the "before the transaction enters the prepared state"
  deferred-action queue (deferred integrity constraints may veto here and
  abort the transaction), enter PREPARED, force the log through the COMMIT
  record, run at-commit deferred actions (e.g. the deferred release of
  dropped relation storage), release all locks, and notify end-of-
  transaction listeners (the scan service closes open scans).
* **abort** — drive the log-based rollback of every operation, then release
  locks and notify listeners.
* **savepoints** — write a SAVEPOINT record, let the scan service capture
  key-sequential positions (their changes are not logged), and on partial
  rollback drive the undo back to the savepoint LSN and restore positions.

Group commit: with ``group_commit_limit`` set, commits *enqueue* their
COMMIT record instead of forcing the log one transaction at a time; one
flush (:meth:`TransactionManager.commit_group`, or the automatic flush
when the queue reaches the limit) stabilizes the whole batch.  Until that
flush, the enqueued commits are not yet durable — a crash loses them and
restart rolls them back — which is the standard deferred-durability
window group commit trades for an N-fold reduction in log forces.
Transactions with at-commit deferred actions (e.g. the deferred release
of dropped storage) never join a group: their commit must be durable
before the externalized release runs.

Multi-version reads: ``begin(snapshot=True)`` starts a read-only
transaction under snapshot isolation.  It captures a :class:`Snapshot`
(the current end of log + the set of then-active writers) and resolves
every read at the scan boundary by patching current storage state with
the undo images writers produce anyway (:class:`VersionStore`).  A
record version is visible iff its writer's COMMIT record LSN is at or
below the snapshot LSN.  Snapshot readers take no locks and write no
log records — they neither block nor are blocked by the lock-based
writer/serializable mode, which is unchanged.
"""

from __future__ import annotations

import enum
from typing import Dict, FrozenSet, List, Optional

from ..errors import (GatewayError, ReadOnlyTransactionError, SnapshotError,
                      TransactionError)
from . import events as ev
from . import wal as wal_records
from .events import EventService
from .locks import LockManager, LockMode
from .recovery import RecoveryManager
from .scans import ABSENT, ScanService
from .wal import LogManager

__all__ = ["TxnState", "Transaction", "TransactionManager",
           "TwoPhaseCoordinator", "Snapshot", "VersionStore", "ABSENT"]


class Snapshot:
    """A consistent read point: begin LSN + the then-active writer set.

    Visibility is decided purely from commit LSNs (see
    :meth:`TransactionManager.snapshot_patch`): the active set is carried
    for introspection and diagnostics — any member that later commits
    necessarily does so above ``lsn``, so the LSN rule subsumes it.
    """

    __slots__ = ("snapshot_id", "lsn", "active_ids", "owner_txn_id",
                 "invalidated")

    def __init__(self, snapshot_id: int, lsn: int,
                 active_ids: FrozenSet[int], owner_txn_id: int):
        self.snapshot_id = snapshot_id
        self.lsn = lsn
        self.active_ids = active_ids
        self.owner_txn_id = owner_txn_id
        #: Set at restart: undo images are volatile, so a snapshot taken
        #: before a crash cannot reconstruct its read point afterwards.
        self.invalidated = False

    def check_valid(self) -> None:
        if self.invalidated:
            raise SnapshotError(
                f"snapshot {self.snapshot_id} (LSN {self.lsn}) spanned a "
                f"restart and can no longer serve reads")

    def __repr__(self) -> str:
        return (f"Snapshot(id={self.snapshot_id}, lsn={self.lsn}, "
                f"active={sorted(self.active_ids)})")


class _Version:
    """One record transition: ``before`` is the undo image (ABSENT for an
    insert), tagged with the writing transaction and its log LSN."""

    __slots__ = ("lsn", "txn_id", "key", "before", "cancelled")

    def __init__(self, lsn: int, txn_id: int, key, before):
        self.lsn = lsn
        self.txn_id = txn_id
        self.key = key
        self.before = before
        self.cancelled = False


class VersionStore:
    """In-memory index over the WAL's undo images, keyed by relation.

    The store is volatile by design — it only has to cover the window a
    live snapshot can see, which never spans a restart.  Entries are
    cancelled (not removed) when a rollback undoes their operations —
    mirroring the CLR chain — and reclaimed once no live or future
    snapshot could need them.
    """

    def __init__(self, stats=None):
        self.stats = stats
        self._by_relation: Dict[int, List[_Version]] = {}
        self._by_txn: Dict[int, List[_Version]] = {}

    def note(self, lsn: int, txn_id: int, relation_id: int,
             transitions) -> None:
        """Record ``(key, before_image)`` transitions for one operation."""
        relation_entries = self._by_relation.setdefault(relation_id, [])
        txn_entries = self._by_txn.setdefault(txn_id, [])
        count = 0
        for key, before in transitions:
            entry = _Version(lsn, txn_id, key, before)
            relation_entries.append(entry)
            txn_entries.append(entry)
            count += 1
        if count and self.stats is not None:
            self.stats.bump("mvcc.versions_noted", count)

    def cancel(self, txn_id: int, above_lsn: int) -> int:
        """Cancel the transaction's transitions with LSN > ``above_lsn``.

        A partial rollback to a savepoint (or a total rollback with
        ``above_lsn=0``) physically restores the before-images, so the
        cancelled transitions never happened as far as any snapshot is
        concerned.  Returns how many transitions were cancelled.
        """
        cancelled = 0
        for entry in self._by_txn.get(txn_id, ()):
            if entry.lsn > above_lsn and not entry.cancelled:
                entry.cancelled = True
                cancelled += 1
        return cancelled

    def patch(self, snapshot: Snapshot, relation_id: int,
              commit_lsns: Dict[int, int]) -> dict:
        """The rewind patch for one relation under ``snapshot``.

        Returns ``{record_key: snapshot_image}`` where the image is the
        record as the snapshot must see it, or :data:`ABSENT` when the
        snapshot must not see the key at all.  Keys absent from the patch
        are read as-is from current storage.

        Walks the relation's transitions newest-first.  Per key, the
        invisible transitions always form a suffix of the key's history
        (writers serialize on record X locks, so a key's writers commit
        in LSN order); the walk keeps overwriting a key's patch with
        ever-older before-images until it meets a visible transition,
        which finalises the key.
        """
        patch: dict = {}
        final = set()
        lsn_bound = snapshot.lsn
        for entry in reversed(self._by_relation.get(relation_id, ())):
            if entry.cancelled:
                continue
            key = entry.key
            if key in final:
                continue
            commit_lsn = commit_lsns.get(entry.txn_id)
            if commit_lsn is not None and commit_lsn <= lsn_bound:
                # Visible: this transition's after-state is what the
                # snapshot sees.  If newer invisible transitions put a
                # before-image in the patch, that image *is* this
                # after-state — keep it; either way the key is decided.
                final.add(key)
                continue
            patch[key] = entry.before
        return patch

    def reclaim(self, commit_lsns: Dict[int, int], active_txn_ids,
                min_snapshot_lsn: Optional[int]) -> int:
        """Drop entries no live (or future) snapshot could need.

        An entry survives if its writer is still active (a future
        snapshot will carry it in its active set and need the undo
        image), or committed above the oldest live snapshot's LSN.
        Cancelled entries and entries of settled transactions below the
        horizon are reclaimed.  Returns how many entries were dropped.
        """
        active = set(active_txn_ids)

        def needed(entry: _Version) -> bool:
            if entry.cancelled:
                return False
            if entry.txn_id in active:
                return True
            commit_lsn = commit_lsns.get(entry.txn_id)
            if commit_lsn is None:
                return False  # aborted: transitions already cancelled
            return (min_snapshot_lsn is not None
                    and commit_lsn > min_snapshot_lsn)

        dropped = 0
        for relation_id in list(self._by_relation):
            entries = self._by_relation[relation_id]
            kept = [e for e in entries if needed(e)]
            dropped += len(entries) - len(kept)
            if kept:
                self._by_relation[relation_id] = kept
            else:
                del self._by_relation[relation_id]
        for txn_id in list(self._by_txn):
            kept = [e for e in self._by_txn[txn_id] if needed(e)]
            if kept:
                self._by_txn[txn_id] = kept
            else:
                del self._by_txn[txn_id]
        if dropped and self.stats is not None:
            self.stats.bump("mvcc.versions_reclaimed", dropped)
        return dropped

    def clear(self) -> None:
        """Forget everything (restart: undo images are volatile)."""
        self._by_relation.clear()
        self._by_txn.clear()

    def __len__(self) -> int:
        return sum(len(v) for v in self._by_relation.values())


class TxnState(enum.Enum):
    ACTIVE = "active"
    PREPARED = "prepared"
    COMMITTED = "committed"
    ABORTED = "aborted"


class Transaction:
    """A transaction handle.  All state changes go through the manager."""

    def __init__(self, txn_id: int):
        self.txn_id = txn_id
        self.state = TxnState.ACTIVE
        #: Global transaction id when this transaction is a two-phase-
        #: commit participant: set by :meth:`TransactionManager.prepare`,
        #: durable in the PREPARE record, and how a remote coordinator
        #: addresses the transaction after a restart.
        self.gtid: Optional[str] = None
        #: Set for read-only (snapshot-isolated) transactions: the
        #: consistent read point every read resolves against.  Writers
        #: (the lock-based serializable mode) leave it ``None``.
        self.snapshot: Optional[Snapshot] = None
        self.savepoints: Dict[str, int] = {}     # name -> SAVEPOINT record LSN
        self._savepoint_order: list = []
        #: Per-transaction modification-operation sequence.  The dispatch
        #: layer derives operation-savepoint names from (txn id, this
        #: counter), so nested and cascaded operations in the same
        #: transaction get unique names without any global state.
        self.op_seq = 0

    @property
    def active(self) -> bool:
        return self.state is TxnState.ACTIVE

    @property
    def read_only(self) -> bool:
        """Whether this is a snapshot (multi-version read) transaction."""
        return self.snapshot is not None

    @property
    def settled(self) -> bool:
        """Whether the outcome is decided (committed or aborted).

        A transaction that failed *between* states — e.g. a log-flush
        error during commit left it PREPARED — is not settled and must be
        resolved (aborted) by whoever observes the failure, or its applied
        changes and held locks leak past the error.
        """
        return self.state in (TxnState.COMMITTED, TxnState.ABORTED)

    def check_active(self) -> None:
        if self.state is not TxnState.ACTIVE:
            raise TransactionError(
                f"transaction {self.txn_id} is {self.state.value}, not active")

    def __repr__(self) -> str:
        return f"Transaction(id={self.txn_id}, {self.state.value})"


class TransactionManager:
    """Owns transaction identity and the commit/abort/savepoint protocols."""

    def __init__(self, wal: LogManager, recovery: RecoveryManager,
                 locks: LockManager, events: EventService,
                 scans: Optional[ScanService] = None, stats=None):
        self.wal = wal
        self.recovery = recovery
        self.locks = locks
        self.events = events
        self.scans = scans
        self.stats = stats
        self._next_id = 1
        self._active: Dict[int, Transaction] = {}
        #: Two-phase commit: gtid -> prepared (or enlisted) transaction,
        #: so a remote coordinator can address participants by global id.
        self._by_gtid: Dict[str, Transaction] = {}
        #: Heuristic decisions: gtid -> txn_id for in-doubt PREPARED
        #: participants this database unilaterally aborted (orderly
        #: shutdown with the coordinator's decision still unknown).  A
        #: redelivered commit decision consults this to detect the
        #: commit/abort mismatch instead of silently resolving nothing.
        self.heuristic_aborts: Dict[str, int] = {}
        #: Group commit: 0 disables (every commit forces the log solo);
        #: N > 0 enqueues commits and auto-flushes once N are pending.
        self.group_commit_limit = 0
        self._group_queue: list = []  # pending COMMIT record LSNs
        # -- multi-version read support --------------------------------
        #: Undo-image index the scan boundary patches reads with.
        self.versions = VersionStore(stats)
        #: txn_id -> COMMIT record LSN, stamped when COMMIT is appended.
        self._commit_lsns: Dict[int, int] = {}
        self._snapshots: Dict[int, Snapshot] = {}
        self._next_snapshot_id = 1

    # -- lifecycle -------------------------------------------------------------
    def begin(self, snapshot: bool = False) -> Transaction:
        """Start a transaction.

        With ``snapshot=True`` the transaction is read-only under snapshot
        isolation: it gets a consistent read point (the current end of
        log + the set of then-active writers), resolves every read
        against it at the scan boundary, and never takes locks or writes
        log records — so it neither blocks nor is blocked by writers.
        """
        txn = Transaction(self._next_id)
        self._next_id += 1
        self._active[txn.txn_id] = txn
        if snapshot:
            active_writers = frozenset(
                t.txn_id for t in self._active.values()
                if t.snapshot is None and t.txn_id != txn.txn_id)
            snap = Snapshot(self._next_snapshot_id, self.wal.current_lsn,
                            active_writers, txn.txn_id)
            self._next_snapshot_id += 1
            self._snapshots[snap.snapshot_id] = snap
            txn.snapshot = snap
            if self.stats is not None:
                self.stats.bump("txn.snapshots_begun")
        else:
            self.wal.append(txn.txn_id, wal_records.BEGIN)
        return txn

    def commit(self, txn: Transaction) -> None:
        """Commit; a veto from a deferred action aborts instead."""
        txn.check_active()
        if txn.snapshot is not None:
            self._finish_read_only(txn, TxnState.COMMITTED)
            return
        try:
            # Deferred integrity constraints run here and may veto.
            self.events.fire(txn.txn_id, ev.BEFORE_PREPARE)
        except Exception:
            self.abort(txn)
            raise
        txn.state = TxnState.PREPARED
        self._commit_prepared(txn, allow_group=True)

    def _commit_prepared(self, txn: Transaction, allow_group: bool) -> None:
        """The second half of commit: the transaction is PREPARED, its
        fate is decided — append COMMIT, stabilize, run at-commit actions,
        and settle.  Shared by the local one-phase :meth:`commit` and the
        coordinator-driven :meth:`commit_decided` (which never joins a
        group: the coordinator's decision must be durable immediately)."""
        record = self.wal.append(txn.txn_id, wal_records.COMMIT)
        # Visibility is decided by the COMMIT record's LSN: a snapshot
        # taken at LSN S sees exactly the writers whose COMMIT appended
        # at or below S.  Stamping here (before the flush) means commits
        # deferred by group commit are already visible to new snapshots —
        # visibility and durability are deliberately decoupled, exactly
        # the group-commit window documented above.
        self._commit_lsns[txn.txn_id] = record.lsn
        # Commit is durable once the log is stable through the COMMIT
        # record.  At-commit deferred actions externalize state (deferred
        # storage release), so their transactions always force solo.
        if (allow_group and self.group_commit_limit > 0
                and not self.events.pending(txn.txn_id, ev.AT_COMMIT)):
            self._group_queue.append(record.lsn)
            if self.stats is not None:
                self.stats.bump("txn.group_commit.enqueued")
            if len(self._group_queue) >= self.group_commit_limit:
                self.commit_group()
        else:
            self.wal.flush()
        self.events.fire(txn.txn_id, ev.AT_COMMIT)
        self.wal.append(txn.txn_id, wal_records.END)
        self.locks.release_all(txn.txn_id)
        txn.state = TxnState.COMMITTED
        self.events.fire(txn.txn_id, ev.AT_END)
        self._active.pop(txn.txn_id, None)
        if txn.gtid is not None:
            self._by_gtid.pop(txn.gtid, None)

    # -- two-phase commit: the participant API -----------------------------------
    def prepare(self, txn: Transaction, gtid: str) -> None:
        """Phase-1 vote: enter PREPARED and force the log.

        Runs the before-prepare deferred actions (a veto aborts, exactly
        as in one-phase commit), writes a PREPARE record carrying the
        global transaction id, and forces the log through it — after a
        successful return the vote is durable: a crash leaves the
        transaction *in doubt*, holding its changes until the coordinator
        decides (:meth:`commit_decided` / :meth:`abort_decided`), never
        rolled back unilaterally by restart.
        """
        txn.check_active()
        if txn.snapshot is not None:
            raise ReadOnlyTransactionError(
                f"transaction {txn.txn_id} is a snapshot reader; read-only "
                f"participants commit in one phase instead of preparing")
        if gtid in self._by_gtid and self._by_gtid[gtid] is not txn:
            raise TransactionError(
                f"global transaction id {gtid!r} is already in use")
        try:
            self.events.fire(txn.txn_id, ev.BEFORE_PREPARE)
        except Exception:
            self.abort(txn)
            raise
        txn.state = TxnState.PREPARED
        txn.gtid = gtid
        self._by_gtid[gtid] = txn
        self.wal.append(txn.txn_id, wal_records.PREPARE,
                        payload={"gtid": gtid})
        self.wal.flush()
        if self.stats is not None:
            self.stats.bump("txn.prepares")

    def commit_decided(self, txn: Transaction) -> None:
        """Phase-2 commit of a PREPARED participant (coordinator said yes)."""
        if txn.state is not TxnState.PREPARED:
            raise TransactionError(
                f"transaction {txn.txn_id} is {txn.state.value}; only a "
                f"prepared transaction can receive a commit decision")
        self._commit_prepared(txn, allow_group=False)
        if self.stats is not None:
            self.stats.bump("txn.2pc.commits_decided")

    def abort_decided(self, txn: Transaction) -> None:
        """Phase-2 abort of a PREPARED participant (presumed abort)."""
        if txn.state is not TxnState.PREPARED:
            raise TransactionError(
                f"transaction {txn.txn_id} is {txn.state.value}; only a "
                f"prepared transaction can receive an abort decision")
        self.abort(txn)
        if self.stats is not None:
            self.stats.bump("txn.2pc.aborts_decided")

    def find_gtid(self, gtid: str) -> Optional[Transaction]:
        """The live transaction enlisted under ``gtid`` (None if settled)."""
        return self._by_gtid.get(gtid)

    def tag_gtid(self, txn: Transaction, gtid: str) -> None:
        """Index an active transaction by global id before it prepares,
        so a coordinator can find (and presumed-abort) it even when the
        failure happens before phase 1."""
        if gtid in self._by_gtid and self._by_gtid[gtid] is not txn:
            raise TransactionError(
                f"global transaction id {gtid!r} is already in use")
        txn.gtid = gtid
        self._by_gtid[gtid] = txn

    def register_indoubt(self, txn_id: int, gtid: Optional[str]) -> Transaction:
        """Re-admit an in-doubt transaction found by restart analysis.

        The transaction re-enters the active table in PREPARED state (its
        effects were redone from the log; restart undo skipped it) and is
        addressable by its global id, awaiting the coordinator's decision.
        The record locks its operations held are re-acquired: without
        them a post-restart transaction could overwrite a record the
        in-doubt transaction wrote, and a later abort decision would roll
        the newer committed write back with the stale before-image.
        """
        txn = Transaction(txn_id)
        txn.state = TxnState.PREPARED
        txn.gtid = gtid
        self._active[txn_id] = txn
        if gtid is not None:
            self._by_gtid[gtid] = txn
        self._next_id = max(self._next_id, txn_id + 1)
        self._relock_indoubt(txn)
        if self.stats is not None:
            self.stats.bump("txn.indoubt.registered")
        return txn

    def _relock_indoubt(self, txn: Transaction) -> None:
        """Re-acquire the X record locks an in-doubt participant held.

        Lock state is volatile, but the stable PREPARE vote means the
        transaction's writes stay pending until the coordinator decides.
        Walks the transaction's retained log chain (truncation always
        keeps active transactions' records) and asks each operation's
        recovery handler which records it had locked.  CLRs are included:
        under strict two-phase locking a compensated operation's locks
        were still held, so re-locking them is conservative, never wrong.
        No conflict is possible here — restart just reset the lock table
        and in-doubt transactions' writes were X-serialized originally.
        """
        relocked = 0
        lsn = self.wal.last_lsn(txn.txn_id)
        while lsn:
            record = self.wal.record(lsn)
            if record.kind in (wal_records.UPDATE, wal_records.CLR):
                handler = self.recovery.handler(record.resource)
                for relation_id, key in handler.locked_records(record.payload):
                    self.locks.acquire(txn.txn_id, ("rel", relation_id),
                                       LockMode.IX)
                    self.locks.acquire(txn.txn_id, ("rec", relation_id, key),
                                       LockMode.X)
                    relocked += 1
            lsn = record.prev_lsn
        if relocked and self.stats is not None:
            self.stats.bump("txn.indoubt.locks_reacquired", relocked)

    def indoubt_transactions(self) -> tuple:
        """Active transactions sitting in PREPARED state under a gtid."""
        return tuple(t for t in self._active.values()
                     if t.state is TxnState.PREPARED and t.gtid is not None)

    def heuristic_abort(self, txn: Transaction) -> None:
        """Unilaterally abort an in-doubt PREPARED participant.

        Orderly shutdown is this database's heuristic decision point: the
        limbo must drain, but the vote bound this transaction to the
        coordinator's decision — which may turn out to have been a
        durably logged COMMIT that simply never arrived.  The gtid is
        remembered (and the ABORT record marked, so restart analysis can
        rebuild the memory) so a later redelivery of the decision detects
        and reports the commit/abort mismatch instead of silently
        resolving nothing.
        """
        if txn.state is not TxnState.PREPARED:
            raise TransactionError(
                f"transaction {txn.txn_id} is {txn.state.value}; only a "
                f"prepared transaction can be heuristically aborted")
        gtid = txn.gtid
        self.abort(txn, heuristic=True)
        if gtid is not None:
            self.heuristic_aborts[gtid] = txn.txn_id
        if self.stats is not None:
            self.stats.bump("txn.2pc.heuristic_aborts")

    def abort(self, txn: Transaction, heuristic: bool = False) -> None:
        if txn.state in (TxnState.COMMITTED, TxnState.ABORTED):
            raise TransactionError(
                f"transaction {txn.txn_id} already {txn.state.value}")
        if txn.snapshot is not None:
            self._finish_read_only(txn, TxnState.ABORTED)
            return
        # A commit that failed between the COMMIT append and the flush is
        # being resolved here: withdraw its visibility stamp first.
        self._commit_lsns.pop(txn.txn_id, None)
        payload = None
        if heuristic and txn.gtid is not None:
            payload = {"heuristic": True, "gtid": txn.gtid}
        self.wal.append(txn.txn_id, wal_records.ABORT, payload=payload)
        self.recovery.rollback(txn.txn_id, to_lsn=0)
        # The rollback restored every before-image, so the transaction's
        # transitions never happened as far as any snapshot is concerned.
        self.versions.cancel(txn.txn_id, above_lsn=0)
        self.wal.append(txn.txn_id, wal_records.END)
        # Force the log through the END record: without this, a crash
        # right after a "completed" abort loses the CLR/ABORT/END chain
        # and restart must redo and then re-undo the whole transaction.
        self.wal.flush()
        # Deferred actions never run for an aborted transaction.
        self.events.discard(txn.txn_id)
        try:
            self.events.fire(txn.txn_id, ev.AT_ABORT)
        finally:
            self.locks.release_all(txn.txn_id)
            txn.state = TxnState.ABORTED
            if txn.gtid is not None:
                self._by_gtid.pop(txn.gtid, None)
            self.events.fire(txn.txn_id, ev.AT_END)
            self._active.pop(txn.txn_id, None)

    def _finish_read_only(self, txn: Transaction, state: TxnState) -> None:
        """End a snapshot transaction: no log records, no flush.

        A snapshot transaction holds no locks and wrote nothing, so
        commit and abort are the same cheap operation — release the read
        point, close its scans, and reclaim versions nothing needs.
        """
        self.events.discard(txn.txn_id)
        try:
            self.events.fire(txn.txn_id, ev.AT_END)  # scan service closes scans
        finally:
            snap = txn.snapshot
            self._snapshots.pop(snap.snapshot_id, None)
            txn.state = state
            self._active.pop(txn.txn_id, None)
            self._reclaim_versions()
            if self.stats is not None:
                self.stats.bump("txn.read_only_finished")

    # -- multi-version reads ----------------------------------------------------------
    def snapshot_patch(self, snapshot: Snapshot, relation_id: int) -> dict:
        """The rewind patch one relation needs under ``snapshot``
        (see :meth:`VersionStore.patch`)."""
        snapshot.check_valid()
        return self.versions.patch(snapshot, relation_id, self._commit_lsns)

    def note_versions(self, txn: Transaction, relation_id: int,
                      transitions) -> None:
        """Record a writer's ``(key, before_image)`` transitions.

        Called by the dispatch layer right after the storage method
        applied (and logged) one operation; the current end of log tags
        the transitions so savepoint rollbacks cancel exactly the ones
        above the savepoint LSN.
        """
        self.versions.note(self.wal.current_lsn, txn.txn_id, relation_id,
                           transitions)

    def commit_lsn(self, txn_id: int) -> Optional[int]:
        """The COMMIT record LSN stamped for ``txn_id`` (None if not
        committed or already pruned)."""
        return self._commit_lsns.get(txn_id)

    def oldest_snapshot_lsn(self) -> Optional[int]:
        if not self._snapshots:
            return None
        return min(s.lsn for s in self._snapshots.values())

    def live_snapshots(self) -> tuple:
        return tuple(self._snapshots.values())

    def _reclaim_versions(self) -> None:
        self.versions.reclaim(self._commit_lsns, self._active.keys(),
                              self.oldest_snapshot_lsn())
        # Prune commit stamps nothing references any more: a stamp is
        # only consulted for transitions still in the store.
        live = self.versions._by_txn
        for txn_id in [t for t in self._commit_lsns
                       if t not in live and t not in self._active]:
            del self._commit_lsns[txn_id]

    def invalidate_snapshots(self) -> None:
        """Restart boundary: undo images are volatile, so no snapshot
        taken before the crash can serve reads afterwards."""
        for snap in self._snapshots.values():
            snap.invalidated = True
        self._snapshots.clear()
        self.versions.clear()
        self._commit_lsns.clear()

    # -- group commit -----------------------------------------------------------------
    def commit_group(self) -> int:
        """Stabilize every enqueued commit with one log flush.

        Returns the number of commits made durable by this flush.  Commits
        whose LSN some other log force already covered (an abort, a
        checkpoint, a solo commit) are pruned without another flush.
        """
        pending = [lsn for lsn in self._group_queue
                   if lsn > self.wal.flushed_lsn]
        self._group_queue.clear()
        if not pending:
            return 0
        self.wal.flush(max(pending))
        if self.stats is not None:
            self.stats.bump("txn.group_commit.flushes")
            self.stats.bump("txn.group_commit.stabilized", len(pending))
        return len(pending)

    def pending_group_commits(self) -> int:
        """Commits enqueued but not yet durable (crash would lose them)."""
        return sum(1 for lsn in self._group_queue
                   if lsn > self.wal.flushed_lsn)

    # -- savepoints -----------------------------------------------------------------
    def savepoint(self, txn: Transaction, name: str) -> int:
        """Establish a rollback point; returns its LSN."""
        txn.check_active()
        if txn.snapshot is not None:
            raise ReadOnlyTransactionError(
                f"transaction {txn.txn_id} is a snapshot reader; savepoints "
                f"only apply to transactions that modify data")
        if name in txn.savepoints:
            raise TransactionError(f"savepoint {name!r} already exists")
        record = self.wal.append(txn.txn_id, wal_records.SAVEPOINT,
                                 payload={"name": name})
        if self.stats is not None:
            self.stats.bump("txn.savepoints_set")
        txn.savepoints[name] = record.lsn
        txn._savepoint_order.append(name)
        # Scan positions are captured now (their changes are not logged).
        self.events.fire(txn.txn_id, ev.SAVEPOINT_SET, name=name)
        return record.lsn

    def rollback_to(self, txn: Transaction, name: str) -> int:
        """Partial rollback to a savepoint; returns operations undone.

        Savepoints established after ``name`` are cancelled; ``name`` itself
        survives and can be rolled back to again (SQL semantics).
        """
        txn.check_active()
        if name not in txn.savepoints:
            raise TransactionError(f"no savepoint named {name!r}")
        undone = self.recovery.rollback(txn.txn_id, to_lsn=txn.savepoints[name])
        # The partial rollback restored before-images above the savepoint:
        # cancel exactly those transitions in the version store.
        self.versions.cancel(txn.txn_id, above_lsn=txn.savepoints[name])
        self.events.fire(txn.txn_id, ev.SAVEPOINT_ROLLBACK, name=name)
        # Cancel savepoints nested inside the one we rolled back to.
        while txn._savepoint_order and txn._savepoint_order[-1] != name:
            inner = txn._savepoint_order.pop()
            del txn.savepoints[inner]
            if self.scans is not None:
                self.scans.cancel_savepoint(txn.txn_id, inner)
        return undone

    def release_savepoint(self, txn: Transaction, name: str) -> None:
        """Cancel a savepoint (its retained scan positions are dropped)."""
        txn.check_active()
        if name not in txn.savepoints:
            raise TransactionError(f"no savepoint named {name!r}")
        # Releasing an outer savepoint releases the ones nested inside it.
        index = txn._savepoint_order.index(name)
        for inner in txn._savepoint_order[index:]:
            del txn.savepoints[inner]
            if self.scans is not None:
                self.scans.cancel_savepoint(txn.txn_id, inner)
        del txn._savepoint_order[index:]

    # -- introspection ------------------------------------------------------------------
    def active_transactions(self) -> tuple:
        return tuple(self._active.values())

    def get(self, txn_id: int) -> Optional[Transaction]:
        return self._active.get(txn_id)


class TwoPhaseCoordinator:
    """Drives N participants through presumed-abort two-phase commit.

    Participants implement a small protocol (duck-typed; the sharded
    storage method wraps each shard's child transaction in one):

    * ``wrote`` — whether the participant modified anything.  Read-only
      participants skip both phases entirely (the classic read-only
      optimization): they have nothing to make durable and nothing to
      undo, so the coordinator never prepares them.
    * ``prepare(gtid)`` — phase 1: vote by entering PREPARED with the
      vote forced to the participant's log.  Raising means *no*.
    * ``commit_decided()`` / ``abort_decided()`` — phase 2 delivery.
    * ``abort()`` — best-effort cleanup of a participant that may or may
      not have prepared (phase-1 failure paths); must be idempotent.

    The *decision record* is not written here: the caller logs it in the
    coordinator's own transaction (see ``log_decision``) so that its
    durability rides the coordinator's COMMIT force — stable decision and
    stable commit are one atomic event, which is what restart resolution
    keys off (decision survives → deliver commit; decision lost → the
    coordinator transaction is a loser and undo presumes abort).
    """

    def __init__(self, services):
        self.services = services

    def _bump(self, name: str, amount: int = 1) -> None:
        stats = getattr(self.services, "stats", None)
        if stats is not None:
            stats.bump(name, amount)

    # -- phase 1 ---------------------------------------------------------------
    def prepare_all(self, gtid: str, participants) -> list:
        """Collect votes; returns the prepared (write) participants.

        Read-only participants are skipped.  A failed vote aborts every
        participant already prepared (and best-effort aborts the rest),
        then re-raises — the caller's transaction aborts with it.
        """
        prepared = []
        voters = [p for p in participants if getattr(p, "wrote", True)]
        self._bump("txn.2pc.readonly_skips",
                   len(list(participants)) - len(voters))
        for participant in voters:
            try:
                participant.prepare(gtid)
            except Exception:
                self._bump("txn.2pc.votes_no")
                for other in voters:
                    try:
                        other.abort()
                    except GatewayError:
                        self._bump("txn.2pc.indoubt")
                    except Exception:
                        # Any other cleanup failure (e.g. a racing state
                        # change) must neither stop the remaining aborts
                        # nor mask the original vote failure; the
                        # participant stays unsettled, i.e. in doubt.
                        self._bump("txn.2pc.indoubt")
                        self._bump("txn.2pc.cleanup_failures")
                raise
            prepared.append(participant)
        self._bump("txn.2pc.prepared", len(prepared))
        return prepared

    # -- the decision record ---------------------------------------------------
    def log_decision(self, txn_id: int, resource: str, payload: dict):
        """Log the commit decision inside the coordinator's transaction.

        The record is an ordinary logical UPDATE for ``resource``; its
        *undo* is the presumed-abort path (the owning extension aborts
        the participants), so a coordinator crash before the decision is
        stable resolves to abort with no extra machinery.
        """
        self._bump("txn.2pc.decisions_logged")
        return self.services.recovery.log_update(txn_id, resource, payload)

    # -- phase 2 ---------------------------------------------------------------
    def deliver_commit(self, participants) -> list:
        """Deliver the commit decision; returns participants left in doubt.

        A delivery failure (the channel is down) does *not* fail the
        transaction — the decision is already durable — it leaves that
        participant prepared and in doubt, to be resolved when the peer
        (or the coordinator) restarts and re-reads the decision.
        """
        indoubt = []
        for participant in participants:
            try:
                participant.commit_decided()
            except GatewayError:
                indoubt.append(participant)
                self._bump("txn.2pc.indoubt")
        self._bump("txn.2pc.commits_delivered",
                   len(list(participants)) - len(indoubt))
        return indoubt

    def deliver_abort(self, participants) -> list:
        """Deliver the abort decision (presumed abort tolerates loss)."""
        indoubt = []
        for participant in participants:
            try:
                participant.abort()
            except GatewayError:
                indoubt.append(participant)
                self._bump("txn.2pc.indoubt")
        return indoubt
