"""Buffer pool.

Caches device pages in memory frames with pin/unpin accounting, LRU
replacement, and the write-ahead-logging protocol: before a dirty frame is
written back to the device, the log is forced up to the frame's
``page_lsn``.  The paper's common services let filter predicates be
evaluated "while the field values from the relation storage or access path
are still in the buffer pool" — storage methods and attachments here do
exactly that, operating on pinned :class:`~repro.services.pages.PageView`
objects.

A *crash* is simulated by discarding every frame without flushing; restart
recovery then rebuilds state from the device plus the stable prefix of the
log.

Recovery bookkeeping: every frame tracks its ``rec_lsn`` — the LSN of the
first update that dirtied it since it was last clean on the device.  The
dirty-page table (``dirty_page_table``) snapshots ``page_id -> rec_lsn``
for the fuzzy checkpoint, and ``min(rec_lsn)`` bounds where restart redo
must begin: everything below it is already reflected on the device.  The
candidate LSN is captured when a clean frame is pinned (before any log
record for the modification can exist), so the bound stays conservative
even for modifications in flight while a checkpoint runs.
"""

from __future__ import annotations

from collections import OrderedDict
from contextlib import contextmanager
from typing import Callable, Iterable, Optional

from ..errors import BufferError_, ChecksumError
from .disk import BlockDevice
from .pages import PageView, stamp_checksum, verify_checksum

__all__ = ["BufferPool"]


class _Frame:
    __slots__ = ("page_id", "data", "pin_count", "dirty", "prefetched",
                 "rec_lsn", "rec_candidate")

    def __init__(self, page_id: int, data: bytearray):
        self.page_id = page_id
        self.data = data
        self.pin_count = 0
        self.dirty = False
        self.prefetched = False
        #: LSN of the first update since the frame was last clean (0: clean).
        self.rec_lsn = 0
        #: Conservative floor for rec_lsn, captured when a clean frame is
        #: pinned — no log record of the pin's modifications can precede it.
        self.rec_candidate = 0


class BufferPool:
    """A fixed-capacity page cache over a :class:`BlockDevice`."""

    #: Misses on this many consecutive page ids trigger read-ahead.
    READAHEAD_RUN = 3
    #: Number of upcoming pages pre-installed per read-ahead trigger.
    READAHEAD_WINDOW = 8

    def __init__(self, device: BlockDevice, capacity: int = 256,
                 wal_flush: Optional[Callable[[int], None]] = None,
                 lsn_source: Optional[Callable[[], int]] = None):
        if capacity < 1:
            raise BufferError_("buffer pool needs at least one frame")
        self.device = device
        self.capacity = capacity
        self.stats = device.stats
        self._wal_flush = wal_flush
        self._lsn_source = lsn_source
        #: Optional fault injector (wired by SystemServices).
        self.faults = None
        # LRU order: least-recently-used frames at the front, so eviction
        # pops from the front instead of scanning every frame.
        self._frames: "OrderedDict[int, _Frame]" = OrderedDict()
        self._last_page = -2  # sequential-pattern detector state
        self._seq_run = 0

    def set_wal_flush(self, wal_flush: Callable[[int], None]) -> None:
        """Install the log-force hook (wired up after the WAL is created)."""
        self._wal_flush = wal_flush

    def set_lsn_source(self, lsn_source: Callable[[], int]) -> None:
        """Install the current-LSN probe used for rec_lsn tracking."""
        self._lsn_source = lsn_source

    def _next_lsn(self) -> int:
        """The lowest LSN any not-yet-written log record can get.

        With no LSN source wired (standalone pools in tests) this is 1,
        which degrades gracefully to "redo from the start of the log".
        """
        return (self._lsn_source() if self._lsn_source is not None else 0) + 1

    # -- pinning -------------------------------------------------------------
    def new_page(self, page_type: int) -> PageView:
        """Allocate a device page, format it, and return it pinned."""
        page_id = self.device.allocate()
        frame = self._install(page_id, bytearray(self.device.page_size))
        frame.pin_count += 1
        frame.dirty = True
        frame.rec_lsn = frame.rec_candidate = self._next_lsn()
        self.stats.bump("buffer.pins")
        return PageView.format(page_id, frame.data, page_type)

    def fetch(self, page_id: int) -> PageView:
        """Return a pinned view of the page, reading it if not cached."""
        frame = self._frames.get(page_id)
        if frame is None:
            self.stats.bump("buffer.misses")
            self._note_miss(page_id)
            frame = self._install(page_id, self._read_verified(page_id))
        else:
            self.stats.bump("buffer.hits")
            if frame.prefetched:
                frame.prefetched = False
                self.stats.bump("buffer.readahead.hits")
            self._frames.move_to_end(page_id)
        if frame.pin_count == 0 and not frame.dirty:
            # First pin of a clean frame: no log record of this pin's
            # modifications can exist yet, so the current log end bounds
            # the frame's eventual rec_lsn from below.
            frame.rec_candidate = self._next_lsn()
        frame.pin_count += 1
        self.stats.bump("buffer.pins")
        return PageView(page_id, frame.data)

    def prefetch(self, page_ids: Iterable[int]) -> int:
        """Pre-install pages without pinning them.

        Sequential scans call this with the pages they are about to touch,
        so the subsequent :meth:`fetch` calls hit in the pool.  Prefetch
        never evicts — pages are installed only while free frames remain —
        and silently skips pages already cached or not on the device.
        Returns the number of pages installed.
        """
        installed = 0
        for page_id in page_ids:
            if page_id in self._frames:
                continue
            if len(self._frames) >= self.capacity:
                self.stats.bump("buffer.readahead.skipped")
                break
            if not self.device.exists(page_id):
                continue
            raw = self.device.read(page_id)
            if not verify_checksum(raw):
                # Don't install a corrupt image speculatively; the demand
                # fetch of this page will raise the ChecksumError.
                self.stats.bump("buffer.checksum.prefetch_skipped")
                continue
            frame = _Frame(page_id, bytearray(raw))
            frame.prefetched = True
            self._frames[page_id] = frame
            installed += 1
        if installed:
            self.stats.bump("buffer.readahead.installed", installed)
        return installed

    def _note_miss(self, page_id: int) -> None:
        """Detect sequential miss patterns and read ahead of them."""
        if page_id == self._last_page + 1:
            self._seq_run += 1
            if self._seq_run >= self.READAHEAD_RUN:
                self.stats.bump("buffer.readahead.triggered")
                self.prefetch(range(page_id + 1,
                                    page_id + 1 + self.READAHEAD_WINDOW))
        else:
            self._seq_run = 0
        self._last_page = page_id

    def unpin(self, page_id: int, dirty: bool = False) -> None:
        frame = self._frames.get(page_id)
        if frame is None or frame.pin_count == 0:
            raise BufferError_(f"unpin of unpinned page {page_id}")
        frame.pin_count -= 1
        if dirty and not frame.dirty:
            frame.dirty = True
            frame.rec_lsn = frame.rec_candidate or self._next_lsn()

    @contextmanager
    def pinned(self, page_id: int, dirty: bool = False):
        """Context manager: pin a page, unpin on exit."""
        page = self.fetch(page_id)
        try:
            yield page
        finally:
            self.unpin(page_id, dirty)

    # -- flushing / lifecycle ---------------------------------------------------
    def flush_page(self, page_id: int) -> None:
        """Write one dirty page back (WAL-before-data enforced)."""
        frame = self._frames.get(page_id)
        if frame is not None and frame.dirty:
            self._write_back(frame)

    def flush_all(self) -> None:
        """Write every dirty page back (WAL-before-data enforced per page).

        Emptying the dirty-page table this way before a checkpoint gives
        the checkpoint the tightest possible redo bound — the background-
        writer role in ARIES terms.
        """
        for frame in list(self._frames.values()):
            if frame.dirty:
                self._write_back(frame)

    # -- recovery bookkeeping ----------------------------------------------------
    def dirty_page_table(self) -> dict:
        """Snapshot ``page_id -> rec_lsn`` for the fuzzy checkpoint.

        Pinned-but-clean frames are included with their candidate LSN: a
        modification may be in flight under the pin (logged but not yet
        marked dirty), and the candidate — captured before the pin could
        log anything — keeps the redo bound conservative.
        """
        table = {}
        for page_id, frame in self._frames.items():
            if frame.dirty:
                table[page_id] = frame.rec_lsn or 1
            elif frame.pin_count:
                table[page_id] = frame.rec_candidate or 1
        return table

    def min_rec_lsn(self) -> int:
        """The redo lower bound over the current dirty set (0: nothing dirty)."""
        table = self.dirty_page_table()
        return min(table.values()) if table else 0

    def free_page(self, page_id: int) -> None:
        """Drop a page from the pool and the device (must be unpinned)."""
        frame = self._frames.get(page_id)
        if frame is not None:
            if frame.pin_count:
                raise BufferError_(f"freeing pinned page {page_id}")
            del self._frames[page_id]
        self.device.free(page_id)

    def crash(self) -> None:
        """Simulate a crash: every frame is lost, nothing is flushed."""
        for frame in self._frames.values():
            if frame.pin_count:
                raise BufferError_(
                    f"page {frame.page_id} still pinned at crash — a storage "
                    "method leaked a pin")
        self._frames.clear()
        self.stats.bump("buffer.crashes")

    # -- internals -----------------------------------------------------------------
    def _install(self, page_id: int, data: bytearray) -> _Frame:
        if len(self._frames) >= self.capacity:
            self._evict()
        frame = _Frame(page_id, data)
        self._frames[page_id] = frame
        return frame

    def _evict(self) -> None:
        # The front of the LRU order is the least-recently-used frame;
        # pinned frames are skipped (there are at most #pins of them), so
        # eviction is O(1) amortised instead of a scan of every frame.
        victim = None
        for frame in self._frames.values():
            if frame.pin_count == 0:
                victim = frame
                break
        if victim is None:
            raise BufferError_(
                f"buffer pool exhausted: all {self.capacity} frames pinned")
        if victim.dirty:
            self._write_back(victim)
        del self._frames[victim.page_id]
        self.stats.bump("buffer.evictions")

    def _read_verified(self, page_id: int) -> bytearray:
        """Read a device page and verify its checksum before installing."""
        raw = self.device.read(page_id)
        if not verify_checksum(raw):
            self.stats.bump("buffer.checksum.failures")
            raise ChecksumError(
                f"page {page_id} failed checksum verification on fault-in "
                "(torn or corrupted on the device)")
        return bytearray(raw)

    def _write_back(self, frame: _Frame) -> None:
        # WAL-before-data: the log must be stable through the page's last
        # stamped LSN before the page bytes may reach the device.  This
        # holds on every write-back path — eviction, flush_page, flush_all.
        if self.faults is not None:
            self.faults.fire("buffer.write_back")
        if self._wal_flush is not None:
            page_lsn = PageView(frame.page_id, frame.data).page_lsn
            self._wal_flush(page_lsn)
        stamp_checksum(frame.data)
        self.device.write(frame.page_id, bytes(frame.data))
        frame.dirty = False
        frame.rec_lsn = 0
        # A frame flushed while pinned may still be modified under the pin;
        # re-arm the candidate so a later dirtying gets a fresh floor.
        frame.rec_candidate = self._next_lsn() if frame.pin_count else 0

    # -- introspection ----------------------------------------------------------------
    @property
    def cached_pages(self) -> int:
        return len(self._frames)

    def pin_count(self, page_id: int) -> int:
        frame = self._frames.get(page_id)
        return frame.pin_count if frame else 0

    def __repr__(self) -> str:
        return f"BufferPool({self.cached_pages}/{self.capacity} frames)"
