"""Log-driven rollback, fuzzy checkpointing, and bounded restart recovery.

The paper: "When a relation modification operation fails, for any reason,
the common recovery log is used to drive the storage method and attachment
implementations to undo the partial effects of the aborted relation
modification.  The same log-based driver also drives storage method and
attachment implementations during transaction abort and during system
restart recovery."

Extensions register a :class:`ResourceHandler` per resource name; the
driver walks the log and calls the handler's ``undo``/``redo``.  Undo
writes compensation records (CLRs) whose ``undo_next`` pointer skips the
compensated operation, so rollback is itself restartable and partial
rollback to a savepoint composes with a later full abort.

Restart cost is bounded by checkpoints, not log length.  A *fuzzy*
checkpoint (:meth:`RecoveryManager.checkpoint`) snapshots the active-
transaction table and the buffer pool's dirty-page table without flushing
a single data page; restart analysis starts at the master checkpoint and
redo starts at ``min(rec_lsn)`` over the checkpointed dirty pages — the
oldest update that could be missing from the device.  Everything below
the checkpoint's redo/undo point can be reclaimed with
``LogManager.truncate``.
"""

from __future__ import annotations

from typing import Dict, Set

from ..errors import RecoveryError
from . import wal as wal_records
from .wal import LogManager, LogRecord, SYSTEM_TXN

__all__ = ["ResourceHandler", "RecoveryManager"]

_CHECKPOINT_KINDS = (wal_records.CHECKPOINT_BEGIN, wal_records.CHECKPOINT_END)


class ResourceHandler:
    """Undo/redo callbacks for one extension's logged operations.

    Subclasses (one per recoverable storage method or attachment type)
    implement:

    * ``undo(services, payload, clr_lsn)`` — reverse the logged operation;
      pages touched must be stamped with ``clr_lsn``.
    * ``redo(services, lsn, payload)`` — re-apply the logged operation
      idempotently; page-based implementations skip pages whose
      ``page_lsn`` is already >= ``lsn`` (and count the skip under
      ``recovery.redo.skipped_page_lsn``).
    """

    def undo(self, services, payload: dict, clr_lsn: int) -> None:
        raise NotImplementedError

    def redo(self, services, lsn: int, payload: dict) -> None:
        raise NotImplementedError

    def before_redo(self, services, record) -> None:
        """Prepare restart redo for a loser transaction's operation.

        Called once per loser log record before the redo pass.  Most
        handlers need nothing here; logical resources whose forward
        action hides state that page-based redo depends on (e.g. a DROP
        that unhooks a relation's descriptor from the catalog) restore
        visibility so redo can resolve the pages.  The undo pass still
        performs the authoritative reversal afterwards.
        """

    def locked_records(self, payload: dict):
        """The ``(relation_id, record_key)`` pairs this logged operation
        holds X record locks on while its transaction is live.

        Restart uses this to re-acquire the locks of *in-doubt* PREPARED
        participants: lock state is volatile, but a stable vote binds the
        transaction to hold its writes until the coordinator decides, so
        the records it touched must stay locked across the restart.
        Handlers whose operations take no record locks (physical
        allocations, attachment maintenance — protected by the base
        relation's locks) keep the default empty answer.
        """
        return ()


class RecoveryManager:
    """The common rollback / checkpoint / restart driver over the shared log."""

    def __init__(self, wal: LogManager, services=None):
        self.wal = wal
        self.services = services  # injected after the service bundle exists
        self._handlers: Dict[str, ResourceHandler] = {}

    def register_handler(self, resource: str, handler: ResourceHandler) -> None:
        if resource in self._handlers:
            raise RecoveryError(f"handler for {resource!r} already registered")
        self._handlers[resource] = handler

    def handler(self, resource: str) -> ResourceHandler:
        try:
            return self._handlers[resource]
        except KeyError:
            raise RecoveryError(
                f"no recovery handler registered for resource {resource!r}"
            ) from None

    def _bump(self, name: str, amount: int = 1) -> None:
        stats = getattr(self.services, "stats", None)
        if stats is not None:
            stats.bump(name, amount)

    # -- logging entry point used by extensions ---------------------------------
    def log_update(self, txn_id: int, resource: str, payload: dict) -> LogRecord:
        """Append a logical operation record for a recoverable extension."""
        self.handler(resource)  # fail fast if nothing could ever undo it
        return self.wal.append(txn_id, wal_records.UPDATE, resource, payload)

    def log_update_batch(self, txn_id: int, resource: str,
                         payloads) -> list:
        """Append a group of logical operation records with one LSN range.

        One handler lookup and one log-manager call for the whole group —
        the set-at-a-time counterpart of :meth:`log_update`.
        """
        self.handler(resource)
        return self.wal.append_batch(txn_id, wal_records.UPDATE, resource,
                                     payloads)

    # -- rollback (partial or total) ------------------------------------------------
    def rollback(self, txn_id: int, to_lsn: int = 0) -> int:
        """Undo the transaction's operations with LSN > ``to_lsn``.

        ``to_lsn`` of a savepoint record gives partial rollback; 0 gives
        total rollback.  Returns the number of operations undone.
        """
        undone = 0
        lsn = self.wal.last_lsn(txn_id)
        while lsn > to_lsn:
            record = self.wal.record(lsn)
            if record.txn_id != txn_id:
                raise RecoveryError(
                    f"log chain corruption: LSN {lsn} belongs to txn "
                    f"{record.txn_id}, expected {txn_id}")
            if record.kind == wal_records.UPDATE:
                clr = self.wal.append(
                    txn_id, wal_records.CLR, record.resource,
                    dict(record.payload, compensates=record.lsn),
                    undo_next=record.prev_lsn)
                self.handler(record.resource).undo(
                    self.services, record.payload, clr.lsn)
                undone += 1
                lsn = record.prev_lsn
            elif record.kind == wal_records.CLR:
                lsn = record.undo_next  # skip what was already undone
            else:
                # BEGIN / SAVEPOINT / ABORT markers: nothing to undo.
                lsn = record.prev_lsn
        return undone

    # -- fuzzy checkpoint ---------------------------------------------------------------
    def checkpoint(self) -> dict:
        """Take a fuzzy checkpoint; returns its summary.

        The protocol writes CHECKPOINT_BEGIN, snapshots the active-
        transaction table (with each transaction's last and first LSN) and
        the buffer pool's dirty-page table, writes both into
        CHECKPOINT_END, forces the log, and only then advances the master
        pointer — so a crash anywhere inside the window falls back to the
        previous complete checkpoint.  No data page is flushed.

        The summary carries ``redo_lsn`` (where restart redo would begin)
        and ``truncatable_below`` (the safe log-truncation bound: nothing
        below it is needed for redo of the dirty pages *or* undo of the
        transactions active at the checkpoint).
        """
        wal = self.wal
        begin = wal.append(SYSTEM_TXN, wal_records.CHECKPOINT_BEGIN)
        att = {}
        transactions = getattr(self.services, "transactions", None)
        if transactions is not None:
            for txn in transactions.active_transactions():
                last = wal.last_lsn(txn.txn_id)
                if last:
                    kind = wal.record(last).kind
                    if kind in (wal_records.COMMIT, wal_records.END):
                        # The checkpoint can fire mid-commit (the trigger
                        # runs inside the COMMIT/END append, before the
                        # manager marks the transaction committed).  Its
                        # fate is already sealed in the log below this
                        # checkpoint — and stable, because the checkpoint
                        # flush covers every earlier record — so putting
                        # it in the ATT would make analysis call committed
                        # work a loser and undo it.
                        continue
                att[txn.txn_id] = {"state": txn.state.value,
                                   "gtid": txn.gtid,
                                   "last_lsn": last,
                                   "first_lsn": wal.first_lsn(txn.txn_id)}
        dpt = {}
        buffer = getattr(self.services, "buffer", None)
        if buffer is not None:
            dpt = buffer.dirty_page_table()
        end = wal.append(SYSTEM_TXN, wal_records.CHECKPOINT_END,
                         payload={"begin_lsn": begin.lsn, "att": att,
                                  "dpt": dpt})
        wal.flush()
        wal.set_master(begin.lsn)
        redo_lsn = min([begin.lsn] + list(dpt.values()))
        undo_lsn = min([first["first_lsn"] for first in att.values()
                        if first["first_lsn"]] or [begin.lsn])
        self._bump("recovery.checkpoints")
        return {"begin_lsn": begin.lsn, "end_lsn": end.lsn,
                "redo_lsn": redo_lsn,
                "truncatable_below": min(redo_lsn, undo_lsn),
                "dirty_pages": len(dpt), "active_transactions": len(att)}

    def _checkpoint_tables(self, master: int) -> tuple:
        """The (att, dpt) snapshots of the master checkpoint."""
        for record in self.wal.forward(master):
            if (record.kind == wal_records.CHECKPOINT_END
                    and record.payload.get("begin_lsn") == master):
                return (record.payload.get("att", {}),
                        record.payload.get("dpt", {}))
        # The master pointer is only advanced after CHECKPOINT_END is
        # stable, so this indicates log corruption rather than a torn
        # checkpoint window.
        raise RecoveryError(
            f"master checkpoint at LSN {master} has no CHECKPOINT_END")

    # -- restart recovery ---------------------------------------------------------------
    def restart(self) -> dict:
        """ARIES-style restart over the stable log prefix.

        The caller is responsible for having simulated the crash first
        (``wal.lose_unflushed()`` and ``buffer.crash()``).  Performs:

        1. *Analysis*: from the master checkpoint (or the oldest retained
           record when none exists), rebuild the loser set from the
           checkpointed active-transaction table plus the log tail.
        2. *Redo*: re-apply UPDATEs and CLRs from ``min(rec_lsn)`` over
           the checkpointed dirty-page table — bounded by dirty pages,
           not log length (handlers stay idempotent via page LSNs).
        3. *Undo*: roll back losers, writing CLRs, then ABORT/END records.

        Returns a summary dict for tests and benchmarks.
        """
        # Torn-page sweep before anything reads the device: pages whose
        # checksum fails are restored from the checkpoint archive (or
        # zero-filled when allocated after it); redo below reconstructs
        # every update the restored image is missing, because any update
        # absent from the archive either sits in the checkpointed DPT
        # (rec_lsn <= its LSN bounds redo) or postdates the checkpoint.
        repaired = {"restored": 0, "zero_filled": 0}
        disk = getattr(self.services, "disk", None)
        if disk is not None:
            repaired = disk.repair_corrupt_pages()
            self._bump("recovery.torn_pages.restored", repaired["restored"])
            self._bump("recovery.torn_pages.zero_filled",
                       repaired["zero_filled"])
        wal = self.wal
        master = wal.master_lsn
        att: Dict[int, dict] = {}
        dpt: Dict[int, int] = {}
        if master:
            att, dpt = self._checkpoint_tables(master)
        analysis_start = master if master else wal.oldest_lsn

        committed: Set[int] = set()
        ended: Set[int] = set()
        aborted: Set[int] = set()
        seen: Set[int] = set(att)
        # Two-phase participants: txn_id -> gtid for transactions whose
        # PREPARE vote is stable.  Seeded from the checkpointed ATT (a
        # checkpoint can postdate the PREPARE record).
        prepared: Dict[int, object] = {
            txn_id: info.get("gtid") for txn_id, info in att.items()
            if info.get("state") == "prepared" and info.get("gtid")}
        # Heuristic decisions: gtid -> txn_id for PREPARED participants
        # this database unilaterally aborted (orderly shutdown with the
        # coordinator's decision still unknown).  The marked ABORT record
        # survives so a redelivered commit decision can detect the
        # commit/abort mismatch instead of silently resolving nothing.
        heuristic: Dict[object, int] = {}
        analyzed = 0
        for record in wal.forward(analysis_start):
            analyzed += 1
            if record.kind in _CHECKPOINT_KINDS:
                continue
            seen.add(record.txn_id)
            if record.kind == wal_records.COMMIT:
                committed.add(record.txn_id)
            elif record.kind == wal_records.END:
                ended.add(record.txn_id)
            elif record.kind == wal_records.ABORT:
                aborted.add(record.txn_id)
                if record.payload and record.payload.get("heuristic") \
                        and record.payload.get("gtid"):
                    heuristic[record.payload["gtid"]] = record.txn_id
            elif record.kind == wal_records.PREPARE:
                prepared[record.txn_id] = record.payload.get("gtid")
        # A stable PREPARE without a decision leaves the transaction *in
        # doubt*: its vote binds this database, so restart must neither
        # commit nor undo it — redo re-applies its effects, undo skips it,
        # and it re-enters the active table awaiting the coordinator.
        indoubt = {txn_id: gtid for txn_id, gtid in prepared.items()
                   if txn_id not in committed and txn_id not in ended
                   and txn_id not in aborted}
        losers = sorted(seen - committed - ended - set(indoubt))
        self._bump("recovery.analysis.records", analyzed)
        self._bump("recovery.analysis.indoubt", len(indoubt))

        # Give handlers a chance to prepare redo for loser operations —
        # e.g. a loser DROP removed its catalog entry before the crash,
        # and redo of the relation's pages needs the descriptor back
        # before undo formally restores it.  Scan from the losers' undo
        # horizon (their records are always retained by truncation).
        loser_set = set(losers)
        prepare_start = min(
            [analysis_start]
            + [info["first_lsn"] for txn_id, info in att.items()
               if txn_id in loser_set and info.get("first_lsn")])
        for record in wal.forward(prepare_start):
            if (record.txn_id in loser_set
                    and record.kind in (wal_records.UPDATE, wal_records.CLR)):
                self.handler(record.resource).before_redo(
                    self.services, record)

        redo_start = min([analysis_start] + list(dpt.values()))
        redone = 0
        for record in wal.forward(redo_start):
            if record.kind in (wal_records.UPDATE, wal_records.CLR):
                self.handler(record.resource).redo(
                    self.services, record.lsn, record.payload)
                redone += 1

        undone = 0
        for txn_id in losers:
            undone += self.rollback(txn_id, to_lsn=0)
            self.wal.append(txn_id, wal_records.ABORT)
            self.wal.append(txn_id, wal_records.END)
        self._bump("recovery.undo.records", undone)
        self.wal.flush()
        # End-of-restart flush (ARIES' restart checkpoint, flush variant).
        # Pages rebuilt by redo sit dirty with rec_lsns captured at the
        # *current* end of log, so a later fuzzy checkpoint would bound
        # redo past their real history while the device still holds the
        # pre-crash (or repair-time) image — a second crash would then be
        # unrecoverable.  Writing them back makes the recovered state
        # device-durable and the stale bookkeeping moot.
        buffer = getattr(self.services, "buffer", None)
        if buffer is not None:
            buffer.flush_all()
        return {"losers": losers, "redone": redone, "undone": undone,
                "indoubt": indoubt,
                "heuristic_aborts": heuristic,
                "committed": sorted(committed),
                "checkpoint_lsn": master, "redo_from": redo_start,
                "analysis_records": analyzed,
                "torn_pages_restored": repaired["restored"],
                "torn_pages_zero_filled": repaired["zero_filled"]}
