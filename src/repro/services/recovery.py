"""Log-driven rollback and restart recovery.

The paper: "When a relation modification operation fails, for any reason,
the common recovery log is used to drive the storage method and attachment
implementations to undo the partial effects of the aborted relation
modification.  The same log-based driver also drives storage method and
attachment implementations during transaction abort and during system
restart recovery."

Extensions register a :class:`ResourceHandler` per resource name; the
driver walks the log and calls the handler's ``undo``/``redo``.  Undo
writes compensation records (CLRs) whose ``undo_next`` pointer skips the
compensated operation, so rollback is itself restartable and partial
rollback to a savepoint composes with a later full abort.
"""

from __future__ import annotations

from typing import Dict, Set

from ..errors import RecoveryError
from . import wal as wal_records
from .wal import LogManager, LogRecord

__all__ = ["ResourceHandler", "RecoveryManager"]


class ResourceHandler:
    """Undo/redo callbacks for one extension's logged operations.

    Subclasses (one per recoverable storage method or attachment type)
    implement:

    * ``undo(services, payload, clr_lsn)`` — reverse the logged operation;
      pages touched must be stamped with ``clr_lsn``.
    * ``redo(services, lsn, payload)`` — re-apply the logged operation
      idempotently; page-based implementations skip pages whose
      ``page_lsn`` is already >= ``lsn``.
    """

    def undo(self, services, payload: dict, clr_lsn: int) -> None:
        raise NotImplementedError

    def redo(self, services, lsn: int, payload: dict) -> None:
        raise NotImplementedError


class RecoveryManager:
    """The common rollback / restart driver over the shared log."""

    def __init__(self, wal: LogManager, services=None):
        self.wal = wal
        self.services = services  # injected after the service bundle exists
        self._handlers: Dict[str, ResourceHandler] = {}

    def register_handler(self, resource: str, handler: ResourceHandler) -> None:
        if resource in self._handlers:
            raise RecoveryError(f"handler for {resource!r} already registered")
        self._handlers[resource] = handler

    def handler(self, resource: str) -> ResourceHandler:
        try:
            return self._handlers[resource]
        except KeyError:
            raise RecoveryError(
                f"no recovery handler registered for resource {resource!r}"
            ) from None

    # -- logging entry point used by extensions ---------------------------------
    def log_update(self, txn_id: int, resource: str, payload: dict) -> LogRecord:
        """Append a logical operation record for a recoverable extension."""
        self.handler(resource)  # fail fast if nothing could ever undo it
        return self.wal.append(txn_id, wal_records.UPDATE, resource, payload)

    def log_update_batch(self, txn_id: int, resource: str,
                         payloads) -> list:
        """Append a group of logical operation records with one LSN range.

        One handler lookup and one log-manager call for the whole group —
        the set-at-a-time counterpart of :meth:`log_update`.
        """
        self.handler(resource)
        return self.wal.append_batch(txn_id, wal_records.UPDATE, resource,
                                     payloads)

    # -- rollback (partial or total) ------------------------------------------------
    def rollback(self, txn_id: int, to_lsn: int = 0) -> int:
        """Undo the transaction's operations with LSN > ``to_lsn``.

        ``to_lsn`` of a savepoint record gives partial rollback; 0 gives
        total rollback.  Returns the number of operations undone.
        """
        undone = 0
        lsn = self.wal.last_lsn(txn_id)
        while lsn > to_lsn:
            record = self.wal.record(lsn)
            if record.txn_id != txn_id:
                raise RecoveryError(
                    f"log chain corruption: LSN {lsn} belongs to txn "
                    f"{record.txn_id}, expected {txn_id}")
            if record.kind == wal_records.UPDATE:
                clr = self.wal.append(
                    txn_id, wal_records.CLR, record.resource,
                    dict(record.payload, compensates=record.lsn),
                    undo_next=record.prev_lsn)
                self.handler(record.resource).undo(
                    self.services, record.payload, clr.lsn)
                undone += 1
                lsn = record.prev_lsn
            elif record.kind == wal_records.CLR:
                lsn = record.undo_next  # skip what was already undone
            else:
                # BEGIN / SAVEPOINT / ABORT markers: nothing to undo.
                lsn = record.prev_lsn
        return undone

    # -- restart recovery ---------------------------------------------------------------
    def restart(self) -> dict:
        """ARIES-style restart over the stable log prefix.

        The caller is responsible for having simulated the crash first
        (``wal.lose_unflushed()`` and ``buffer.crash()``).  Performs:

        1. *Analysis*: find loser transactions (no COMMIT and no END).
        2. *Redo*: re-apply every UPDATE and CLR in LSN order (handlers are
           idempotent via page LSNs).
        3. *Undo*: roll back losers, writing CLRs, then ABORT/END records.

        Returns a summary dict for tests and benchmarks.
        """
        committed: Set[int] = set()
        ended: Set[int] = set()
        seen: Set[int] = set()
        redone = 0
        for record in self.wal.forward():
            seen.add(record.txn_id)
            if record.kind == wal_records.COMMIT:
                committed.add(record.txn_id)
            elif record.kind == wal_records.END:
                ended.add(record.txn_id)
        losers = sorted(seen - committed - ended)

        for record in self.wal.forward():
            if record.kind in (wal_records.UPDATE, wal_records.CLR):
                self.handler(record.resource).redo(
                    self.services, record.lsn, record.payload)
                redone += 1

        undone = 0
        for txn_id in losers:
            undone += self.rollback(txn_id, to_lsn=0)
            self.wal.append(txn_id, wal_records.ABORT)
            self.wal.append(txn_id, wal_records.END)
        self.wal.flush()
        return {"losers": losers, "redone": redone, "undone": undone,
                "committed": sorted(committed)}
