"""Precomputed per-column statistics attachment.

The paper lists precomputed statistics as a first-class use of
attachment storage: attachments "may have associated storage.  This
storage can be used to maintain access structures, and even to maintain
statistics about relations or precomputed function values".  This type
maintains, per tracked column, as a side effect of every insert/update/
delete through the standard batched attachment hooks:

* the relation **row count** (exact);
* the **null count** (exact);
* **min/max** — incremental on insert, marked *stale* when the current
  extreme is deleted and lazily repaired by one scan on the next read
  (the same discipline as the aggregate attachment);
* a **distinct-value estimate** via a KMV (k-minimum-values) sketch:
  the :data:`_KMV_K` smallest 32-bit value hashes seen.  With fewer
  than k entries the sketch is exact; at k the estimator
  ``(k-1) * 2^32 / kth_smallest`` applies.  Deletions do not shrink the
  sketch (it can only overestimate after heavy deletion; ``rebuild``
  re-derives it exactly).

Consumers reach the numbers through :func:`statistics_for`, which wraps
the first live instance on a relation in a :class:`TableStatistics`
view.  The planner uses it for real selectivities in place of the
System R ``DEFAULT_SELECTIVITY`` constants; the executor uses the row
count for row↔columnar path selection and (via the plan's expected
cardinality) batch sizing.

DDL attributes: ``columns`` — optional list of column names to track
(default: every column).
"""

from __future__ import annotations

from bisect import bisect_left, insort
from typing import Optional

from ..core.attachment import AttachmentType
from ..core.hashing import HASH_SPACE, stable_hash
from ..errors import StorageError
from ..services.recovery import ResourceHandler

__all__ = ["StatisticsAttachment", "TableStatistics", "statistics_for",
           "kmv_union", "kmv_union_estimate", "sketch_state"]

#: KMV sketch size: exact distinct counts up to this many values, an
#: unbiased estimate beyond.
_KMV_K = 64

_HASH_SPACE = float(HASH_SPACE)

#: The sketch hash is the shared stable (salt-free CRC) hash, so sketch
#: contents are reproducible across processes and agree with shard routing.
_value_hash = stable_hash


def _kmv_add(kmv: list, value) -> None:
    """Fold one value into the k-minimum-values sketch (sorted list of
    distinct hashes, at most ``_KMV_K`` long)."""
    h = _value_hash(value)
    at = bisect_left(kmv, h)
    if at < len(kmv) and kmv[at] == h:
        return
    if len(kmv) < _KMV_K:
        insort(kmv, h)
    elif h < kmv[-1]:
        insort(kmv, h)
        kmv.pop()


def _kmv_estimate(kmv: list) -> int:
    if len(kmv) < _KMV_K:
        return len(kmv)
    return max(len(kmv), int((_KMV_K - 1) * _HASH_SPACE / kmv[-1]))


def kmv_union(sketches) -> list:
    """The union of several KMV sketches — itself a valid KMV sketch.

    The hash function is shared and salt-free, so the same value hashes
    identically on every shard; keeping the K smallest hashes of the
    merged distinct set yields exactly the sketch a single pass over the
    union of the inputs would have built.  This is how the sharded
    method estimates a *global* distinct count from per-shard
    statistics without moving any data.
    """
    if not sketches:
        return []
    return sorted(set().union(*sketches))[:_KMV_K]


def kmv_union_estimate(sketches) -> int:
    """Distinct-count estimate for the union of per-shard sketches."""
    return _kmv_estimate(kmv_union(sketches))


def sketch_state(database, handle, index: int):
    """The raw per-column statistics state for ``handle`` inside
    ``database`` (``{"nulls", "min", "max", "stale", "kmv"}``), or
    ``None`` when no statistics instance tracks the column.

    Unlike :func:`statistics_for` this needs no execution context — the
    sharded coordinator reads child sketches directly when gating
    pushdown, without opening a child transaction.
    """
    try:
        attachment = database.registry.attachment_type_by_name("statistics")
    except Exception:
        return None
    field = handle.descriptor.attachment_field(attachment.type_id)
    if field is None:
        return None
    for instance in field["instances"].values():
        return instance["state"]["columns"].get(index)
    return None


def _copy_state(state: dict) -> dict:
    """Deep-enough copy for undo logging (nested per-column dicts and
    sketch lists are mutated in place by maintenance)."""
    return {"row_count": state["row_count"],
            "columns": {index: dict(column, kmv=list(column["kmv"]))
                        for index, column in state["columns"].items()}}


class _StatisticsHandler(ResourceHandler):
    def __init__(self, attachment: "StatisticsAttachment"):
        self.attachment = attachment

    def undo(self, services, payload: dict, clr_lsn: int) -> None:
        if getattr(services, "in_restart", False):
            return
        database = services.database
        entry = database.catalog.entry_by_id(payload["relation_id"])
        field = entry.handle.descriptor.attachment_field(
            self.attachment.type_id)
        if field is None:
            return
        instance = field["instances"].get(payload["instance"])
        if instance is None:
            return
        instance["state"] = _copy_state(payload["old_state"])

    def redo(self, services, lsn: int, payload: dict) -> None:
        """No redo: recomputed from the base relation after restart."""


class StatisticsAttachment(AttachmentType):
    """Per-column row-count/null/min/max/distinct statistics."""

    name = "statistics"
    is_access_path = False   # it answers estimates, not record keys
    recoverable = True

    # -- DDL -------------------------------------------------------------------
    def validate_attributes(self, schema, attributes):
        attributes = dict(attributes)
        columns = attributes.pop("columns", None)
        if attributes:
            raise StorageError(
                f"statistics: unknown attributes {sorted(attributes)}")
        if columns is None:
            columns = [field.name for field in schema.fields]
        else:
            columns = list(columns)
            if not columns:
                raise StorageError(
                    "statistics: 'columns' must name at least one column")
            for column in columns:
                schema.field(column)  # raises on unknown names
        return {"columns": columns}

    def create_instance(self, ctx, handle, instance_name, attributes) -> dict:
        indexes = [handle.schema.field_index(name)
                   for name in attributes["columns"]]
        instance = {"name": instance_name,
                    "columns": list(attributes["columns"]),
                    "field_indexes": indexes,
                    "state": self._empty_state(indexes)}
        self._recompute(ctx, handle, instance)
        return instance

    def destroy_instance(self, ctx, handle, instance_name, instance) -> None:
        instance["state"] = self._empty_state(instance["field_indexes"])

    @staticmethod
    def _empty_state(indexes) -> dict:
        return {"row_count": 0,
                "columns": {index: {"nulls": 0, "min": None, "max": None,
                                    "stale": False, "kmv": []}
                            for index in indexes}}

    def recovery_handler(self) -> ResourceHandler:
        return _StatisticsHandler(self)

    def rebuild(self, ctx, handle, field) -> None:
        for instance in field["instances"].values():
            self._recompute(ctx, handle, instance)
        ctx.stats.bump("statistics.rebuilds")

    def _recompute(self, ctx, handle, instance) -> None:
        """One full scan re-derives every tracked column's statistics."""
        state = self._empty_state(instance["field_indexes"])
        columns = state["columns"]
        method = ctx.database.registry.storage_method(
            handle.descriptor.storage_method_id)
        scan = method.open_scan(ctx, handle)
        try:
            while True:
                batch = scan.next_batch(256)
                if not batch:
                    break
                state["row_count"] += len(batch)
                for __, record in batch:
                    for index, column in columns.items():
                        self._absorb(column, record[index])
        finally:
            scan.close()
            ctx.services.scans.unregister(scan)
        instance["state"] = state
        ctx.stats.bump("statistics.recomputations")

    # -- attached procedures ---------------------------------------------------
    # The batch hooks log one before-image per batch and fold the whole
    # batch into the sketch state in one pass; the per-record hooks below
    # remain for tuple-at-a-time callers.

    def on_insert_batch(self, ctx, handle, field, keys, new_records) -> None:
        for instance in field["instances"].values():
            self._log_old(ctx, handle, instance)
            state = instance["state"]
            state["row_count"] += len(new_records)
            for index, column in state["columns"].items():
                for record in new_records:
                    self._absorb(column, record[index])
        self._bump_batch(ctx, field, len(new_records))

    def on_update_batch(self, ctx, handle, field, items) -> None:
        for instance in field["instances"].values():
            self._log_old(ctx, handle, instance)
            state = instance["state"]
            for index, column in state["columns"].items():
                for __, __new_key, old_record, new_record in items:
                    if old_record[index] == new_record[index]:
                        continue
                    self._retire(column, old_record[index])
                    self._absorb(column, new_record[index])
        self._bump_batch(ctx, field, len(items))

    def on_delete_batch(self, ctx, handle, field, items) -> None:
        for instance in field["instances"].values():
            self._log_old(ctx, handle, instance)
            state = instance["state"]
            state["row_count"] -= len(items)
            for index, column in state["columns"].items():
                for __, old_record in items:
                    self._retire(column, old_record[index])
        self._bump_batch(ctx, field, len(items))

    def on_insert(self, ctx, handle, field, key, new_record) -> None:
        self.on_insert_batch(ctx, handle, field, [key], [new_record])

    def on_update(self, ctx, handle, field, old_key, new_key, old_record,
                  new_record) -> None:
        self.on_update_batch(ctx, handle, field,
                             [(old_key, new_key, old_record, new_record)])

    def on_delete(self, ctx, handle, field, key, old_record) -> None:
        self.on_delete_batch(ctx, handle, field, [(key, old_record)])

    @staticmethod
    def _bump_batch(ctx, field, nrecords: int) -> None:
        ctx.stats.bump_many({
            "statistics.maintenance_batches": len(field["instances"]),
            "statistics.maintenance_ops":
                nrecords * len(field["instances"])})

    def _log_old(self, ctx, handle, instance) -> None:
        ctx.log(self.resource, {
            "relation_id": handle.relation_id, "instance": instance["name"],
            "old_state": _copy_state(instance["state"])})

    @staticmethod
    def _absorb(column: dict, value) -> None:
        if value is None:
            column["nulls"] += 1
            return
        try:
            if column["min"] is None or value < column["min"]:
                column["min"] = value
            if column["max"] is None or value > column["max"]:
                column["max"] = value
        except TypeError:
            pass  # unorderable values (boxes, bytes) keep no extremes
        _kmv_add(column["kmv"], value)

    @staticmethod
    def _retire(column: dict, value) -> None:
        if value is None:
            column["nulls"] -= 1
            return
        # The sketch cannot forget; the extremes invalidate lazily.
        if value == column["min"] or value == column["max"]:
            column["stale"] = True

    # -- reading ---------------------------------------------------------------
    def view(self, ctx, handle, instance) -> "TableStatistics":
        return TableStatistics(self, ctx, handle, instance)


class TableStatistics:
    """Read view over one statistics instance, as consumed by the
    planner's cost estimators and the executor's path selection."""

    __slots__ = ("_attachment", "_ctx", "_handle", "_instance")

    def __init__(self, attachment, ctx, handle, instance):
        self._attachment = attachment
        self._ctx = ctx
        self._handle = handle
        self._instance = instance

    @property
    def row_count(self) -> Optional[int]:
        return self._instance["state"]["row_count"]

    def tracks(self, index: int) -> bool:
        return index in self._instance["state"]["columns"]

    def column(self, index: int, repair: bool = False) -> Optional[dict]:
        """The column's state dict, repairing stale extremes when the
        caller needs min/max (one scan, same lazy discipline as the
        aggregate attachment)."""
        column = self._instance["state"]["columns"].get(index)
        if column is None:
            return None
        if repair and column["stale"]:
            self._attachment._recompute(self._ctx, self._handle,
                                        self._instance)
            column = self._instance["state"]["columns"].get(index)
        return column

    def distinct(self, index: int) -> Optional[int]:
        column = self.column(index)
        if column is None:
            return None
        return _kmv_estimate(column["kmv"])

    def null_fraction(self, index: int) -> Optional[float]:
        column = self.column(index)
        rows = self.row_count
        if column is None or not rows:
            return None
        return min(1.0, max(0.0, column["nulls"] / rows))

    def selectivity(self, index: int, op: str, value) -> Optional[float]:
        """Estimated fraction of rows satisfying ``column <op> value``,
        or ``None`` when these statistics cannot say (untracked column,
        unorderable range, empty relation)."""
        column = self.column(index, repair=op in ("<", "<=", ">", ">="))
        rows = self.row_count
        if column is None or not rows:
            return None
        self._ctx.stats.bump("statistics.consultations")
        nonnull = max(0, rows - column["nulls"])
        if not nonnull:
            return 0.0
        available = nonnull / rows
        if op == "=":
            distinct = _kmv_estimate(column["kmv"])
            if not distinct:
                return 0.0
            return min(1.0, available / distinct)
        if op == "!=":
            distinct = _kmv_estimate(column["kmv"])
            if not distinct:
                return 0.0
            return available * (1.0 - 1.0 / distinct)
        if op in ("<", "<=", ">", ">="):
            low, high = column["min"], column["max"]
            if low is None or high is None:
                return None
            try:
                if high == low:
                    fraction = 1.0 if (
                        (op in ("<=", ">=") and value == low)
                        or (op in ("<", "<=") and low < value)
                        or (op in (">", ">=") and low > value)) else 0.0
                elif op in ("<", "<="):
                    fraction = (value - low) / (high - low)
                else:
                    fraction = (high - value) / (high - low)
            except TypeError:
                return None  # non-numeric range (strings order, not space)
            return available * min(1.0, max(0.0, fraction))
        return None


def predicate_selectivity(table_stats: Optional[TableStatistics],
                          pred) -> Optional[float]:
    """Selectivity of one eligible predicate from the statistics, or
    ``None`` when they cannot say.

    Equality and inequality need only the distinct count, so they work
    even when the comparison value is a bound parameter; range
    interpolation needs a literal bound at planning time.
    """
    if table_stats is None or not getattr(pred, "is_simple", False):
        return None
    if pred.op in ("=", "!="):
        return table_stats.selectivity(pred.field_index, pred.op, None)
    if pred.op not in ("<", "<=", ">", ">="):
        return None
    from ..services.predicate import Const
    if not isinstance(pred.operand, Const):
        return None
    return table_stats.selectivity(pred.field_index, pred.op,
                                   pred.operand.value)


def statistics_for(ctx, handle) -> Optional[TableStatistics]:
    """The relation's statistics view, or ``None`` when no live
    statistics instance is installed."""
    database = getattr(ctx, "database", None)
    if database is None:
        return None
    try:
        attachment = database.registry.attachment_type_by_name("statistics")
    except Exception:
        return None
    field = handle.descriptor.attachment_field(attachment.type_id)
    if field is None:
        return None
    for instance in field["instances"].values():
        return attachment.view(ctx, handle, instance)
    return None
