"""Join index attachment.

The paper: "Access paths need not be limited to a single table (e.g., join
indexes [VALDURIEZ 85])" and, on descriptors, "more elaborate extensions
would have correspondingly more complex descriptors, including embedded
references to descriptors for other relations whenever the extension
involves multiple tables (e.g. referential integrity constraints or join
indexes)".

A join index instance is created on the *left* relation with attributes
naming the *right* relation and the equi-join columns.  It maintains the
set of matching ``(left record key, right record key)`` pairs.  Creating
the instance installs a **mirror instance** on the right relation's
descriptor (sharing the same pair store) so that modifications of either
relation keep the pairs current — the attached procedure of this type is
invoked on both relations.

Pair storage is an in-memory two-directional map owned by the attachment
(the paper's point that attachments "may have associated storage"); undo
is logical, redo is rebuild-on-restart like the other access paths.

DDL attributes: ``other`` (right relation name), ``column`` (left join
column), ``other_column`` (right join column).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..core.attachment import AttachmentType
from ..errors import StorageError
from ..query.cost import AccessCost
from ..services.recovery import ResourceHandler

__all__ = ["JoinIndexAttachment"]


class _JoinIndexHandler(ResourceHandler):
    def __init__(self, attachment: "JoinIndexAttachment"):
        self.attachment = attachment

    def undo(self, services, payload: dict, clr_lsn: int) -> None:
        if getattr(services, "in_restart", False):
            return
        database = services.database
        entry = database.catalog.entry_by_id(payload["relation_id"])
        field = entry.handle.descriptor.attachment_field(
            self.attachment.type_id)
        if field is None:
            return
        instance = field["instances"].get(payload["instance"])
        if instance is None:
            return
        pairs = instance["pairs"]
        left_key, right_key = payload["left_key"], payload["right_key"]
        if payload["op"] == "add_pair":
            _remove_pair(pairs, left_key, right_key)
        elif payload["op"] == "remove_pair":
            _add_pair(pairs, left_key, right_key)
        else:
            raise StorageError(f"join_index cannot undo {payload['op']!r}")

    def redo(self, services, lsn: int, payload: dict) -> None:
        """No redo: pairs are rebuilt from both relations after restart."""


def _add_pair(pairs: dict, left_key, right_key) -> None:
    pairs["by_left"].setdefault(left_key, set()).add(right_key)
    pairs["by_right"].setdefault(right_key, set()).add(left_key)
    pairs["count"] += 1


def _remove_pair(pairs: dict, left_key, right_key) -> None:
    lefts = pairs["by_left"].get(left_key)
    if lefts and right_key in lefts:
        lefts.discard(right_key)
        if not lefts:
            del pairs["by_left"][left_key]
        rights = pairs["by_right"].get(right_key)
        if rights is not None:
            rights.discard(left_key)
            if not rights:
                del pairs["by_right"][right_key]
        pairs["count"] -= 1


class JoinIndexAttachment(AttachmentType):
    """Maintains (left key, right key) pairs for one equi-join predicate."""

    name = "join_index"
    is_access_path = True
    recoverable = True

    # -- DDL -------------------------------------------------------------------
    def validate_attributes(self, schema, attributes):
        attributes = dict(attributes)
        other = attributes.pop("other", None)
        column = attributes.pop("column", None)
        other_column = attributes.pop("other_column", None)
        if attributes:
            raise StorageError(
                f"join_index: unknown attributes {sorted(attributes)}")
        if not other or not column or not other_column:
            raise StorageError(
                "join_index requires 'other', 'column', and 'other_column' "
                "attributes")
        schema.field(column)
        return {"other": other.lower(), "column": column,
                "other_column": other_column}

    def create_instance(self, ctx, handle, instance_name, attributes) -> dict:
        database = ctx.database
        other_handle = database.catalog.handle(attributes["other"])
        other_handle.schema.field(attributes["other_column"])
        pairs = {"by_left": {}, "by_right": {}, "count": 0}
        instance = {
            "name": instance_name, "role": "left",
            "relation": handle.name, "other": other_handle.name,
            "column": attributes["column"],
            "other_column": attributes["other_column"],
            "field_index": handle.schema.field_index(attributes["column"]),
            "other_field_index":
                other_handle.schema.field_index(attributes["other_column"]),
            "pairs": pairs,
        }
        # Embedded reference to the other relation: install the mirror so
        # the attached procedure fires on modifications of either side.
        mirror = dict(instance, role="right", name=instance_name + "@right")
        other_field = other_handle.descriptor.attachment_field(self.type_id)
        if other_field is None:
            other_field = self.new_field_descriptor()
            other_handle.descriptor.set_attachment_field(self.type_id,
                                                         other_field)
        other_field["instances"][mirror["name"]] = mirror
        self._build(ctx, handle, other_handle, instance)
        return instance

    def destroy_instance(self, ctx, handle, instance_name, instance) -> None:
        if instance["role"] != "left":
            return
        database = ctx.database
        try:
            other_handle = database.catalog.handle(instance["other"])
        except Exception:
            return  # the other relation is already gone
        other_field = other_handle.descriptor.attachment_field(self.type_id)
        if other_field is not None:
            other_field["instances"].pop(instance["name"] + "@right", None)
            if not other_field["instances"]:
                other_handle.descriptor.set_attachment_field(self.type_id,
                                                             None)
        instance["pairs"]["by_left"].clear()
        instance["pairs"]["by_right"].clear()

    def recovery_handler(self) -> ResourceHandler:
        return _JoinIndexHandler(self)

    def _build(self, ctx, handle, other_handle, instance) -> None:
        """Compute the initial pair set with one nested scan."""
        database = ctx.database
        left_method = database.registry.storage_method(
            handle.descriptor.storage_method_id)
        right_method = database.registry.storage_method(
            other_handle.descriptor.storage_method_id)
        rights: Dict[object, List] = {}
        scan = right_method.open_scan(ctx, other_handle)
        try:
            while True:
                item = scan.next()
                if item is None:
                    break
                right_key, record = item
                value = record[instance["other_field_index"]]
                rights.setdefault(value, []).append(right_key)
        finally:
            scan.close()
            ctx.services.scans.unregister(scan)
        scan = left_method.open_scan(ctx, handle)
        try:
            while True:
                item = scan.next()
                if item is None:
                    break
                left_key, record = item
                value = record[instance["field_index"]]
                for right_key in rights.get(value, ()):
                    _add_pair(instance["pairs"], left_key, right_key)
        finally:
            scan.close()
            ctx.services.scans.unregister(scan)
        ctx.stats.bump("join_index.builds")

    def rebuild(self, ctx, handle, field) -> None:
        database = ctx.database
        for instance in field["instances"].values():
            if instance["role"] != "left":
                continue
            instance["pairs"]["by_left"].clear()
            instance["pairs"]["by_right"].clear()
            instance["pairs"]["count"] = 0
            other_handle = database.catalog.handle(instance["other"])
            self._build(ctx, handle, other_handle, instance)
        ctx.stats.bump("join_index.rebuilds")

    # -- attached procedures -------------------------------------------------------------
    def on_insert(self, ctx, handle, field, key, new_record) -> None:
        for instance in field["instances"].values():
            self._pair_up(ctx, handle, instance, key, new_record, add=True)

    def on_update(self, ctx, handle, field, old_key, new_key, old_record,
                  new_record) -> None:
        for instance in field["instances"].values():
            side_index = (instance["field_index"]
                          if instance["role"] == "left"
                          else instance["other_field_index"])
            if old_record[side_index] == new_record[side_index] \
                    and old_key == new_key:
                ctx.stats.bump("join_index.update_skips")
                continue
            self._pair_up(ctx, handle, instance, old_key, old_record,
                          add=False)
            self._pair_up(ctx, handle, instance, new_key, new_record,
                          add=True)

    def on_delete(self, ctx, handle, field, key, old_record) -> None:
        for instance in field["instances"].values():
            self._pair_up(ctx, handle, instance, key, old_record, add=False)

    def _pair_up(self, ctx, handle, instance, key, record, add: bool) -> None:
        """Add or remove the pairs this record participates in."""
        database = ctx.database
        if instance["role"] == "left":
            value = record[instance["field_index"]]
            other_handle = database.catalog.handle(instance["other"])
            other_index = instance["other_field_index"]
            matches = self._matching_keys(ctx, other_handle, other_index,
                                          value)
            pair_list = [(key, m) for m in matches]
        else:
            value = record[instance["other_field_index"]]
            other_handle = database.catalog.handle(instance["relation"])
            other_index = instance["field_index"]
            matches = self._matching_keys(ctx, other_handle, other_index,
                                          value)
            pair_list = [(m, key) for m in matches]
        owner_name = (instance["relation"] if instance["role"] == "left"
                      else instance["relation"])
        owner_id = database.catalog.handle(instance["relation"]).relation_id
        base_name = instance["name"].replace("@right", "")
        for left_key, right_key in pair_list:
            if add:
                _add_pair(instance["pairs"], left_key, right_key)
                op = "add_pair"
            else:
                _remove_pair(instance["pairs"], left_key, right_key)
                op = "remove_pair"
            ctx.log(self.resource, {
                "op": op, "relation_id": owner_id, "instance": base_name,
                "left_key": left_key, "right_key": right_key})
            ctx.stats.bump("join_index.maintenance_ops")

    @staticmethod
    def _matching_keys(ctx, other_handle, field_index: int, value) -> List:
        if value is None:
            return []
        database = ctx.database
        method = database.registry.storage_method(
            other_handle.descriptor.storage_method_id)
        matches: List = []
        scan = method.open_scan(ctx, other_handle)
        try:
            while True:
                item = scan.next()
                if item is None:
                    break
                other_key, record = item
                if record[field_index] == value:
                    matches.append(other_key)
        finally:
            scan.close()
            ctx.services.scans.unregister(scan)
        return matches

    # -- direct access operations ------------------------------------------------------
    def fetch(self, ctx, handle, instance, input_key) -> List:
        """Map a record key of this side to the joined keys of the other."""
        ctx.stats.bump("join_index.fetches")
        if instance["role"] == "left":
            return sorted(instance["pairs"]["by_left"].get(input_key, ()),
                          key=repr)
        return sorted(instance["pairs"]["by_right"].get(input_key, ()),
                      key=repr)

    def pairs(self, instance) -> List[Tuple[object, object]]:
        """All (left key, right key) pairs (the join result's key set)."""
        out = []
        for left_key, rights in instance["pairs"]["by_left"].items():
            for right_key in rights:
                out.append((left_key, right_key))
        return out

    # -- cost estimation ------------------------------------------------------------------
    def estimate_cost(self, ctx, handle, instance_name, instance, eligible
                      ) -> Optional[AccessCost]:
        """Join indexes answer join queries, not single-relation filters."""
        return None

    def join_cost(self, instance) -> AccessCost:
        """Cost of producing the join's key pairs via the index."""
        count = instance["pairs"]["count"]
        # The pair store is memory-resident; fetching both records per pair
        # costs two page reads.
        return AccessCost(io_pages=2.0 * count, cpu_tuples=count,
                          expected_tuples=count, route=("join_pairs",))
