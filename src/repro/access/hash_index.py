"""Hash table access-path attachment.

The paper lists "hash tables" among attachment types.  Buckets are
page-resident (one pickled entry list per bucket page); lookups hash the
full key, so only equality predicates are relevant — the cost estimator
returns ``None`` for anything else, letting the planner fall back to other
access paths.  The directory doubles when the load factor passes the
configured bound.

DDL attributes: ``columns`` (required), ``buckets`` (initial count,
default 8), ``max_load`` (entries per bucket before doubling, default 4).
"""

from __future__ import annotations

import pickle
from typing import List, Optional, Tuple

from ..core.attachment import AttachmentType
from ..core.context import ExecutionContext
from ..core.records import RecordView
from ..core.storage_method import RelationHandle
from ..errors import PageError, ScanError, StorageError
from ..query.cost import AccessCost
from ..services.locks import LockMode
from ..services.predicate import Predicate
from ..services.recovery import ResourceHandler
from ..services.scans import AFTER, BEFORE, ON, Scan, ScanPosition

__all__ = ["HashIndexAttachment", "HashIndexScan"]

PAGE_TYPE_HASH_BUCKET = 5


def _bucket_read(buffer, page_id: int) -> List[Tuple[tuple, object]]:
    page = buffer.fetch(page_id)
    try:
        return pickle.loads(page.read(0))
    finally:
        buffer.unpin(page_id)


def _bucket_write(buffer, page_id: int, entries) -> None:
    page = buffer.fetch(page_id)
    try:
        page.update(0, pickle.dumps(entries,
                                    protocol=pickle.HIGHEST_PROTOCOL))
    finally:
        buffer.unpin(page_id, dirty=True)


def _bucket_new(buffer) -> int:
    page = buffer.new_page(PAGE_TYPE_HASH_BUCKET)
    try:
        page.insert(pickle.dumps([], protocol=pickle.HIGHEST_PROTOCOL))
    finally:
        buffer.unpin(page.page_id, dirty=True)
    return page.page_id


def _hash_key(key: tuple, nbuckets: int) -> int:
    return hash(key) % nbuckets


class _HashIndexHandler(ResourceHandler):
    def __init__(self, attachment: "HashIndexAttachment"):
        self.attachment = attachment

    def undo(self, services, payload: dict, clr_lsn: int) -> None:
        if getattr(services, "in_restart", False):
            return
        database = services.database
        entry = database.catalog.entry_by_id(payload["relation_id"])
        field = entry.handle.descriptor.attachment_field(
            self.attachment.type_id)
        if field is None:
            return
        instance = field["instances"].get(payload["instance"])
        if instance is None:
            return
        op = payload["op"]
        if op == "add":
            self.attachment._remove(services.buffer, instance,
                                    tuple(payload["key"]), payload["value"])
        elif op == "remove":
            self.attachment._add(services.buffer, instance,
                                 tuple(payload["key"]), payload["value"])
        elif op == "add_many":
            for key, value in reversed(payload["entries"]):
                self.attachment._remove(services.buffer, instance,
                                        tuple(key), value)
        elif op == "remove_many":
            for key, value in reversed(payload["entries"]):
                self.attachment._add(services.buffer, instance,
                                     tuple(key), value)
        else:
            raise StorageError(f"hash_index cannot undo {op!r}")

    def redo(self, services, lsn: int, payload: dict) -> None:
        """No redo: rebuilt from the base relation after restart."""


class HashIndexScan(Scan):
    """Key-sequential access in (bucket, entry) order.

    Hash order is not a key order, so this scan exists for completeness
    (enumerating the mapping); the planner only routes equality lookups
    here.
    """

    def __init__(self, ctx: ExecutionContext, handle: RelationHandle,
                 instance: dict, predicate: Optional[Predicate]):
        super().__init__(ctx.txn_id)
        self.ctx = ctx
        self.handle = handle
        self.instance = instance
        self.predicate = predicate
        self.key_fields = tuple(instance["key_fields"])
        self.state = BEFORE
        self.position: Optional[Tuple[int, int]] = None  # (bucket, entry idx)
        self._filter_here = (predicate is not None
                             and predicate.evaluable_on(self.key_fields))

    def next(self):
        self._check_open()
        buckets = self.instance["buckets"]
        bucket, index = (0, -1) if self.position is None else self.position
        while bucket < len(buckets):
            entries = _bucket_read(self.ctx.buffer, buckets[bucket])
            for i in range(index + 1, len(entries)):
                key, value = entries[i]
                self.position = (bucket, i)
                self.state = ON
                self.ctx.stats.bump("hash_index.entries_scanned")
                view = RecordView.from_fields(self.key_fields, key)
                if self._filter_here and not self.predicate.matches(view):
                    continue
                self.ctx.lock_record(self.handle.relation_id, value,
                                     LockMode.S)
                return value, view
            bucket += 1
            index = -1
            self.position = (bucket, -1)
        self.state = AFTER
        return None

    def next_batch(self, n: int) -> list:
        """Extract bucket-at-a-time: each bucket page is read and
        unpickled once for all its entries instead of once per entry."""
        self._check_open()
        if n < 1:
            raise ScanError(f"next_batch needs a positive count, got {n}")
        buckets = self.instance["buckets"]
        bucket, index = (0, -1) if self.position is None else self.position
        batch: list = []
        while bucket < len(buckets) and len(batch) < n:
            entries = _bucket_read(self.ctx.buffer, buckets[bucket])
            i = index + 1
            while i < len(entries) and len(batch) < n:
                key, value = entries[i]
                self.position = (bucket, i)
                self.state = ON
                self.ctx.stats.bump("hash_index.entries_scanned")
                view = RecordView.from_fields(self.key_fields, key)
                i += 1
                if self._filter_here and not self.predicate.matches(view):
                    continue
                self.ctx.lock_record(self.handle.relation_id, value,
                                     LockMode.S)
                batch.append((value, view))
            if i >= len(entries):
                bucket += 1
                index = -1
                self.position = (bucket, -1)
            else:
                index = i - 1
        if not batch:
            self.state = AFTER
        return batch

    def save_position(self) -> ScanPosition:
        return ScanPosition(self.state, self.position)

    def restore_position(self, saved: ScanPosition) -> None:
        self.state = saved.state
        self.position = saved.item


class HashIndexAttachment(AttachmentType):
    """Equality-lookup access path over page-resident buckets."""

    name = "hash_index"
    is_access_path = True
    recoverable = True

    # -- DDL -------------------------------------------------------------------
    def validate_attributes(self, schema, attributes):
        attributes = dict(attributes)
        columns = attributes.pop("columns", None)
        buckets = attributes.pop("buckets", 8)
        max_load = attributes.pop("max_load", 4.0)
        if attributes:
            raise StorageError(
                f"hash_index: unknown attributes {sorted(attributes)}")
        if not columns:
            raise StorageError("hash_index requires a 'columns' attribute")
        for column in columns:
            schema.field(column)  # existence check; any hashable type works
        if not isinstance(buckets, int) or buckets < 1:
            raise StorageError(
                f"hash_index: buckets must be a positive int, got {buckets!r}")
        if not isinstance(max_load, (int, float)) or max_load <= 0:
            raise StorageError(
                f"hash_index: max_load must be positive, got {max_load!r}")
        return {"columns": list(columns), "buckets": buckets,
                "max_load": float(max_load)}

    def create_instance(self, ctx, handle, instance_name, attributes) -> dict:
        key_fields = list(handle.schema.indexes_of(attributes["columns"]))
        instance = {"name": instance_name,
                    "columns": list(attributes["columns"]),
                    "key_fields": key_fields,
                    "max_load": attributes["max_load"],
                    "buckets": [_bucket_new(ctx.buffer)
                                for __ in range(attributes["buckets"])],
                    "nentries": 0}
        self._build(ctx, handle, instance)
        return instance

    def destroy_instance(self, ctx, handle, instance_name, instance) -> None:
        for page_id in instance["buckets"]:
            try:
                ctx.buffer.free_page(page_id)
            except PageError:
                pass
        instance["buckets"] = []
        instance["nentries"] = 0

    def recovery_handler(self) -> ResourceHandler:
        return _HashIndexHandler(self)

    def _build(self, ctx, handle, instance) -> None:
        database = ctx.database
        method = database.registry.storage_method(
            handle.descriptor.storage_method_id)
        scan = method.open_scan(ctx, handle)
        try:
            while True:
                batch = scan.next_batch(256)
                if not batch:
                    break
                for record_key, record in batch:
                    self._add(ctx.buffer, instance,
                              self._key_of(instance, record), record_key)
        finally:
            scan.close()
            ctx.services.scans.unregister(scan)
        ctx.stats.bump("hash_index.builds")

    def rebuild(self, ctx, handle, field) -> None:
        for instance in field["instances"].values():
            old_pages = list(instance["buckets"])
            nbuckets = max(8, len(old_pages))
            instance["buckets"] = [_bucket_new(ctx.buffer)
                                   for __ in range(nbuckets)]
            instance["nentries"] = 0
            for page_id in old_pages:
                try:
                    ctx.buffer.free_page(page_id)
                except PageError:
                    pass  # lost to the crash
            self._build(ctx, handle, instance)
        ctx.stats.bump("hash_index.rebuilds")

    # -- bucket maintenance ----------------------------------------------------------
    @staticmethod
    def _key_of(instance: dict, record: Tuple) -> tuple:
        return tuple(record[i] for i in instance["key_fields"])

    def _add(self, buffer, instance: dict, key: tuple, value) -> None:
        buckets = instance["buckets"]
        page_id = buckets[_hash_key(key, len(buckets))]
        entries = _bucket_read(buffer, page_id)
        entries.append((key, value))
        _bucket_write(buffer, page_id, entries)
        instance["nentries"] += 1
        if instance["nentries"] > instance["max_load"] * len(buckets):
            self._double(buffer, instance)

    def _remove(self, buffer, instance: dict, key: tuple, value) -> bool:
        buckets = instance["buckets"]
        page_id = buckets[_hash_key(key, len(buckets))]
        entries = _bucket_read(buffer, page_id)
        for i, (k, v) in enumerate(entries):
            if k == key and v == value:
                del entries[i]
                _bucket_write(buffer, page_id, entries)
                instance["nentries"] -= 1
                return True
        return False

    def _double(self, buffer, instance: dict) -> None:
        old_pages = instance["buckets"]
        all_entries = []
        for page_id in old_pages:
            all_entries.extend(_bucket_read(buffer, page_id))
        nbuckets = len(old_pages) * 2
        new_pages = [_bucket_new(buffer) for __ in range(nbuckets)]
        grouped: dict = {i: [] for i in range(nbuckets)}
        for key, value in all_entries:
            grouped[_hash_key(key, nbuckets)].append((key, value))
        for i, page_id in enumerate(new_pages):
            if grouped[i]:
                _bucket_write(buffer, page_id, grouped[i])
        for page_id in old_pages:
            buffer.free_page(page_id)
        instance["buckets"] = new_pages

    # -- attached procedures -------------------------------------------------------------
    def on_insert(self, ctx, handle, field, key, new_record) -> None:
        for instance in field["instances"].values():
            hash_key = self._key_of(instance, new_record)
            self._add(ctx.buffer, instance, hash_key, key)
            ctx.log(self.resource, {
                "op": "add", "relation_id": handle.relation_id,
                "instance": instance["name"], "key": list(hash_key),
                "value": key})
            ctx.stats.bump("hash_index.maintenance_ops")

    def on_update(self, ctx, handle, field, old_key, new_key, old_record,
                  new_record) -> None:
        for instance in field["instances"].values():
            old_hash_key = self._key_of(instance, old_record)
            new_hash_key = self._key_of(instance, new_record)
            if old_hash_key == new_hash_key and old_key == new_key:
                ctx.stats.bump("hash_index.update_skips")
                continue
            self._remove(ctx.buffer, instance, old_hash_key, old_key)
            self._add(ctx.buffer, instance, new_hash_key, new_key)
            ctx.log(self.resource, {
                "op": "remove", "relation_id": handle.relation_id,
                "instance": instance["name"], "key": list(old_hash_key),
                "value": old_key})
            ctx.log(self.resource, {
                "op": "add", "relation_id": handle.relation_id,
                "instance": instance["name"], "key": list(new_hash_key),
                "value": new_key})
            ctx.stats.bump("hash_index.maintenance_ops")

    def on_delete(self, ctx, handle, field, key, old_record) -> None:
        for instance in field["instances"].values():
            hash_key = self._key_of(instance, old_record)
            self._remove(ctx.buffer, instance, hash_key, key)
            ctx.log(self.resource, {
                "op": "remove", "relation_id": handle.relation_id,
                "instance": instance["name"], "key": list(hash_key),
                "value": key})
            ctx.stats.bump("hash_index.maintenance_ops")

    # -- set-at-a-time attached procedures ---------------------------------------
    def on_insert_batch(self, ctx, handle, field, keys, new_records) -> None:
        """Pre-grow the directory for the whole set, then touch each
        bucket page once (one read + one write per bucket, not per
        entry) and log one record per instance."""
        for instance in field["instances"].values():
            entries = [(self._key_of(instance, record), key)
                       for key, record in zip(keys, new_records)]
            while instance["nentries"] + len(entries) \
                    > instance["max_load"] * len(instance["buckets"]):
                self._double(ctx.buffer, instance)
            buckets = instance["buckets"]
            grouped: dict = {}
            for hash_key, value in entries:
                page_id = buckets[_hash_key(hash_key, len(buckets))]
                grouped.setdefault(page_id, []).append((hash_key, value))
            for page_id, additions in grouped.items():
                bucket = _bucket_read(ctx.buffer, page_id)
                bucket.extend(additions)
                _bucket_write(ctx.buffer, page_id, bucket)
            instance["nentries"] += len(entries)
            ctx.log(self.resource, {
                "op": "add_many", "relation_id": handle.relation_id,
                "instance": instance["name"],
                "entries": [[list(k), v] for k, v in entries]})
            ctx.stats.bump("hash_index.maintenance_ops", len(entries))

    def on_delete_batch(self, ctx, handle, field, items) -> None:
        for instance in field["instances"].values():
            entries = [(self._key_of(instance, old), key)
                       for key, old in items]
            buckets = instance["buckets"]
            grouped: dict = {}
            for hash_key, value in entries:
                page_id = buckets[_hash_key(hash_key, len(buckets))]
                grouped.setdefault(page_id, []).append((hash_key, value))
            removed = 0
            for page_id, removals in grouped.items():
                bucket = _bucket_read(ctx.buffer, page_id)
                for hash_key, value in removals:
                    for i, (k, v) in enumerate(bucket):
                        if k == hash_key and v == value:
                            del bucket[i]
                            removed += 1
                            break
                _bucket_write(ctx.buffer, page_id, bucket)
            instance["nentries"] -= removed
            ctx.log(self.resource, {
                "op": "remove_many", "relation_id": handle.relation_id,
                "instance": instance["name"],
                "entries": [[list(k), v] for k, v in entries]})
            ctx.stats.bump("hash_index.maintenance_ops", len(entries))

    # -- direct access operations ------------------------------------------------------
    def fetch(self, ctx, handle, instance, input_key) -> List:
        if not isinstance(input_key, tuple):
            input_key = (input_key,)
        buckets = instance["buckets"]
        page_id = buckets[_hash_key(tuple(input_key), len(buckets))]
        entries = _bucket_read(ctx.buffer, page_id)
        ctx.stats.bump("hash_index.fetches")
        return [value for key, value in entries if key == tuple(input_key)]

    def open_scan(self, ctx, handle, instance, predicate=None,
                  route=None) -> Scan:
        scan = HashIndexScan(ctx, handle, instance, predicate)
        ctx.services.scans.register(scan)
        return scan

    # -- cost estimation ------------------------------------------------------------------
    def estimate_cost(self, ctx, handle, instance_name, instance, eligible
                      ) -> Optional[AccessCost]:
        """Relevant only for equality predicates covering the whole key."""
        key_fields = set(instance["key_fields"])
        relevant = [p for p in eligible
                    if p.is_simple and p.op == "=" and
                    p.field_index in key_fields]
        if {p.field_index for p in relevant} != key_fields:
            return None
        database = ctx.database
        method = database.registry.storage_method(
            handle.descriptor.storage_method_id)
        tuples = max(1, method.record_count(ctx, handle))
        expected = max(1.0, instance["nentries"]
                       / max(1, len(instance["buckets"])) / 4.0)
        if len(instance["key_fields"]) == 1:
            # Precomputed statistics beat the bucket-load heuristic:
            # an equality probe returns rows / ndv matches.
            from .statistics import statistics_for
            table_stats = statistics_for(ctx, handle)
            if table_stats is not None:
                selectivity = table_stats.selectivity(
                    instance["key_fields"][0], "=", None)
                if selectivity is not None:
                    expected = max(1.0, tuples * selectivity)
        expected = min(expected, float(tuples))
        # One bucket page + one base fetch per match.
        return AccessCost(io_pages=1 + expected, cpu_tuples=expected,
                          expected_tuples=expected,
                          relevant=tuple(relevant), route=("hash_probe",))
    # NOTE: the executor probes via fetch() when the route is hash_probe.
