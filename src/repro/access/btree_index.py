"""B-tree index attachment.

The paper's running example of a procedural attachment:

  "After a record is inserted into a relation having B-tree indexes
  defined on it, the B-tree attached procedure for insert will be invoked
  passing a copy of the inserted record along with the newly assigned
  tuple identifier or record key.  For each B-tree index defined on the
  relation being modified, the B-tree insert procedure will form an index
  key by projecting fields from the inserted record, and then insert the
  index key plus tuple identifier or record key into the B-tree index.
  On update, the old record and record key will be used to determine
  which key to delete from the B-tree index and the new record and record
  key will be used to form the key to be inserted into the index.  Of
  course, the B-tree update operation should be able to detect when no
  indexed fields for a given index are modified."

One attachment *type* services all B-tree instances on the relation; each
instance descriptor carries its indexed columns and its page-based
:class:`~repro.access.btree_core.BTree` state.  The instance can also
"return record fields when the access path key is a multi-field value" —
scans yield a :class:`~repro.core.records.RecordView` of the key fields so
filter predicates run before the base record is fetched.

DDL attributes: ``columns`` (list of column names, required),
``unique`` (bool, default False), ``max_entries`` (node fanout bound).
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from ..core.attachment import AttachmentType
from ..core.context import ExecutionContext
from ..core.records import RecordView
from ..core.storage_method import RelationHandle
from ..errors import PageError, ScanError, StorageError, UniqueViolation
from ..query.cost import AccessCost, DEFAULT_SELECTIVITY, EligiblePredicate
from ..services.locks import LockMode
from ..services.predicate import Predicate
from ..services.recovery import ResourceHandler
from ..services.scans import AFTER, BEFORE, ON, Scan, ScanPosition
from .btree_core import BTree, DEFAULT_MAX_ENTRIES

__all__ = ["BTreeIndexAttachment", "BTreeIndexScan"]

#: Records pulled per scan call while bulk-building an index.
_BUILD_BATCH = 256


class _BTreeIndexHandler(ResourceHandler):
    """Logical undo for index maintenance; rebuild covers restart."""

    def __init__(self, attachment: "BTreeIndexAttachment"):
        self.attachment = attachment

    def undo(self, services, payload: dict, clr_lsn: int) -> None:
        if getattr(services, "in_restart", False):
            return  # indexes are rebuilt wholesale after restart
        instance = _instance_for(services, self.attachment, payload)
        if instance is None:
            return  # the instance was dropped later in the transaction
        tree = BTree(services.buffer, instance["tree"],
                     instance.get("max_entries", DEFAULT_MAX_ENTRIES))
        if payload["op"] == "add":
            tree.delete(tuple(payload["key"]), payload["value"])
        elif payload["op"] == "remove":
            tree.insert(tuple(payload["key"]), payload["value"])
        elif payload["op"] == "add_many":
            for key, value in reversed(payload["entries"]):
                tree.delete(tuple(key), value)
        elif payload["op"] == "remove_many":
            for key, value in reversed(payload["entries"]):
                tree.insert(tuple(key), value)
        else:
            raise StorageError(f"btree_index cannot undo {payload['op']!r}")

    def redo(self, services, lsn: int, payload: dict) -> None:
        """No redo: access paths are rebuilt from base relations."""


def _instance_for(services, attachment, payload: dict) -> Optional[dict]:
    database = getattr(services, "database", None)
    if database is None:
        raise StorageError("recovery handler needs services.database wired")
    entry = database.catalog.entry_by_id(payload["relation_id"])
    field = entry.handle.descriptor.attachment_field(attachment.type_id)
    if field is None:
        return None
    return field["instances"].get(payload["instance"])


class BTreeIndexScan(Scan):
    """Key-sequential access over one B-tree index instance.

    Yields ``(record_key, view)`` where ``view`` covers the indexed fields.
    The position is the last (index key, record key) pair returned, so a
    deletion at the position leaves the scan just after it.
    """

    def __init__(self, ctx: ExecutionContext, handle: RelationHandle,
                 instance: dict, predicate: Optional[Predicate],
                 low: Optional[tuple], high: Optional[tuple],
                 low_inclusive: bool = True, high_inclusive: bool = True):
        super().__init__(ctx.txn_id)
        self.ctx = ctx
        self.handle = handle
        self.instance = instance
        self.predicate = predicate
        self.low = low
        self.high = high
        self.low_inclusive = low_inclusive
        self.high_inclusive = high_inclusive
        self.key_fields = tuple(instance["key_fields"])
        self.state = BEFORE
        self.position: Optional[Tuple[tuple, object]] = None
        self._tree = BTree(ctx.buffer, instance["tree"],
                           instance.get("max_entries", DEFAULT_MAX_ENTRIES))
        self._filter_here = (predicate is not None
                             and predicate.evaluable_on(self.key_fields))

    def next(self):
        self._check_open()
        if self.position is None:
            entries = self._tree.range(self.low, self.high,
                                       self.low_inclusive,
                                       self.high_inclusive)
        else:
            entries = self._tree.entries_after(self.position, self.high,
                                               self.high_inclusive)
        for key, value in entries:
            self.position = (key, value)
            self.state = ON
            self.ctx.stats.bump("btree_index.entries_scanned")
            view = RecordView.from_fields(self.key_fields, key)
            # Early filtering against the access-path key when possible.
            if self._filter_here and not self.predicate.matches(view):
                continue
            self.ctx.lock_record(self.handle.relation_id, value, LockMode.S)
            return value, view
        self.state = AFTER
        return None

    def next_batch(self, n: int) -> list:
        """Consume one tree traversal for up to ``n`` entries: a single
        root-to-leaf descent per batch instead of one per entry."""
        self._check_open()
        if n < 1:
            raise ScanError(f"next_batch needs a positive count, got {n}")
        if self.position is None:
            entries = self._tree.range(self.low, self.high,
                                       self.low_inclusive,
                                       self.high_inclusive)
        else:
            entries = self._tree.entries_after(self.position, self.high,
                                               self.high_inclusive)
        batch: list = []
        for key, value in entries:
            self.position = (key, value)
            self.state = ON
            self.ctx.stats.bump("btree_index.entries_scanned")
            view = RecordView.from_fields(self.key_fields, key)
            if self._filter_here and not self.predicate.matches(view):
                continue
            self.ctx.lock_record(self.handle.relation_id, value, LockMode.S)
            batch.append((value, view))
            if len(batch) >= n:
                break
        if not batch:
            self.state = AFTER
        return batch

    def save_position(self) -> ScanPosition:
        return ScanPosition(self.state, self.position)

    def restore_position(self, saved: ScanPosition) -> None:
        self.state = saved.state
        self.position = saved.item


class BTreeIndexAttachment(AttachmentType):
    """Multi-instance B-tree access path."""

    name = "btree_index"
    is_access_path = True
    recoverable = True

    # -- DDL -------------------------------------------------------------------
    def validate_attributes(self, schema, attributes):
        attributes = dict(attributes)
        columns = attributes.pop("columns", None)
        unique = attributes.pop("unique", False)
        max_entries = attributes.pop("max_entries", DEFAULT_MAX_ENTRIES)
        if attributes:
            raise StorageError(
                f"btree_index: unknown attributes {sorted(attributes)}")
        if not columns:
            raise StorageError("btree_index requires a 'columns' attribute")
        for column in columns:
            if not schema.orderable(column):
                raise StorageError(
                    f"btree_index column {column!r} has unorderable type "
                    f"{schema.field(column).type_code}")
        if not isinstance(max_entries, int) or max_entries < 4:
            raise StorageError(
                f"btree_index: max_entries must be an int >= 4, got "
                f"{max_entries!r}")
        return {"columns": list(columns), "unique": bool(unique),
                "max_entries": max_entries}

    def create_instance(self, ctx, handle, instance_name, attributes) -> dict:
        key_fields = list(handle.schema.indexes_of(attributes["columns"]))
        instance = {"name": instance_name,
                    "columns": list(attributes["columns"]),
                    "key_fields": key_fields,
                    "unique": attributes["unique"],
                    "max_entries": attributes["max_entries"],
                    "tree": {}}
        BTree.create(ctx.buffer, instance["tree"], attributes["max_entries"])
        self._build(ctx, handle, instance)
        return instance

    def destroy_instance(self, ctx, handle, instance_name, instance) -> None:
        tree = BTree(ctx.buffer, instance["tree"],
                     instance.get("max_entries", DEFAULT_MAX_ENTRIES))
        try:
            tree.destroy()
        except PageError:
            pass  # pages lost to a crash; the simulated device absorbs them

    def recovery_handler(self) -> ResourceHandler:
        return _BTreeIndexHandler(self)

    def _build(self, ctx, handle, instance) -> None:
        """Bulk-build from the records already stored in the relation."""
        tree = BTree(ctx.buffer, instance["tree"], instance["max_entries"])
        database = ctx.database
        method = database.registry.storage_method(
            handle.descriptor.storage_method_id)
        scan = method.open_scan(ctx, handle)
        try:
            while True:
                batch = scan.next_batch(_BUILD_BATCH)
                if not batch:
                    break
                for record_key, record in batch:
                    key = self._key_of(instance, record)
                    if instance["unique"] and tree.search(key):
                        raise UniqueViolation(
                            self.name,
                            f"cannot build unique index {instance['name']!r}: "
                            f"duplicate key {key!r}")
                    tree.insert(key, record_key)
        finally:
            scan.close()
            ctx.services.scans.unregister(scan)
        ctx.stats.bump("btree_index.builds")

    def rebuild(self, ctx, handle, field) -> None:
        """Restart recovery: reconstruct every instance from the relation."""
        for instance in field["instances"].values():
            tree = BTree(ctx.buffer, instance["tree"],
                         instance.get("max_entries", DEFAULT_MAX_ENTRIES))
            try:
                tree.reset()
            except PageError:
                # Old pages unreadable after the crash: abandon them.
                instance["tree"].clear()
                BTree.create(ctx.buffer, instance["tree"],
                             instance.get("max_entries", DEFAULT_MAX_ENTRIES))
            self._build(ctx, handle, instance)
        ctx.stats.bump("btree_index.rebuilds")

    # -- attached procedures -----------------------------------------------------
    @staticmethod
    def _key_of(instance: dict, record: Tuple) -> tuple:
        return tuple(record[i] for i in instance["key_fields"])

    def on_insert(self, ctx, handle, field, key, new_record) -> None:
        for instance in field["instances"].values():
            index_key = self._key_of(instance, new_record)
            tree = BTree(ctx.buffer, instance["tree"],
                         instance["max_entries"])
            if instance["unique"] and tree.search(index_key):
                raise UniqueViolation(
                    self.name,
                    f"duplicate key {index_key!r} in unique index "
                    f"{instance['name']!r}")
            tree.insert(index_key, key)
            ctx.log(self.resource, {
                "op": "add", "relation_id": handle.relation_id,
                "instance": instance["name"], "key": list(index_key),
                "value": key})
            ctx.stats.bump("btree_index.maintenance_ops")

    def on_update(self, ctx, handle, field, old_key, new_key, old_record,
                  new_record) -> None:
        for instance in field["instances"].values():
            old_index_key = self._key_of(instance, old_record)
            new_index_key = self._key_of(instance, new_record)
            if old_index_key == new_index_key and old_key == new_key:
                ctx.stats.bump("btree_index.update_skips")
                continue  # no indexed fields were modified
            tree = BTree(ctx.buffer, instance["tree"],
                         instance["max_entries"])
            if instance["unique"] and old_index_key != new_index_key \
                    and tree.search(new_index_key):
                raise UniqueViolation(
                    self.name,
                    f"duplicate key {new_index_key!r} in unique index "
                    f"{instance['name']!r}")
            tree.delete(old_index_key, old_key)
            tree.insert(new_index_key, new_key)
            ctx.log(self.resource, {
                "op": "remove", "relation_id": handle.relation_id,
                "instance": instance["name"], "key": list(old_index_key),
                "value": old_key})
            ctx.log(self.resource, {
                "op": "add", "relation_id": handle.relation_id,
                "instance": instance["name"], "key": list(new_index_key),
                "value": new_key})
            ctx.stats.bump("btree_index.maintenance_ops")

    def on_delete(self, ctx, handle, field, key, old_record) -> None:
        for instance in field["instances"].values():
            index_key = self._key_of(instance, old_record)
            tree = BTree(ctx.buffer, instance["tree"],
                         instance["max_entries"])
            tree.delete(index_key, key)
            ctx.log(self.resource, {
                "op": "remove", "relation_id": handle.relation_id,
                "instance": instance["name"], "key": list(index_key),
                "value": key})
            ctx.stats.bump("btree_index.maintenance_ops")

    # -- set-at-a-time attached procedures ---------------------------------------
    def on_insert_batch(self, ctx, handle, field, keys, new_records) -> None:
        """One tree instantiation, key-sorted bulk apply, and one log
        record per instance per *batch* instead of per record."""
        for instance in field["instances"].values():
            tree = BTree(ctx.buffer, instance["tree"],
                         instance["max_entries"])
            entries = sorted(
                (self._key_of(instance, record), key)
                for key, record in zip(keys, new_records))
            if instance["unique"]:
                seen = set()
                for index_key, __ in entries:
                    if index_key in seen or tree.search(index_key):
                        raise UniqueViolation(
                            self.name,
                            f"duplicate key {index_key!r} in unique index "
                            f"{instance['name']!r}")
                    seen.add(index_key)
            for index_key, value in entries:
                tree.insert(index_key, value)
            ctx.log(self.resource, {
                "op": "add_many", "relation_id": handle.relation_id,
                "instance": instance["name"],
                "entries": [[list(k), v] for k, v in entries]})
            ctx.stats.bump("btree_index.maintenance_ops", len(entries))

    def on_delete_batch(self, ctx, handle, field, items) -> None:
        for instance in field["instances"].values():
            tree = BTree(ctx.buffer, instance["tree"],
                         instance["max_entries"])
            entries = sorted((self._key_of(instance, old), key)
                             for key, old in items)
            for index_key, value in entries:
                tree.delete(index_key, value)
            ctx.log(self.resource, {
                "op": "remove_many", "relation_id": handle.relation_id,
                "instance": instance["name"],
                "entries": [[list(k), v] for k, v in entries]})
            ctx.stats.bump("btree_index.maintenance_ops", len(entries))

    # -- direct access operations ------------------------------------------------------
    def fetch(self, ctx, handle, instance, input_key) -> List:
        """Map an index key (full or tuple) to the matching record keys."""
        if not isinstance(input_key, tuple):
            input_key = (input_key,)
        tree = BTree(ctx.buffer, instance["tree"], instance["max_entries"])
        ctx.stats.bump("btree_index.fetches")
        if len(input_key) == len(instance["key_fields"]):
            return tree.search(input_key)
        # Partial key: all entries whose key has this prefix.
        out = []
        for key, value in tree.range(low=input_key):
            if tuple(key[:len(input_key)]) != tuple(input_key):
                break
            out.append(value)
        return out

    def open_scan(self, ctx, handle, instance, predicate=None,
                  route=None) -> Scan:
        low = high = None
        low_inclusive = high_inclusive = True
        if route is not None and route[0] == "btree_range":
            __, low, high, low_inclusive, high_inclusive = route
        scan = BTreeIndexScan(ctx, handle, instance, predicate, low, high,
                              low_inclusive, high_inclusive)
        ctx.services.scans.register(scan)
        return scan

    # -- cost estimation ------------------------------------------------------------------
    def estimate_cost(self, ctx, handle, instance_name, instance, eligible
                      ) -> Optional[AccessCost]:
        """Low cost when there is a predicate on the key of the B-tree."""
        key_fields = instance["key_fields"]
        leading = key_fields[0]
        relevant = [p for p in eligible
                    if p.is_simple and p.field_index == leading
                    and p.op in ("=", "<", "<=", ">", ">=")]
        if not relevant:
            return None
        database = ctx.database
        method = database.registry.storage_method(
            handle.descriptor.storage_method_id)
        tuples = max(1, method.record_count(ctx, handle))
        selectivity = 1.0
        equality = False
        low = high = None
        low_inclusive = high_inclusive = True
        for pred in relevant:
            selectivity *= DEFAULT_SELECTIVITY.get(pred.op, 0.5)
            bound = self._constant_bound(pred)
            if pred.op == "=":
                equality = True
                if bound is not None:
                    low = high = (bound,)
            elif pred.op in (">", ">="):
                if bound is not None:
                    low = (bound,)
                    low_inclusive = pred.op == ">="
            elif pred.op in ("<", "<="):
                if bound is not None:
                    high = (bound,)
                    high_inclusive = pred.op == "<="
        interpolated = self._interpolate_selectivity(ctx, instance, low, high)
        if interpolated is not None:
            selectivity = interpolated
        if equality:
            # Interpolation degenerates for equality (a point "range"),
            # so a distinct-count estimate from an installed statistics
            # attachment takes precedence: expected = rows / ndv.
            from .statistics import statistics_for
            table_stats = statistics_for(ctx, handle)
            if table_stats is not None:
                ndv_selectivity = table_stats.selectivity(leading, "=", None)
                if ndv_selectivity is not None:
                    selectivity = ndv_selectivity
        if instance["unique"] and equality and len(key_fields) == 1:
            expected = 1.0
        else:
            expected = max(1.0, tuples * selectivity)
        tree_state = instance["tree"]
        height = max(1, tree_state.get("height", 1))
        leaf_fraction = (expected / max(1.0, tree_state.get("nentries", 1))
                         * max(1, tree_state.get("pages", 1)))
        # Each qualifying entry costs one base-relation fetch.
        io = height + min(leaf_fraction, tree_state.get("pages", 1)) + expected
        route = ("btree_range", low, high, low_inclusive, high_inclusive)
        return AccessCost(io_pages=io, cpu_tuples=expected,
                          expected_tuples=expected,
                          relevant=tuple(relevant),
                          ordered_by=tuple(key_fields), route=route)

    @staticmethod
    def _constant_bound(pred: EligiblePredicate):
        """Extract a literal bound when the operand is a constant."""
        from ..services.predicate import Const
        if isinstance(pred.operand, Const):
            return pred.operand.value
        return None

    def _interpolate_selectivity(self, ctx, instance: dict,
                                 low: Optional[tuple],
                                 high: Optional[tuple]) -> Optional[float]:
        """Range selectivity from the index's actual key span.

        The index *is* a statistic: when the range bounds are numeric
        constants, interpolating against the stored minimum/maximum key
        beats the fixed System-R guesses by an order of magnitude.  Costs
        two root-to-leaf descents.
        """
        if low is None and high is None:
            return None
        tree = BTree(ctx.buffer, instance["tree"],
                     instance.get("max_entries", DEFAULT_MAX_ENTRIES))
        min_key = tree.min_key()
        max_key = tree.max_key()
        if min_key is None or max_key is None:
            return None
        lo_value = min_key[0]
        hi_value = max_key[0]
        if not all(isinstance(v, (int, float)) and not isinstance(v, bool)
                   for v in (lo_value, hi_value)):
            return None
        span = hi_value - lo_value
        if span <= 0:
            return None
        want_lo = low[0] if low is not None else lo_value
        want_hi = high[0] if high is not None else hi_value
        if not all(isinstance(v, (int, float)) and not isinstance(v, bool)
                   for v in (want_lo, want_hi)):
            return None
        fraction = (min(want_hi, hi_value) - max(want_lo, lo_value)) / span
        return min(1.0, max(0.0, fraction))
