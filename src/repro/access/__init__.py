"""Access path attachment extensions (B-tree, hash, R-tree, join index,
precomputed aggregates) plus the integrity/trigger attachments re-exported
for registration order."""

from __future__ import annotations

__all__ = ["builtin_attachment_types"]


def builtin_attachment_types():
    """Fresh instances of the built-in attachment types, in id order.

    The assigned small-integer identifiers index both the attached
    procedure vectors and the relation descriptor fields, so this order is
    stable across databases:

    1. btree_index   2. hash_index   3. rtree   4. join_index
    5. check   6. unique   7. referential   8. trigger   9. aggregate
    10. statistics
    """
    from ..constraints.check import CheckConstraintAttachment
    from ..constraints.referential import ReferentialIntegrityAttachment
    from ..constraints.trigger import TriggerAttachment
    from ..constraints.unique import UniqueConstraintAttachment
    from .aggregate import AggregateAttachment
    from .btree_index import BTreeIndexAttachment
    from .hash_index import HashIndexAttachment
    from .join_index import JoinIndexAttachment
    from .rtree import RTreeAttachment
    from .statistics import StatisticsAttachment
    return [
        BTreeIndexAttachment(),            # id 1
        HashIndexAttachment(),             # id 2
        RTreeAttachment(),                 # id 3
        JoinIndexAttachment(),             # id 4
        CheckConstraintAttachment(),       # id 5
        UniqueConstraintAttachment(),      # id 6
        ReferentialIntegrityAttachment(),  # id 7
        TriggerAttachment(),               # id 8
        AggregateAttachment(),             # id 9
        StatisticsAttachment(),            # id 10
    ]
