"""Precomputed aggregate / statistics attachment.

The paper distinguishes its attachments from plain triggers because "they
may have associated storage.  This storage can be used to maintain access
structures, and even to maintain statistics about relations or precomputed
function values for data stored in relations."

An aggregate instance maintains one function over one column (or the
record count) incrementally as a side effect of relation modifications:

* ``count`` and ``sum`` are exactly maintainable;
* ``min`` and ``max`` are maintained incrementally on insert and marked
  *stale* when the current extreme value is deleted; the next read
  recomputes them with one scan (lazy repair).

The current value is served in O(1) by :meth:`value` — the query engine
uses it to answer ``SELECT COUNT(*)`` without touching the relation.

DDL attributes: ``function`` ("count" | "sum" | "min" | "max"),
``column`` (required except for count).
"""

from __future__ import annotations


from ..core.attachment import AttachmentType
from ..errors import StorageError
from ..services.recovery import ResourceHandler

__all__ = ["AggregateAttachment"]

_FUNCTIONS = ("count", "sum", "min", "max")


class _AggregateHandler(ResourceHandler):
    def __init__(self, attachment: "AggregateAttachment"):
        self.attachment = attachment

    def undo(self, services, payload: dict, clr_lsn: int) -> None:
        if getattr(services, "in_restart", False):
            return
        database = services.database
        entry = database.catalog.entry_by_id(payload["relation_id"])
        field = entry.handle.descriptor.attachment_field(
            self.attachment.type_id)
        if field is None:
            return
        instance = field["instances"].get(payload["instance"])
        if instance is None:
            return
        instance["state"] = dict(payload["old_state"])

    def redo(self, services, lsn: int, payload: dict) -> None:
        """No redo: recomputed from the base relation after restart."""


class AggregateAttachment(AttachmentType):
    """Incrementally maintained aggregate values with lazy min/max repair."""

    name = "aggregate"
    is_access_path = False   # it answers values, not record keys
    recoverable = True

    # -- DDL -------------------------------------------------------------------
    def validate_attributes(self, schema, attributes):
        attributes = dict(attributes)
        function = attributes.pop("function", None)
        column = attributes.pop("column", None)
        if attributes:
            raise StorageError(
                f"aggregate: unknown attributes {sorted(attributes)}")
        if function not in _FUNCTIONS:
            raise StorageError(
                f"aggregate: function must be one of {_FUNCTIONS}, got "
                f"{function!r}")
        if function != "count":
            if not column:
                raise StorageError(
                    f"aggregate {function!r} requires a 'column' attribute")
            type_code = schema.field(column).type_code
            if function == "sum" and type_code not in ("INT", "FLOAT"):
                raise StorageError(
                    f"aggregate sum needs a numeric column, {column!r} is "
                    f"{type_code}")
        return {"function": function, "column": column}

    def create_instance(self, ctx, handle, instance_name, attributes) -> dict:
        instance = {"name": instance_name,
                    "function": attributes["function"],
                    "column": attributes["column"],
                    "field_index": (handle.schema.field_index(
                        attributes["column"])
                        if attributes["column"] else None),
                    "state": {"count": 0, "sum": 0, "extreme": None,
                              "stale": False}}
        self._recompute(ctx, handle, instance)
        return instance

    def destroy_instance(self, ctx, handle, instance_name, instance) -> None:
        instance["state"] = {"count": 0, "sum": 0, "extreme": None,
                             "stale": False}

    def recovery_handler(self) -> ResourceHandler:
        return _AggregateHandler(self)

    def rebuild(self, ctx, handle, field) -> None:
        for instance in field["instances"].values():
            self._recompute(ctx, handle, instance)
        ctx.stats.bump("aggregate.rebuilds")

    def _recompute(self, ctx, handle, instance) -> None:
        """One full scan re-derives the aggregate state."""
        function = instance["function"]
        index = instance["field_index"]
        count = 0
        total = 0
        extreme = None
        method = ctx.database.registry.storage_method(
            handle.descriptor.storage_method_id)
        scan = method.open_scan(ctx, handle)
        try:
            while True:
                item = scan.next()
                if item is None:
                    break
                __, record = item
                value = record[index] if index is not None else None
                if index is not None and value is None:
                    continue  # SQL aggregates ignore NULLs
                count += 1
                if function == "sum":
                    total += value
                elif function == "min":
                    extreme = value if extreme is None else min(extreme, value)
                elif function == "max":
                    extreme = value if extreme is None else max(extreme, value)
        finally:
            scan.close()
            ctx.services.scans.unregister(scan)
        instance["state"] = {"count": count, "sum": total,
                             "extreme": extreme, "stale": False}
        ctx.stats.bump("aggregate.recomputations")

    # -- attached procedures -------------------------------------------------------------
    def on_insert(self, ctx, handle, field, key, new_record) -> None:
        for instance in field["instances"].values():
            self._log_old(ctx, handle, instance)
            self._apply(instance, new_record, +1)
            ctx.stats.bump("aggregate.maintenance_ops")

    def on_update(self, ctx, handle, field, old_key, new_key, old_record,
                  new_record) -> None:
        for instance in field["instances"].values():
            index = instance["field_index"]
            if index is not None \
                    and old_record[index] == new_record[index]:
                ctx.stats.bump("aggregate.update_skips")
                continue
            self._log_old(ctx, handle, instance)
            self._apply(instance, old_record, -1)
            self._apply(instance, new_record, +1)
            ctx.stats.bump("aggregate.maintenance_ops")

    def on_delete(self, ctx, handle, field, key, old_record) -> None:
        for instance in field["instances"].values():
            self._log_old(ctx, handle, instance)
            self._apply(instance, old_record, -1)
            ctx.stats.bump("aggregate.maintenance_ops")

    def _log_old(self, ctx, handle, instance) -> None:
        ctx.log(self.resource, {
            "relation_id": handle.relation_id, "instance": instance["name"],
            "old_state": dict(instance["state"])})

    def _apply(self, instance: dict, record, direction: int) -> None:
        state = instance["state"]
        function = instance["function"]
        index = instance["field_index"]
        value = record[index] if index is not None else None
        if index is not None and value is None:
            return  # NULLs do not contribute
        state["count"] += direction
        if function == "sum":
            state["sum"] += direction * value
        elif function in ("min", "max"):
            if direction > 0:
                if state["extreme"] is None:
                    state["extreme"] = value
                elif function == "min":
                    state["extreme"] = min(state["extreme"], value)
                else:
                    state["extreme"] = max(state["extreme"], value)
            else:
                # Removing the current extreme invalidates it lazily.
                if value == state["extreme"]:
                    state["stale"] = True
                if state["count"] == 0:
                    state["extreme"] = None
                    state["stale"] = False

    # -- reading -------------------------------------------------------------------------
    def value(self, ctx, handle, instance):
        """Current aggregate value (repairing a stale min/max lazily)."""
        state = instance["state"]
        function = instance["function"]
        if function == "count":
            return state["count"]
        if function == "sum":
            return state["sum"] if state["count"] else None
        if state["stale"]:
            self._recompute(ctx, handle, instance)
            state = instance["state"]
        return state["extreme"]
