"""R-tree spatial access-path attachment.

The paper's motivating example for application-specific access paths:
"spatial database applications can make use of an R-tree access path
[GUTTMAN 84] to efficiently compute certain spatial predicates", and in
cost estimation "the R-tree access path will recognize the ENCLOSES
predicate and report a low cost".

The structure is a Guttman R-tree with quadratic node split over
buffer-pool pages (one pickled node per page).  Indexed values are the
bounding :class:`~repro.core.records.Box` of a BOX column; supported query
modes are the spatial predicates of the common evaluator: ``ENCLOSED_BY``
(entries lying inside a query window), ``ENCLOSES`` (entries covering the
query box), and ``OVERLAPS``.

Crash recovery follows the rebuild-on-restart strategy shared by all
access-path attachments; transactional undo is logical (inverse insert /
delete).

DDL attributes: ``column`` (a BOX column, required), ``max_entries``
(node capacity, default 16).
"""

from __future__ import annotations

import pickle
from typing import List, Optional, Tuple

from ..core.attachment import AttachmentType
from ..core.context import ExecutionContext
from ..core.records import Box, RecordView
from ..core.storage_method import RelationHandle
from ..errors import PageError, ScanError, StorageError
from ..query.cost import AccessCost, DEFAULT_SELECTIVITY
from ..services.locks import LockMode
from ..services.recovery import ResourceHandler
from ..services.scans import AFTER, BEFORE, ON, Scan, ScanPosition

__all__ = ["RTreeAttachment", "RTree", "RTreeScan"]

PAGE_TYPE_RTREE_NODE = 6

_SPATIAL_MODES = ("ENCLOSED_BY", "ENCLOSES", "OVERLAPS")


def _box_tuple(box: Box) -> tuple:
    return (box.x_lo, box.y_lo, box.x_hi, box.y_hi)


def _tuple_box(t: tuple) -> Box:
    return Box(*t)


class _Node:
    __slots__ = ("leaf", "entries")

    def __init__(self, leaf: bool):
        self.leaf = leaf
        # leaf: [(box tuple, record key)]; interior: [(mbr tuple, child page)]
        self.entries: List[Tuple[tuple, object]] = []

    def dump(self) -> bytes:
        return pickle.dumps((self.leaf, self.entries),
                            protocol=pickle.HIGHEST_PROTOCOL)

    @classmethod
    def load(cls, raw: bytes) -> "_Node":
        node = cls(True)
        node.leaf, node.entries = pickle.loads(raw)
        return node

    def mbr(self) -> Optional[Box]:
        if not self.entries:
            return None
        box = _tuple_box(self.entries[0][0])
        for t, __ in self.entries[1:]:
            box = box.union(_tuple_box(t))
        return box


class RTree:
    """A Guttman R-tree bound to a buffer pool and a state dict."""

    def __init__(self, buffer, state: dict, max_entries: int = 16):
        self.buffer = buffer
        self.state = state
        self.max_entries = max_entries

    @classmethod
    def create(cls, buffer, state: Optional[dict] = None,
               max_entries: int = 16) -> "RTree":
        if state is None:
            state = {}
        tree = cls(buffer, state, max_entries)
        state["root"] = tree._allocate(_Node(leaf=True))
        state["height"] = 1
        state["nentries"] = 0
        state["pages"] = 1
        return tree

    def destroy(self) -> None:
        self._free_subtree(self.state["root"])
        self.state.update(root=-1, height=0, nentries=0, pages=0)

    def reset(self) -> None:
        if self.state.get("root", -1) != -1:
            self._free_subtree(self.state["root"])
        self.state["root"] = self._allocate(_Node(leaf=True))
        self.state.update(height=1, nentries=0, pages=1)

    def _free_subtree(self, page_id: int) -> None:
        node = self._read(page_id)
        if not node.leaf:
            for __, child in node.entries:
                self._free_subtree(child)
        self.buffer.free_page(page_id)

    # -- operations -------------------------------------------------------------
    def insert(self, box: Box, value) -> None:
        split = self._insert_into(self.state["root"], _box_tuple(box), value,
                                  depth=1)
        if split is not None:
            left_page, right_page = split
            root = _Node(leaf=False)
            for page in (left_page, right_page):
                child = self._read(page)
                root.entries.append((_box_tuple(child.mbr()), page))
            self.state["root"] = self._allocate(root)
            self.state["height"] += 1
        self.state["nentries"] += 1

    def delete(self, box: Box, value) -> bool:
        """Remove one (box, value) entry; no re-insertion compaction."""
        target = _box_tuple(box)

        def remove(page_id: int) -> bool:
            node = self._read(page_id)
            if node.leaf:
                for i, (t, v) in enumerate(node.entries):
                    if t == target and v == value:
                        del node.entries[i]
                        self._write(page_id, node)
                        return True
                return False
            query = _tuple_box(target)
            for t, child in node.entries:
                if _tuple_box(t).encloses(query) and remove(child):
                    # Tighten the child's bounding rectangle.
                    child_node = self._read(child)
                    mbr = child_node.mbr()
                    refreshed = [(e_t, e_c) if e_c != child
                                 else ((_box_tuple(mbr), e_c) if mbr
                                       else None)
                                 for e_t, e_c in node.entries]
                    node.entries = [e for e in refreshed if e is not None]
                    self._write(page_id, node)
                    return True
            return False

        if remove(self.state["root"]):
            self.state["nentries"] -= 1
            return True
        return False

    def search(self, query: Box, mode: str) -> List[Tuple[Box, object]]:
        """All (box, value) entries satisfying ``entry.box <mode> query``."""
        if mode not in _SPATIAL_MODES:
            raise StorageError(f"unknown spatial search mode {mode!r}")
        out: List[Tuple[Box, object]] = []

        def visit(page_id: int) -> None:
            node = self._read(page_id)
            for t, payload in node.entries:
                box = _tuple_box(t)
                if node.leaf:
                    if self._matches(box, query, mode):
                        out.append((box, payload))
                else:
                    # Prune: the subtree MBR must overlap the query for any
                    # mode to be satisfiable below (and must enclose it for
                    # ENCLOSES).
                    if mode == "ENCLOSES":
                        if box.encloses(query):
                            visit(payload)
                    elif box.overlaps(query):
                        visit(payload)

        visit(self.state["root"])
        return out

    @staticmethod
    def _matches(box: Box, query: Box, mode: str) -> bool:
        if mode == "ENCLOSED_BY":
            return query.encloses(box)
        if mode == "ENCLOSES":
            return box.encloses(query)
        return box.overlaps(query)

    # -- internals ------------------------------------------------------------------
    def _insert_into(self, page_id: int, box_t: tuple, value, depth: int
                     ) -> Optional[Tuple[int, int]]:
        node = self._read(page_id)
        if node.leaf:
            node.entries.append((box_t, value))
            if len(node.entries) > self.max_entries:
                return self._split(page_id, node)
            self._write(page_id, node)
            return None
        index = self._choose_child(node, box_t)
        child_mbr, child_page = node.entries[index]
        split = self._insert_into(child_page, box_t, value, depth + 1)
        if split is None:
            # Grow the child's bounding rectangle.
            grown = _tuple_box(child_mbr).union(_tuple_box(box_t))
            node.entries[index] = (_box_tuple(grown), child_page)
            self._write(page_id, node)
            return None
        left_page, right_page = split
        del node.entries[index]
        for page in (left_page, right_page):
            child = self._read(page)
            node.entries.append((_box_tuple(child.mbr()), page))
        if len(node.entries) > self.max_entries:
            return self._split(page_id, node)
        self._write(page_id, node)
        return None

    def _choose_child(self, node: _Node, box_t: tuple) -> int:
        """Guttman: the child needing least enlargement (ties by area)."""
        box = _tuple_box(box_t)
        best = None
        best_key = None
        for i, (t, __) in enumerate(node.entries):
            mbr = _tuple_box(t)
            key = (mbr.enlargement(box), mbr.area())
            if best_key is None or key < best_key:
                best_key = key
                best = i
        return best

    def _split(self, page_id: int, node: _Node) -> Tuple[int, int]:
        """Guttman quadratic split."""
        entries = node.entries
        # Pick the pair of seeds wasting the most area together.
        worst = None
        seeds = (0, 1)
        for i in range(len(entries)):
            box_i = _tuple_box(entries[i][0])
            for j in range(i + 1, len(entries)):
                box_j = _tuple_box(entries[j][0])
                waste = (box_i.union(box_j).area() - box_i.area()
                         - box_j.area())
                if worst is None or waste > worst:
                    worst = waste
                    seeds = (i, j)
        group_a = [entries[seeds[0]]]
        group_b = [entries[seeds[1]]]
        mbr_a = _tuple_box(entries[seeds[0]][0])
        mbr_b = _tuple_box(entries[seeds[1]][0])
        rest = [e for k, e in enumerate(entries) if k not in seeds]
        minimum = max(1, self.max_entries // 3)
        for index, entry in enumerate(rest):
            box = _tuple_box(entry[0])
            remaining = len(rest) - index
            # Force-assign when one group must take all remaining entries
            # to reach the minimum fill.
            if len(group_a) + remaining <= minimum:
                group_a.append(entry)
                mbr_a = mbr_a.union(box)
                continue
            if len(group_b) + remaining <= minimum:
                group_b.append(entry)
                mbr_b = mbr_b.union(box)
                continue
            grow_a = mbr_a.enlargement(box)
            grow_b = mbr_b.enlargement(box)
            if grow_a < grow_b or (grow_a == grow_b
                                   and mbr_a.area() <= mbr_b.area()):
                group_a.append(entry)
                mbr_a = mbr_a.union(box)
            else:
                group_b.append(entry)
                mbr_b = mbr_b.union(box)
        node.entries = group_a
        self._write(page_id, node)
        right = _Node(leaf=node.leaf)
        right.entries = group_b
        right_page = self._allocate(right)
        return page_id, right_page

    def _read(self, page_id: int) -> _Node:
        page = self.buffer.fetch(page_id)
        try:
            return _Node.load(page.read(0))
        finally:
            self.buffer.unpin(page_id)

    def _write(self, page_id: int, node: _Node) -> None:
        page = self.buffer.fetch(page_id)
        try:
            page.update(0, node.dump())
        finally:
            self.buffer.unpin(page_id, dirty=True)

    def _allocate(self, node: _Node) -> int:
        page = self.buffer.new_page(PAGE_TYPE_RTREE_NODE)
        try:
            page.insert(node.dump())
        finally:
            self.buffer.unpin(page.page_id, dirty=True)
        self.state["pages"] = self.state.get("pages", 0) + 1
        return page.page_id


class _RTreeHandler(ResourceHandler):
    def __init__(self, attachment: "RTreeAttachment"):
        self.attachment = attachment

    def undo(self, services, payload: dict, clr_lsn: int) -> None:
        if getattr(services, "in_restart", False):
            return
        database = services.database
        entry = database.catalog.entry_by_id(payload["relation_id"])
        field = entry.handle.descriptor.attachment_field(
            self.attachment.type_id)
        if field is None:
            return
        instance = field["instances"].get(payload["instance"])
        if instance is None:
            return
        tree = RTree(services.buffer, instance["tree"],
                     instance["max_entries"])
        box = Box(*payload["box"])
        if payload["op"] == "add":
            tree.delete(box, payload["value"])
        elif payload["op"] == "remove":
            tree.insert(box, payload["value"])
        else:
            raise StorageError(f"rtree cannot undo {payload['op']!r}")

    def redo(self, services, lsn: int, payload: dict) -> None:
        """No redo: rebuilt from the base relation after restart."""


class RTreeScan(Scan):
    """Scan over the result set of one spatial search.

    The R-tree materialises the qualifying entries at open (a spatial
    search is not a key-sequential order), then plays them back under the
    common scan protocol.
    """

    def __init__(self, ctx: ExecutionContext, handle: RelationHandle,
                 instance: dict, matches: List[Tuple[Box, object]]):
        super().__init__(ctx.txn_id)
        self.ctx = ctx
        self.handle = handle
        self.field_index = instance["field_index"]
        self.matches = matches
        self.state = BEFORE
        self.position: Optional[int] = None

    def next(self):
        self._check_open()
        index = 0 if self.position is None else self.position + 1
        if index >= len(self.matches):
            self.state = AFTER
            return None
        self.position = index
        self.state = ON
        box, value = self.matches[index]
        self.ctx.stats.bump("rtree.entries_scanned")
        self.ctx.lock_record(self.handle.relation_id, value, LockMode.S)
        return value, RecordView.from_fields((self.field_index,), (box,))

    def next_batch(self, n: int) -> list:
        """Slice the materialised match list — the spatial search already
        paid its page reads at open time."""
        self._check_open()
        if n < 1:
            raise ScanError(f"next_batch needs a positive count, got {n}")
        index = 0 if self.position is None else self.position + 1
        chunk = self.matches[index:index + n]
        if not chunk:
            self.state = AFTER
            return []
        self.position = index + len(chunk) - 1
        self.state = ON
        self.ctx.stats.bump("rtree.entries_scanned", len(chunk))
        batch = []
        for box, value in chunk:
            self.ctx.lock_record(self.handle.relation_id, value, LockMode.S)
            batch.append((value, RecordView.from_fields((self.field_index,),
                                                        (box,))))
        return batch

    def save_position(self) -> ScanPosition:
        return ScanPosition(self.state, self.position)

    def restore_position(self, saved: ScanPosition) -> None:
        self.state = saved.state
        self.position = saved.item


class RTreeAttachment(AttachmentType):
    """Spatial access path recognising ENCLOSES / ENCLOSED_BY / OVERLAPS."""

    name = "rtree"
    is_access_path = True
    recoverable = True

    # -- DDL -------------------------------------------------------------------
    def validate_attributes(self, schema, attributes):
        attributes = dict(attributes)
        # Accept "columns": [col] for uniformity with create_index().
        column = attributes.pop("column", None)
        columns = attributes.pop("columns", None)
        max_entries = attributes.pop("max_entries", 16)
        if attributes:
            raise StorageError(
                f"rtree: unknown attributes {sorted(attributes)}")
        if column is None:
            if not columns or len(columns) != 1:
                raise StorageError(
                    "rtree requires a single BOX column ('column' or a "
                    "one-element 'columns')")
            column = columns[0]
        if schema.field(column).type_code != "BOX":
            raise StorageError(
                f"rtree column {column!r} must be BOX, is "
                f"{schema.field(column).type_code}")
        if not isinstance(max_entries, int) or max_entries < 4:
            raise StorageError(
                f"rtree: max_entries must be an int >= 4, got {max_entries!r}")
        return {"column": column, "max_entries": max_entries}

    def create_instance(self, ctx, handle, instance_name, attributes) -> dict:
        field_index = handle.schema.field_index(attributes["column"])
        instance = {"name": instance_name, "column": attributes["column"],
                    "field_index": field_index,
                    "max_entries": attributes["max_entries"], "tree": {}}
        RTree.create(ctx.buffer, instance["tree"], attributes["max_entries"])
        self._build(ctx, handle, instance)
        return instance

    def destroy_instance(self, ctx, handle, instance_name, instance) -> None:
        tree = RTree(ctx.buffer, instance["tree"], instance["max_entries"])
        try:
            tree.destroy()
        except PageError:
            pass

    def recovery_handler(self) -> ResourceHandler:
        return _RTreeHandler(self)

    def _build(self, ctx, handle, instance) -> None:
        tree = RTree(ctx.buffer, instance["tree"], instance["max_entries"])
        method = ctx.database.registry.storage_method(
            handle.descriptor.storage_method_id)
        scan = method.open_scan(ctx, handle)
        try:
            while True:
                batch = scan.next_batch(256)
                if not batch:
                    break
                for record_key, record in batch:
                    box = record[instance["field_index"]]
                    if box is not None:
                        tree.insert(box, record_key)
        finally:
            scan.close()
            ctx.services.scans.unregister(scan)
        ctx.stats.bump("rtree.builds")

    def rebuild(self, ctx, handle, field) -> None:
        for instance in field["instances"].values():
            tree = RTree(ctx.buffer, instance["tree"],
                         instance["max_entries"])
            try:
                tree.reset()
            except PageError:
                instance["tree"].clear()
                RTree.create(ctx.buffer, instance["tree"],
                             instance["max_entries"])
            self._build(ctx, handle, instance)
        ctx.stats.bump("rtree.rebuilds")

    # -- attached procedures -------------------------------------------------------------
    def on_insert(self, ctx, handle, field, key, new_record) -> None:
        for instance in field["instances"].values():
            box = new_record[instance["field_index"]]
            if box is None:
                continue
            tree = RTree(ctx.buffer, instance["tree"],
                         instance["max_entries"])
            tree.insert(box, key)
            ctx.log(self.resource, {
                "op": "add", "relation_id": handle.relation_id,
                "instance": instance["name"], "box": _box_tuple(box),
                "value": key})
            ctx.stats.bump("rtree.maintenance_ops")

    def on_update(self, ctx, handle, field, old_key, new_key, old_record,
                  new_record) -> None:
        for instance in field["instances"].values():
            old_box = old_record[instance["field_index"]]
            new_box = new_record[instance["field_index"]]
            if old_box == new_box and old_key == new_key:
                ctx.stats.bump("rtree.update_skips")
                continue
            tree = RTree(ctx.buffer, instance["tree"],
                         instance["max_entries"])
            if old_box is not None:
                tree.delete(old_box, old_key)
                ctx.log(self.resource, {
                    "op": "remove", "relation_id": handle.relation_id,
                    "instance": instance["name"],
                    "box": _box_tuple(old_box), "value": old_key})
            if new_box is not None:
                tree.insert(new_box, new_key)
                ctx.log(self.resource, {
                    "op": "add", "relation_id": handle.relation_id,
                    "instance": instance["name"],
                    "box": _box_tuple(new_box), "value": new_key})
            ctx.stats.bump("rtree.maintenance_ops")

    def on_delete(self, ctx, handle, field, key, old_record) -> None:
        for instance in field["instances"].values():
            box = old_record[instance["field_index"]]
            if box is None:
                continue
            tree = RTree(ctx.buffer, instance["tree"],
                         instance["max_entries"])
            tree.delete(box, key)
            ctx.log(self.resource, {
                "op": "remove", "relation_id": handle.relation_id,
                "instance": instance["name"], "box": _box_tuple(box),
                "value": key})
            ctx.stats.bump("rtree.maintenance_ops")

    # -- direct access operations ------------------------------------------------------
    def fetch(self, ctx, handle, instance, input_key) -> List:
        """Input key: ``(mode, Box)``; returns matching record keys."""
        mode, box = input_key
        tree = RTree(ctx.buffer, instance["tree"], instance["max_entries"])
        ctx.stats.bump("rtree.searches")
        return [value for __, value in tree.search(box, mode.upper())]

    def open_scan(self, ctx, handle, instance, predicate=None,
                  route=None) -> Scan:
        if route is None or route[0] != "rtree_search":
            raise StorageError(
                "rtree scans need an ('rtree_search', mode, box) route")
        __, mode, box = route
        tree = RTree(ctx.buffer, instance["tree"], instance["max_entries"])
        ctx.stats.bump("rtree.searches")
        matches = tree.search(box, mode.upper())
        scan = RTreeScan(ctx, handle, instance, matches)
        ctx.services.scans.register(scan)
        return scan

    # -- cost estimation ------------------------------------------------------------------
    def estimate_cost(self, ctx, handle, instance_name, instance, eligible
                      ) -> Optional[AccessCost]:
        """Recognises the spatial predicates and reports a low cost."""
        relevant = [p for p in eligible
                    if p.is_simple and p.op in _SPATIAL_MODES
                    and p.field_index == instance["field_index"]]
        if not relevant:
            return None
        method = ctx.database.registry.storage_method(
            handle.descriptor.storage_method_id)
        tuples = max(1, method.record_count(ctx, handle))
        selectivity = 1.0
        for pred in relevant:
            selectivity *= DEFAULT_SELECTIVITY.get(pred.op, 0.05)
        expected = max(1.0, tuples * selectivity)
        tree_state = instance["tree"]
        height = max(1, tree_state.get("height", 1))
        touched = height + expected / 4.0 + expected  # search + base fetches
        chosen = relevant[0]
        return AccessCost(io_pages=touched, cpu_tuples=expected,
                          expected_tuples=expected,
                          relevant=(chosen,),
                          route=("rtree_pred", chosen.field_index,
                                 chosen.op))
